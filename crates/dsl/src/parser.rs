//! Parser for the DSL's concrete syntax.
//!
//! The syntax follows Fig. 2 of the paper, with braces instead of
//! indentation. The Fig. 2 program reads:
//!
//! ```text
//! mut i
//! mut k
//! i := 0
//! k := 0
//! loop {
//!   let input = read i some_data in {
//!     let a = map (\x -> 2 * x) input in {
//!       let t = filter (\x -> x > 0) a in {
//!         let b = condense t in {
//!           write v i a
//!           write w k b
//!           i := i + len(a)
//!           k := k + len(b)
//!         }
//!       }
//!     }
//!   }
//!   if i >= 4096 then { break }
//! }
//! ```
//!
//! [`parse_program`] parses a whole program, [`parse_expr`] a single
//! expression. The printer ([`crate::printer`]) emits this same syntax, and
//! `parse(print(p)) == p` is a tested round-trip invariant.

use adaptvm_storage::scalar::{Scalar, ScalarType};

use crate::ast::{ConflictFn, Expr, FoldFn, Lambda, MergeKind, Program, ScalarOp, Stmt};
use crate::DslError;

/// Parse a whole program.
pub fn parse_program(src: &str) -> Result<Program, DslError> {
    let mut p = Parser::new(src)?;
    let stmts = p.stmt_list(&[])?;
    p.expect_eof()?;
    Ok(Program::new(stmts))
}

/// Parse a single expression.
pub fn parse_expr(src: &str) -> Result<Expr, DslError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Punctuation / operators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Lambda, // `\`
    Arrow,  // `->`
    Assign, // `:=`
    Equals, // `=`
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: `# …`
            if self.pos < self.src.len() && self.src[self.pos] == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), DslError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, start));
        }
        let c = self.src[self.pos];
        let two = if self.pos + 1 < self.src.len() {
            Some(&self.src[self.pos..self.pos + 2])
        } else {
            None
        };
        macro_rules! tok2 {
            ($t:expr) => {{
                self.pos += 2;
                return Ok(($t, start));
            }};
        }
        match two {
            Some(b"->") => tok2!(Tok::Arrow),
            Some(b":=") => tok2!(Tok::Assign),
            Some(b"<=") => tok2!(Tok::Le),
            Some(b">=") => tok2!(Tok::Ge),
            Some(b"==") => tok2!(Tok::EqEq),
            Some(b"!=") => tok2!(Tok::NotEq),
            Some(b"&&") => tok2!(Tok::AndAnd),
            Some(b"||") => tok2!(Tok::OrOr),
            _ => {}
        }
        let single = match c {
            b'{' => Some(Tok::LBrace),
            b'}' => Some(Tok::RBrace),
            b'(' => Some(Tok::LParen),
            b')' => Some(Tok::RParen),
            b'\\' => Some(Tok::Lambda),
            b'=' => Some(Tok::Equals),
            b',' => Some(Tok::Comma),
            b'+' => Some(Tok::Plus),
            b'-' => Some(Tok::Minus),
            b'*' => Some(Tok::Star),
            b'/' => Some(Tok::Slash),
            b'%' => Some(Tok::Percent),
            b'<' => Some(Tok::Lt),
            b'>' => Some(Tok::Gt),
            b'!' => Some(Tok::Bang),
            _ => None,
        };
        if let Some(t) = single {
            self.pos += 1;
            return Ok((t, start));
        }
        if c == b'"' {
            self.pos += 1;
            let mut s = String::new();
            while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                s.push(self.src[self.pos] as char);
                self.pos += 1;
            }
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string literal"));
            }
            self.pos += 1;
            return Ok((Tok::Str(s), start));
        }
        if c.is_ascii_digit() {
            let mut end = self.pos;
            while end < self.src.len() && self.src[end].is_ascii_digit() {
                end += 1;
            }
            let is_float = end < self.src.len()
                && self.src[end] == b'.'
                && end + 1 < self.src.len()
                && self.src[end + 1].is_ascii_digit();
            if is_float {
                end += 1;
                while end < self.src.len() && self.src[end].is_ascii_digit() {
                    end += 1;
                }
                let text = std::str::from_utf8(&self.src[self.pos..end]).expect("ascii");
                let v: f64 = text
                    .parse()
                    .map_err(|e| self.err(format!("bad float: {e}")))?;
                self.pos = end;
                return Ok((Tok::Float(v), start));
            }
            let text = std::str::from_utf8(&self.src[self.pos..end]).expect("ascii");
            let v: i64 = text
                .parse()
                .map_err(|e| self.err(format!("bad int: {e}")))?;
            self.pos = end;
            return Ok((Tok::Int(v), start));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut end = self.pos;
            while end < self.src.len()
                && (self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_')
            {
                end += 1;
            }
            let text = std::str::from_utf8(&self.src[self.pos..end]).expect("ascii");
            self.pos = end;
            return Ok((Tok::Ident(text.to_string()), start));
        }
        Err(self.err(format!("unexpected character {:?}", c as char)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, DslError> {
        let mut lx = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let (t, off) = lx.next()?;
            let eof = t == Tok::Eof;
            toks.push((t, off));
            if eof {
                break;
            }
        }
        Ok(Parser { toks, idx: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }

    fn offset(&self) -> usize {
        self.toks[self.idx].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), DslError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<(), DslError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ----- statements -------------------------------------------------

    /// Parse statements until `}` or EOF (whichever the caller expects).
    fn stmt_list(&mut self, _stop: &[&str]) -> Result<Vec<Stmt>, DslError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::RBrace && *self.peek() != Tok::Eof {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, DslError> {
        self.expect(Tok::LBrace)?;
        let stmts = self.stmt_list(&[])?;
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        match self.peek().clone() {
            Tok::Ident(kw) => match kw.as_str() {
                "mut" => {
                    self.bump();
                    let name = self.ident()?;
                    Ok(Stmt::DeclareMut { name })
                }
                "let" => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(Tok::Equals)?;
                    let expr = self.expr()?;
                    match self.bump() {
                        Tok::Ident(s) if s == "in" => {}
                        other => return Err(self.err(format!("expected `in`, found {other:?}"))),
                    }
                    let body = self.block()?;
                    Ok(Stmt::Let { name, expr, body })
                }
                "write" => {
                    self.bump();
                    let target = self.ident()?;
                    let pos = self.atom()?;
                    let value = self.atom()?;
                    Ok(Stmt::Write { target, pos, value })
                }
                "scatter" => {
                    self.bump();
                    let target = self.ident()?;
                    let indices = self.atom()?;
                    let value = self.atom()?;
                    let conflict = match self.ident()?.as_str() {
                        "last" => ConflictFn::LastWins,
                        "add" => ConflictFn::Add,
                        "min" => ConflictFn::Min,
                        "max" => ConflictFn::Max,
                        other => return Err(self.err(format!("unknown conflict function {other}"))),
                    };
                    Ok(Stmt::Scatter {
                        target,
                        indices,
                        value,
                        conflict,
                    })
                }
                "loop" => {
                    self.bump();
                    Ok(Stmt::Loop(self.block()?))
                }
                "break" => {
                    self.bump();
                    Ok(Stmt::Break)
                }
                "if" => {
                    self.bump();
                    let cond = self.expr()?;
                    match self.bump() {
                        Tok::Ident(s) if s == "then" => {}
                        other => return Err(self.err(format!("expected `then`, found {other:?}"))),
                    }
                    let then = self.block()?;
                    let els = if self.is_kw("else") {
                        self.bump();
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::If { cond, then, els })
                }
                _ => {
                    // `name := expr` assignment.
                    let name = self.ident()?;
                    self.expect(Tok::Assign)?;
                    let expr = self.expr()?;
                    Ok(Stmt::Assign { name, expr })
                }
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    // ----- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DslError> {
        // Skeleton keywords first; otherwise a scalar expression.
        if let Tok::Ident(kw) = self.peek() {
            match kw.as_str() {
                "map" => {
                    self.bump();
                    let f = self.lambda()?;
                    let mut inputs = Vec::new();
                    for _ in 0..f.params.len() {
                        inputs.push(self.atom()?);
                    }
                    return Ok(Expr::Map { f, inputs });
                }
                "filter" => {
                    self.bump();
                    let p = self.lambda()?;
                    let mut inputs = Vec::new();
                    for _ in 0..p.params.len() {
                        inputs.push(self.atom()?);
                    }
                    return Ok(Expr::Filter { p, inputs });
                }
                "fold" => {
                    self.bump();
                    let r = match self.ident()?.as_str() {
                        "sum" => FoldFn::Sum,
                        "min" => FoldFn::Min,
                        "max" => FoldFn::Max,
                        "count" => FoldFn::Count,
                        "all" => FoldFn::All,
                        "any" => FoldFn::Any,
                        other => return Err(self.err(format!("unknown fold function {other}"))),
                    };
                    let init = self.atom()?;
                    let input = self.atom()?;
                    return Ok(Expr::Fold {
                        r,
                        init: Box::new(init),
                        input: Box::new(input),
                    });
                }
                "read" => {
                    self.bump();
                    let pos = self.atom()?;
                    let data = self.ident()?;
                    return Ok(Expr::Read {
                        pos: Box::new(pos),
                        data,
                        len: None,
                    });
                }
                "gather" => {
                    self.bump();
                    let indices = self.atom()?;
                    let data = self.ident()?;
                    return Ok(Expr::Gather {
                        indices: Box::new(indices),
                        data,
                    });
                }
                "gen" => {
                    self.bump();
                    let f = self.lambda()?;
                    let len = self.atom()?;
                    return Ok(Expr::Gen {
                        f,
                        len: Box::new(len),
                    });
                }
                "condense" => {
                    self.bump();
                    let e = self.atom()?;
                    return Ok(Expr::Condense(Box::new(e)));
                }
                "merge" => {
                    self.bump();
                    let kind = match self.ident()?.as_str() {
                        "union" => MergeKind::Union,
                        "intersect" => MergeKind::Intersect,
                        "diff" => MergeKind::Diff,
                        "join_left" => MergeKind::JoinLeftIdx,
                        "join_right" => MergeKind::JoinRightIdx,
                        other => return Err(self.err(format!("unknown merge kind {other}"))),
                    };
                    let left = self.atom()?;
                    let right = self.atom()?;
                    return Ok(Expr::Merge {
                        kind,
                        left: Box::new(left),
                        right: Box::new(right),
                    });
                }
                _ => {}
            }
        }
        self.or_expr()
    }

    fn lambda(&mut self) -> Result<Lambda, DslError> {
        self.expect(Tok::LParen)?;
        self.expect(Tok::Lambda)?;
        let mut params = Vec::new();
        loop {
            params.push(self.ident()?);
            if *self.peek() == Tok::Arrow {
                break;
            }
        }
        self.expect(Tok::Arrow)?;
        let body = self.or_expr()?;
        self.expect(Tok::RParen)?;
        Ok(Lambda {
            params,
            body: Box::new(body),
        })
    }

    fn or_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Apply(ScalarOp::Or, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Apply(ScalarOp::And, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, DslError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => Some(ScalarOp::Lt),
            Tok::Le => Some(ScalarOp::Le),
            Tok::Gt => Some(ScalarOp::Gt),
            Tok::Ge => Some(ScalarOp::Ge),
            Tok::EqEq => Some(ScalarOp::Eq),
            Tok::NotEq => Some(ScalarOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Apply(op, vec![lhs, rhs]))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ScalarOp::Add,
                Tok::Minus => ScalarOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Apply(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ScalarOp::Mul,
                Tok::Slash => ScalarOp::Div,
                Tok::Percent => ScalarOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Apply(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, DslError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Apply(ScalarOp::Neg, vec![e]))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Apply(ScalarOp::Not, vec![e]))
            }
            _ => self.atom(),
        }
    }

    /// Named scalar calls accepted in atom position: `name(args…)`.
    fn named_call(&mut self, name: &str) -> Result<Option<Expr>, DslError> {
        let op = match name {
            "sqrt" => Some((ScalarOp::Sqrt, 1)),
            "abs" => Some((ScalarOp::Abs, 1)),
            "hash" => Some((ScalarOp::Hash, 1)),
            "strlen" => Some((ScalarOp::StrLen, 1)),
            "min" => Some((ScalarOp::Min, 2)),
            "max" => Some((ScalarOp::Max, 2)),
            "concat" => Some((ScalarOp::Concat, 2)),
            _ => None,
        };
        if let Some((op, arity)) = op {
            self.expect(Tok::LParen)?;
            let mut args = Vec::new();
            for i in 0..arity {
                if i > 0 {
                    self.expect(Tok::Comma)?;
                }
                args.push(self.or_expr()?);
            }
            self.expect(Tok::RParen)?;
            return Ok(Some(Expr::Apply(op, args)));
        }
        if name == "len" {
            self.expect(Tok::LParen)?;
            let e = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(Some(Expr::Len(Box::new(e))));
        }
        if name == "cast" {
            // cast(ty, e)
            self.expect(Tok::LParen)?;
            let ty = match self.ident()?.as_str() {
                "i8" => ScalarType::I8,
                "i16" => ScalarType::I16,
                "i32" => ScalarType::I32,
                "i64" => ScalarType::I64,
                "f64" => ScalarType::F64,
                "bool" => ScalarType::Bool,
                "str" => ScalarType::Str,
                other => return Err(self.err(format!("unknown type {other}"))),
            };
            self.expect(Tok::Comma)?;
            let e = self.or_expr()?;
            self.expect(Tok::RParen)?;
            return Ok(Some(Expr::Apply(ScalarOp::Cast(ty), vec![e])));
        }
        Ok(None)
    }

    fn atom(&mut self) -> Result<Expr, DslError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Const(Scalar::I64(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Const(Scalar::F64(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Const(Scalar::Str(s)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Const(Scalar::Bool(true)));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Const(Scalar::Bool(false)));
                    }
                    _ => {}
                }
                self.bump();
                if *self.peek() == Tok::LParen {
                    if let Some(call) = self.named_call(&name)? {
                        return Ok(call);
                    }
                    // Not a known function: a variable atom followed by a
                    // parenthesized atom (skeletons take juxtaposed atoms,
                    // e.g. `fold max acc (read 0 xs)`). Leave the LParen
                    // for the caller.
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn scalar_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            bin(ScalarOp::Add, int(1), bin(ScalarOp::Mul, int(2), int(3)))
        );
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(
            e,
            bin(ScalarOp::Mul, bin(ScalarOp::Add, int(1), int(2)), int(3))
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let e = parse_expr("x > 0 && y <= 4 || !z").unwrap();
        // (x>0 && y<=4) || (!z)
        match e {
            Expr::Apply(ScalarOp::Or, args) => {
                assert!(matches!(&args[0], Expr::Apply(ScalarOp::And, _)));
                assert!(matches!(&args[1], Expr::Apply(ScalarOp::Not, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn named_calls() {
        assert_eq!(parse_expr("sqrt(x)").unwrap(), un(ScalarOp::Sqrt, var("x")));
        assert_eq!(
            parse_expr("min(a, b)").unwrap(),
            bin(ScalarOp::Min, var("a"), var("b"))
        );
        assert_eq!(
            parse_expr("cast(i8, x)").unwrap(),
            un(ScalarOp::Cast(ScalarType::I8), var("x"))
        );
        assert!(parse_expr("mystery(x)").is_err());
    }

    #[test]
    fn skeleton_exprs() {
        let e = parse_expr("map (\\x -> 2 * x) input").unwrap();
        assert_eq!(
            e,
            map(
                lam1("x", bin(ScalarOp::Mul, int(2), var("x"))),
                vec![var("input")]
            )
        );
        let e = parse_expr("map (\\x y -> x + y) a b").unwrap();
        assert_eq!(
            e,
            map(
                lam2("x", "y", bin(ScalarOp::Add, var("x"), var("y"))),
                vec![var("a"), var("b")]
            )
        );
        let e = parse_expr("fold sum 0 xs").unwrap();
        assert_eq!(e, fold(FoldFn::Sum, int(0), var("xs")));
        let e = parse_expr("merge union xs ys").unwrap();
        assert_eq!(e, merge(MergeKind::Union, var("xs"), var("ys")));
        let e = parse_expr("read i some_data").unwrap();
        assert_eq!(e, read(var("i"), "some_data"));
        let e = parse_expr("condense t").unwrap();
        assert_eq!(e, condense(var("t")));
        let e = parse_expr("gather idx d").unwrap();
        assert_eq!(e, gather(var("idx"), "d"));
        let e = parse_expr("gen (\\i -> i * i) 10").unwrap();
        assert_eq!(
            e,
            gen(lam1("i", bin(ScalarOp::Mul, var("i"), var("i"))), int(10))
        );
    }

    #[test]
    fn fig2_program_parses() {
        let src = r#"
            mut i
            mut k
            i := 0
            k := 0
            loop {
              let input = read i some_data in {
                let a = map (\x -> 2 * x) input in {
                  let t = filter (\x -> x > 0) a in {
                    let b = condense t in {
                      write v i a
                      write w k b
                      i := i + len(a)
                      k := k + len(b)
                    }
                  }
                }
              }
              if i >= 4096 then { break }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 5);
        assert!(matches!(&p.stmts[4], Stmt::Loop(body) if body.len() == 2));
    }

    #[test]
    fn statements_parse() {
        let p = parse_program("mut x\nx := 1 + 2").unwrap();
        assert_eq!(p.stmts[0], declare_mut("x"));
        assert_eq!(p.stmts[1], assign("x", bin(ScalarOp::Add, int(1), int(2))));
        let p = parse_program("if x > 1 then { break } else { x := 0 }").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::If { els, .. } if els.len() == 1));
        let p = parse_program("scatter out idx vals add").unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Scatter {
                conflict: ConflictFn::Add,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_strings() {
        let p = parse_program("# a comment\nmut x # trailing\nx := \"hi\"").unwrap();
        assert_eq!(
            p.stmts[1],
            assign("x", Expr::Const(Scalar::Str("hi".into())))
        );
    }

    #[test]
    fn error_positions() {
        let err = parse_program("mut 5").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }));
        let err = parse_expr("1 +").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }));
        let err = parse_expr("\"unterminated").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }));
    }

    #[test]
    fn float_literals() {
        assert_eq!(parse_expr("2.5").unwrap(), float(2.5));
        assert_eq!(parse_expr("-1.5").unwrap(), un(ScalarOp::Neg, float(1.5)));
    }

    #[test]
    fn variable_atom_before_parenthesized_atom() {
        // Regression (found by the query fuzzer): in a juxtaposed-atom
        // position, `acc (read 0 xs)` is a variable atom followed by a
        // parenthesized atom — not a call to an unknown function `acc`.
        let e = parse_expr("fold max acc (read 0 xs)").unwrap();
        assert_eq!(
            e,
            fold(
                FoldFn::Max,
                var("acc"),
                read(Expr::Const(Scalar::I64(0)), "xs"),
            )
        );
        // Known function names in call position still parse as calls.
        assert_eq!(
            parse_expr("max(a, b)").unwrap(),
            bin(ScalarOp::Max, var("a"), var("b"))
        );
    }
}
