//! Runtime values flowing through the VM.
//!
//! A [`Vector`] is an array plus an optional *pending selection* — the
//! representation Table I's `filter` produces ("filters do not physically
//! modify the flow, instead they calculate a selection vector"). `condense`
//! materializes the selection.

use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::sel::SelVec;
use adaptvm_storage::StorageError;

/// An array with an optional pending selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    /// The physical data.
    pub data: Array,
    /// Pending selection over `data` (None = all selected).
    pub sel: Option<SelVec>,
}

impl Vector {
    /// A dense vector (no pending selection).
    pub fn dense(data: Array) -> Vector {
        Vector { data, sel: None }
    }

    /// A vector with a pending selection.
    pub fn selected(data: Array, sel: SelVec) -> Vector {
        Vector {
            data,
            sel: Some(sel),
        }
    }

    /// Physical length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no physical elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Logical (selected) length.
    pub fn selected_len(&self) -> usize {
        self.sel.as_ref().map_or(self.data.len(), SelVec::len)
    }

    /// Materialize the selection into dense data (`condense`).
    pub fn condense(&self) -> Result<Vector, StorageError> {
        match &self.sel {
            None => Ok(self.clone()),
            Some(sel) => Ok(Vector::dense(self.data.take(sel.indices())?)),
        }
    }

    /// Observed selectivity of the pending selection (1.0 when dense).
    pub fn selectivity(&self) -> f64 {
        match &self.sel {
            None => 1.0,
            Some(s) => s.selectivity(self.data.len()),
        }
    }
}

/// A runtime value: a vector or a scalar.
///
/// §II: "Scalar values can be seen as arrays with length 1" — we keep a
/// separate scalar representation for loop counters and fold results, but
/// every skeleton accepts either via [`Value::to_vector_broadcast`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An array value with optional selection.
    Vector(Vector),
    /// A scalar value.
    Scalar(Scalar),
}

impl Value {
    /// A dense vector value.
    pub fn dense(data: Array) -> Value {
        Value::Vector(Vector::dense(data))
    }

    /// The vector, if this is one.
    pub fn as_vector(&self) -> Option<&Vector> {
        match self {
            Value::Vector(v) => Some(v),
            Value::Scalar(_) => None,
        }
    }

    /// The scalar, if this is one.
    pub fn as_scalar(&self) -> Option<&Scalar> {
        match self {
            Value::Scalar(s) => Some(s),
            Value::Vector(_) => None,
        }
    }

    /// Scalar widened to `i64`, when possible.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_scalar().and_then(Scalar::as_i64)
    }

    /// Logical length: vectors report their selected length, scalars 1.
    pub fn logical_len(&self) -> usize {
        match self {
            Value::Vector(v) => v.selected_len(),
            Value::Scalar(_) => 1,
        }
    }

    /// View as a vector, broadcasting a scalar to length `n`.
    pub fn to_vector_broadcast(&self, n: usize) -> Vector {
        match self {
            Value::Vector(v) => v.clone(),
            Value::Scalar(s) => Vector::dense(Array::splat(s, n)),
        }
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Value {
        Value::Scalar(s)
    }
}

impl From<Array> for Value {
    fn from(a: Array) -> Value {
        Value::dense(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_selected() {
        let v = Vector::dense(Array::from(vec![1i64, 2, 3]));
        assert_eq!(v.len(), 3);
        assert_eq!(v.selected_len(), 3);
        assert_eq!(v.selectivity(), 1.0);

        let s = Vector::selected(Array::from(vec![1i64, 2, 3]), SelVec::new(vec![0, 2]));
        assert_eq!(s.selected_len(), 2);
        assert!((s.selectivity() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn condense_materializes() {
        let s = Vector::selected(Array::from(vec![1i64, 2, 3]), SelVec::new(vec![2]));
        let d = s.condense().unwrap();
        assert_eq!(d.data, Array::from(vec![3i64]));
        assert!(d.sel.is_none());
    }

    #[test]
    fn value_conversions() {
        let v: Value = Array::from(vec![1i64]).into();
        assert!(v.as_vector().is_some());
        assert_eq!(v.logical_len(), 1);
        let s: Value = Scalar::I64(9).into();
        assert_eq!(s.as_i64(), Some(9));
        assert_eq!(s.logical_len(), 1);
        let b = s.to_vector_broadcast(4);
        assert_eq!(b.data, Array::from(vec![9i64, 9, 9, 9]));
    }
}
