//! Program transformations (§II).
//!
//! The paper lists the transformations its DSL design enables:
//! * **Deforestation** — eliminate intermediate arrays by fusing
//!   data-parallel operations ([`fuse`]),
//! * **Pipeline building / execution-strategy switching** — manipulate the
//!   chunk loop: vectorized (chunk-at-a-time), tuple-at-a-time (chunk 1,
//!   HyPer-like) and column-at-a-time (one full-column chunk, MonetDB-like)
//!   are all the *same* program at different chunk sizes (footnote 1 of the
//!   paper) ([`chunking`]),
//! * **Parallelization** — loop-boundary manipulation ([`chunking::shard`]).

pub mod chunking;
pub mod fuse;

pub use chunking::{set_chunk_size, shard, vectorize, ChunkSize};
pub use fuse::{count_var_uses, fuse_program};
