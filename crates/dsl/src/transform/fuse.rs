//! Deforestation: fuse `map` chains to eliminate intermediate arrays
//! (Wadler-style, §II "essentially loop fusion on the data-parallel
//! operations").
//!
//! `let a = map f x in { let b = map g a in { … } }`, with `a` used only by
//! the inner map, becomes `let b = map (g ∘ f) x in { … }`. The fused
//! lambda is composite, so a subsequent [`crate::normalize`] pass — or the
//! JIT, which compiles composite lambdas directly — decides how it runs.
//! The fusion/no-fusion choice is exactly experiment B7.

use crate::ast::{Expr, Lambda, Stmt};

/// Count free uses of `name` in a statement list (stops at shadowing).
pub fn count_var_uses(stmts: &[Stmt], name: &str) -> usize {
    stmts.iter().map(|s| stmt_uses(s, name)).sum()
}

fn stmt_uses(s: &Stmt, name: &str) -> usize {
    match s {
        Stmt::DeclareMut { .. } | Stmt::Break => 0,
        Stmt::Assign { expr, .. } | Stmt::ExprStmt(expr) => expr_uses(expr, name),
        Stmt::Let {
            name: bound,
            expr,
            body,
        } => {
            let own = expr_uses(expr, name);
            if bound == name {
                own // shadowed in body
            } else {
                own + count_var_uses(body, name)
            }
        }
        Stmt::Write { pos, value, .. } => expr_uses(pos, name) + expr_uses(value, name),
        Stmt::Scatter { indices, value, .. } => expr_uses(indices, name) + expr_uses(value, name),
        Stmt::Loop(body) => count_var_uses(body, name),
        Stmt::If { cond, then, els } => {
            expr_uses(cond, name) + count_var_uses(then, name) + count_var_uses(els, name)
        }
    }
}

fn expr_uses(e: &Expr, name: &str) -> usize {
    match e {
        Expr::Const(_) => 0,
        Expr::Var(v) => usize::from(v == name),
        Expr::Apply(_, args) => args.iter().map(|a| expr_uses(a, name)).sum(),
        Expr::Len(inner) | Expr::Condense(inner) => expr_uses(inner, name),
        Expr::Map { f, inputs } => {
            let lam = if f.params.iter().any(|p| p == name) {
                0
            } else {
                expr_uses(&f.body, name)
            };
            lam + inputs.iter().map(|i| expr_uses(i, name)).sum::<usize>()
        }
        Expr::Filter { p, inputs } => {
            let lam = if p.params.iter().any(|x| x == name) {
                0
            } else {
                expr_uses(&p.body, name)
            };
            lam + inputs.iter().map(|i| expr_uses(i, name)).sum::<usize>()
        }
        Expr::Fold { init, input, .. } => expr_uses(init, name) + expr_uses(input, name),
        Expr::Read { pos, len, .. } => {
            expr_uses(pos, name) + len.as_ref().map_or(0, |l| expr_uses(l, name))
        }
        Expr::Gather { indices, .. } => expr_uses(indices, name),
        Expr::Gen { f, len } => {
            let lam = if f.params.iter().any(|p| p == name) {
                0
            } else {
                expr_uses(&f.body, name)
            };
            lam + expr_uses(len, name)
        }
        Expr::Merge { left, right, .. } => expr_uses(left, name) + expr_uses(right, name),
    }
}

/// Substitute `replacement` for `var` inside a scalar expression.
fn substitute(e: &Expr, var: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == var => replacement.clone(),
        Expr::Apply(op, args) => Expr::Apply(
            *op,
            args.iter()
                .map(|a| substitute(a, var, replacement))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Fuse all single-use map-over-map chains in a program. Applies repeatedly
/// until a fixed point.
pub fn fuse_program(p: &crate::ast::Program) -> crate::ast::Program {
    let mut stmts = p.stmts.clone();
    loop {
        let (new, changed) = fuse_stmts(&stmts);
        stmts = new;
        if !changed {
            break;
        }
    }
    crate::ast::Program {
        funcs: p.funcs.clone(),
        stmts,
    }
}

fn fuse_stmts(stmts: &[Stmt]) -> (Vec<Stmt>, bool) {
    let mut out = Vec::with_capacity(stmts.len());
    let mut changed = false;
    for s in stmts {
        let (s, c) = fuse_stmt(s);
        changed |= c;
        out.push(s);
    }
    (out, changed)
}

fn fuse_stmt(s: &Stmt) -> (Stmt, bool) {
    match s {
        Stmt::Let { name, expr, body } => {
            // Try fusing this binding into a directly nested map consumer.
            if let Expr::Map {
                f: inner_f,
                inputs: inner_inputs,
            } = expr
            {
                if body.len() == 1 {
                    if let Stmt::Let {
                        name: outer_name,
                        expr:
                            Expr::Map {
                                f: outer_f,
                                inputs: outer_inputs,
                            },
                        body: outer_body,
                    } = &body[0]
                    {
                        let uses_in_outer_inputs = outer_inputs
                            .iter()
                            .filter(|i| matches!(i, Expr::Var(v) if v == name))
                            .count();
                        let total_uses = count_var_uses(body, name);
                        if uses_in_outer_inputs > 0 && total_uses == uses_in_outer_inputs {
                            let fused =
                                compose_maps(name, inner_f, inner_inputs, outer_f, outer_inputs);
                            let new_let = Stmt::Let {
                                name: outer_name.clone(),
                                expr: fused,
                                body: outer_body.clone(),
                            };
                            let (fused_more, _) = fuse_stmt(&new_let);
                            return (fused_more, true);
                        }
                    }
                }
            }
            let (body, changed) = fuse_stmts(body);
            (
                Stmt::Let {
                    name: name.clone(),
                    expr: expr.clone(),
                    body,
                },
                changed,
            )
        }
        Stmt::Loop(body) => {
            let (body, changed) = fuse_stmts(body);
            (Stmt::Loop(body), changed)
        }
        Stmt::If { cond, then, els } => {
            let (then, c1) = fuse_stmts(then);
            let (els, c2) = fuse_stmts(els);
            (
                Stmt::If {
                    cond: cond.clone(),
                    then,
                    els,
                },
                c1 || c2,
            )
        }
        other => (other.clone(), false),
    }
}

/// Build `map (g ∘ f)` replacing uses of the intermediate `mid`.
fn compose_maps(
    mid: &str,
    inner_f: &Lambda,
    inner_inputs: &[Expr],
    outer_f: &Lambda,
    outer_inputs: &[Expr],
) -> Expr {
    // Rename inner params to avoid capture.
    let renamed: Vec<String> = inner_f
        .params
        .iter()
        .enumerate()
        .map(|(i, _)| format!("_f{i}"))
        .collect();
    let mut inner_body = (*inner_f.body).clone();
    for (old, new) in inner_f.params.iter().zip(&renamed) {
        inner_body = substitute(&inner_body, old, &Expr::Var(new.clone()));
    }

    let mut params = Vec::new();
    let mut inputs = Vec::new();
    let mut body = (*outer_f.body).clone();
    for (param, input) in outer_f.params.iter().zip(outer_inputs) {
        if matches!(input, Expr::Var(v) if v == mid) {
            // This operand is the fused intermediate: inline f's body.
            body = substitute(&body, param, &inner_body);
        } else {
            params.push(param.clone());
            inputs.push(input.clone());
        }
    }
    // Prepend f's (renamed) params and inputs.
    let mut all_params = renamed;
    all_params.extend(params);
    let mut all_inputs = inner_inputs.to_vec();
    all_inputs.extend(inputs);
    Expr::Map {
        f: Lambda {
            params: all_params,
            body: Box::new(body),
        },
        inputs: all_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::printer::print_program;
    use crate::programs;

    #[test]
    fn fuses_simple_chain() {
        let p = parse_program(
            "let a = map (\\x -> x * 2) src in { let b = map (\\y -> y + 3) a in { write out 0 b } }",
        )
        .unwrap();
        let f = fuse_program(&p);
        let printed = print_program(&f);
        // One fused map remains.
        assert_eq!(printed.matches("map (").count(), 1, "{printed}");
        assert!(printed.contains("_f0 * 2 + 3"), "{printed}");
    }

    #[test]
    fn fuses_whole_chain_of_four() {
        let p = programs::map_chain(100);
        let f = fuse_program(&p);
        let printed = print_program(&f);
        assert_eq!(printed.matches("map (").count(), 1, "{printed}");
    }

    #[test]
    fn does_not_fuse_multi_use_intermediate() {
        // `a` is used by the map AND by the write — fusing would duplicate
        // work, so we keep it.
        let p = parse_program(
            "let a = map (\\x -> x * 2) src in { let b = map (\\y -> y + 3) a in { write v 0 a\nwrite w 0 b } }",
        )
        .unwrap();
        let f = fuse_program(&p);
        let printed = print_program(&f);
        assert_eq!(printed.matches("map (").count(), 2, "{printed}");
    }

    #[test]
    fn fuses_into_multi_input_map() {
        // b = map(\u v -> u+v) a c : fuse a's producer, keep c.
        let p = parse_program(
            "let a = map (\\x -> x * 2) src in { let b = map (\\u v -> u + v) a c in { write out 0 b } }",
        )
        .unwrap();
        let f = fuse_program(&p);
        let printed = print_program(&f);
        assert_eq!(printed.matches("map (").count(), 1, "{printed}");
        assert!(printed.contains("src"), "{printed}");
        assert!(printed.contains(" c"), "{printed}");
    }

    #[test]
    fn fig2_untouched_by_fusion() {
        // Fig. 2's map output `a` is consumed twice (filter + write v).
        let p = programs::fig2_example();
        assert_eq!(fuse_program(&p), p);
    }

    #[test]
    fn count_uses_respects_shadowing() {
        let p =
            parse_program("let a = read 0 xs in { let a = map (\\x -> x) a in { write out 0 a } }")
                .unwrap();
        // Outer `a` is used once: by the inner binding's expression.
        if let Stmt::Let { body, .. } = &p.stmts[0] {
            assert_eq!(count_var_uses(body, "a"), 1);
        } else {
            panic!("expected let");
        }
    }

    #[test]
    fn fusion_preserves_semantics_shape() {
        // Verify via reference: fused chain must compute the same function.
        // (Execution-level equivalence is tested in the VM crate.)
        let p = programs::map_chain(10);
        let f = fuse_program(&p);
        let printed = print_program(&f);
        assert!(
            printed.contains("(_f0 * 2 + 3) * 5 - 1"),
            "fused body wrong: {printed}"
        );
    }
}
