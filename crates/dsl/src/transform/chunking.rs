//! Chunk-loop manipulation: the execution-strategy axis.
//!
//! Footnote 1 of the paper: a chunked program can be turned into simpler
//! column-at-a-time or tuple-at-a-time execution by *manipulating the array
//! lengths* of its reads, "followed by partial evaluation which will remove
//! the loop implementing the chunking". We implement the length
//! manipulation ([`set_chunk_size`]); the interpreter and JIT consume the
//! resulting programs directly (at chunk 1 the JIT's fused traces *are* the
//! partial-evaluation result: a tuple-at-a-time loop).
//!
//! [`vectorize`] performs the inverse direction: a whole-array program
//! (straight-line `let`s over full buffers) is wrapped into a Fig. 2-style
//! chunk loop — the paper's "pipeline-building" transformation.
//! [`shard`] adjusts loop boundaries for parallel execution (the paper's
//! parallelization-through-loop-boundaries, morsel-style).

use adaptvm_storage::scalar::Scalar;

use crate::ast::{Expr, Program, ScalarOp, Stmt};
use crate::DslError;

/// A chunk-size choice = an execution strategy (footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkSize {
    /// Tuple-at-a-time (HyPer-style): chunks of one element.
    Tuple,
    /// Chunk-at-a-time (X100-style): cache-resident chunks.
    Vector(usize),
    /// Column-at-a-time (MonetDB-style): one full-column chunk.
    Column,
}

impl ChunkSize {
    /// The concrete element count (`Column` = effectively unbounded).
    pub fn elements(self) -> usize {
        match self {
            ChunkSize::Tuple => 1,
            ChunkSize::Vector(n) => n.max(1),
            ChunkSize::Column => usize::MAX,
        }
    }
}

/// Set the read length of every `read` in the program, switching the
/// execution strategy (footnote 1: "manipulate the array lengths").
pub fn set_chunk_size(p: &Program, size: ChunkSize) -> Program {
    let len_expr = match size {
        ChunkSize::Column => None,
        other => Some(Expr::Const(Scalar::I64(other.elements() as i64))),
    };
    Program {
        funcs: p.funcs.clone(),
        stmts: rewrite_stmts(&p.stmts, &|e| match e {
            Expr::Read { pos, data, .. } => Expr::Read {
                pos: pos.clone(),
                data: data.clone(),
                len: len_expr.clone().map(Box::new),
            },
            other => other.clone(),
        }),
    }
}

fn rewrite_stmts(stmts: &[Stmt], f: &dyn Fn(&Expr) -> Expr) -> Vec<Stmt> {
    stmts.iter().map(|s| rewrite_stmt(s, f)).collect()
}

fn rewrite_stmt(s: &Stmt, f: &dyn Fn(&Expr) -> Expr) -> Stmt {
    match s {
        Stmt::DeclareMut { .. } | Stmt::Break => s.clone(),
        Stmt::Assign { name, expr } => Stmt::Assign {
            name: name.clone(),
            expr: rewrite_expr(expr, f),
        },
        Stmt::Let { name, expr, body } => Stmt::Let {
            name: name.clone(),
            expr: rewrite_expr(expr, f),
            body: rewrite_stmts(body, f),
        },
        Stmt::Write { target, pos, value } => Stmt::Write {
            target: target.clone(),
            pos: rewrite_expr(pos, f),
            value: rewrite_expr(value, f),
        },
        Stmt::Scatter {
            target,
            indices,
            value,
            conflict,
        } => Stmt::Scatter {
            target: target.clone(),
            indices: rewrite_expr(indices, f),
            value: rewrite_expr(value, f),
            conflict: *conflict,
        },
        Stmt::Loop(body) => Stmt::Loop(rewrite_stmts(body, f)),
        Stmt::If { cond, then, els } => Stmt::If {
            cond: rewrite_expr(cond, f),
            then: rewrite_stmts(then, f),
            els: rewrite_stmts(els, f),
        },
        Stmt::ExprStmt(e) => Stmt::ExprStmt(rewrite_expr(e, f)),
    }
}

/// Bottom-up expression rewrite.
fn rewrite_expr(e: &Expr, f: &dyn Fn(&Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Apply(op, args) => {
            Expr::Apply(*op, args.iter().map(|a| rewrite_expr(a, f)).collect())
        }
        Expr::Len(inner) => Expr::Len(Box::new(rewrite_expr(inner, f))),
        Expr::Map { f: lam, inputs } => Expr::Map {
            f: lam.clone(),
            inputs: inputs.iter().map(|i| rewrite_expr(i, f)).collect(),
        },
        Expr::Filter { p, inputs } => Expr::Filter {
            p: p.clone(),
            inputs: inputs.iter().map(|i| rewrite_expr(i, f)).collect(),
        },
        Expr::Fold { r, init, input } => Expr::Fold {
            r: *r,
            init: Box::new(rewrite_expr(init, f)),
            input: Box::new(rewrite_expr(input, f)),
        },
        Expr::Read { pos, data, len } => Expr::Read {
            pos: Box::new(rewrite_expr(pos, f)),
            data: data.clone(),
            len: len.as_ref().map(|l| Box::new(rewrite_expr(l, f))),
        },
        Expr::Gather { indices, data } => Expr::Gather {
            indices: Box::new(rewrite_expr(indices, f)),
            data: data.clone(),
        },
        Expr::Gen { f: lam, len } => Expr::Gen {
            f: lam.clone(),
            len: Box::new(rewrite_expr(len, f)),
        },
        Expr::Condense(inner) => Expr::Condense(Box::new(rewrite_expr(inner, f))),
        Expr::Merge { kind, left, right } => Expr::Merge {
            kind: *kind,
            left: Box::new(rewrite_expr(left, f)),
            right: Box::new(rewrite_expr(right, f)),
        },
    };
    f(&rebuilt)
}

/// Wrap a whole-array straight-line program into a chunk loop
/// (pipeline-building).
///
/// Preconditions: no `loop`/`break`/`if` in the source; every `read` uses
/// position `0`; every `write` uses position `0`. Programs with `fold`s are
/// rejected (a chunked fold needs an accumulator rewrite the caller should
/// express directly — see `programs::filter_sum` for the pattern).
pub fn vectorize(p: &Program, chunk: usize) -> Result<Program, DslError> {
    let mut targets = Vec::new();
    check_vectorizable(&p.stmts, &mut targets)?;

    // Cursor variables: `_i` for reads, one `_o_<buf>` per write target.
    let mut stmts: Vec<Stmt> = vec![
        Stmt::DeclareMut { name: "_i".into() },
        Stmt::Assign {
            name: "_i".into(),
            expr: Expr::Const(Scalar::I64(0)),
        },
    ];
    for t in &targets {
        stmts.push(Stmt::DeclareMut {
            name: format!("_o_{t}"),
        });
        stmts.push(Stmt::Assign {
            name: format!("_o_{t}"),
            expr: Expr::Const(Scalar::I64(0)),
        });
    }

    // Rewrite the body: reads at `_i` with the chunk length; writes at
    // their cursor, followed by cursor bumps; after the body, bump `_i` and
    // exit when the first read came up short.
    let first_read_var = first_read_binding(&p.stmts).ok_or_else(|| {
        DslError::Transform("vectorize needs at least one `let _ = read …`".into())
    })?;
    let body = vectorize_stmts(&p.stmts, chunk, &first_read_var)?;
    stmts.push(Stmt::Loop(body));
    Ok(Program {
        funcs: p.funcs.clone(),
        stmts,
    })
}

fn check_vectorizable(stmts: &[Stmt], targets: &mut Vec<String>) -> Result<(), DslError> {
    for s in stmts {
        match s {
            Stmt::Loop(_) | Stmt::Break | Stmt::If { .. } => {
                return Err(DslError::Transform(
                    "vectorize expects a straight-line whole-array program".into(),
                ))
            }
            Stmt::Let { expr, body, .. } => {
                if contains_fold(expr) {
                    return Err(DslError::Transform(
                        "vectorize does not lift folds; write the accumulator loop directly".into(),
                    ));
                }
                check_vectorizable(body, targets)?;
            }
            Stmt::Write { target, pos, .. } => {
                if !matches!(pos, Expr::Const(Scalar::I64(0))) {
                    return Err(DslError::Transform(
                        "vectorize expects whole-array writes at position 0".into(),
                    ));
                }
                if !targets.contains(target) {
                    targets.push(target.clone());
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn contains_fold(e: &Expr) -> bool {
    match e {
        Expr::Fold { .. } => true,
        Expr::Map { inputs, .. } | Expr::Filter { inputs, .. } => inputs.iter().any(contains_fold),
        Expr::Len(i) | Expr::Condense(i) => contains_fold(i),
        Expr::Merge { left, right, .. } => contains_fold(left) || contains_fold(right),
        _ => false,
    }
}

fn first_read_binding(stmts: &[Stmt]) -> Option<String> {
    for s in stmts {
        if let Stmt::Let { name, expr, body } = s {
            if matches!(expr, Expr::Read { .. }) {
                return Some(name.clone());
            }
            if let Some(n) = first_read_binding(body) {
                return Some(n);
            }
        }
    }
    None
}

fn vectorize_stmts(stmts: &[Stmt], chunk: usize, first_read: &str) -> Result<Vec<Stmt>, DslError> {
    let mut out = Vec::new();
    let mut iter = stmts.iter().peekable();
    while let Some(s) = iter.next() {
        match s {
            Stmt::Let { name, expr, body } => {
                let expr = match expr {
                    Expr::Read { data, .. } => Expr::Read {
                        pos: Box::new(Expr::Var("_i".into())),
                        data: data.clone(),
                        len: Some(Box::new(Expr::Const(Scalar::I64(chunk as i64)))),
                    },
                    other => other.clone(),
                };
                let mut body = vectorize_stmts(body, chunk, first_read)?;
                // Immediately after binding the first read: exit on empty.
                if name == first_read {
                    body.insert(
                        0,
                        Stmt::If {
                            cond: Expr::Apply(
                                ScalarOp::Eq,
                                vec![
                                    Expr::Len(Box::new(Expr::Var(name.clone()))),
                                    Expr::Const(Scalar::I64(0)),
                                ],
                            ),
                            then: vec![Stmt::Break],
                            els: Vec::new(),
                        },
                    );
                    // At the end of the body: advance the input cursor.
                    body.push(Stmt::Assign {
                        name: "_i".into(),
                        expr: Expr::Apply(
                            ScalarOp::Add,
                            vec![
                                Expr::Var("_i".into()),
                                Expr::Len(Box::new(Expr::Var(name.clone()))),
                            ],
                        ),
                    });
                }
                out.push(Stmt::Let {
                    name: name.clone(),
                    expr,
                    body,
                });
            }
            Stmt::Write { target, value, .. } => {
                let cursor = format!("_o_{target}");
                out.push(Stmt::Write {
                    target: target.clone(),
                    pos: Expr::Var(cursor.clone()),
                    value: value.clone(),
                });
                out.push(Stmt::Assign {
                    name: cursor.clone(),
                    expr: Expr::Apply(
                        ScalarOp::Add,
                        vec![Expr::Var(cursor), Expr::Len(Box::new(value.clone()))],
                    ),
                });
            }
            other => out.push(other.clone()),
        }
        let _ = &iter; // keep peekable for future extensions
    }
    Ok(out)
}

/// Shard a chunk loop for parallel execution: returns `n_shards` copies of
/// the program, the `k`-th starting its input cursor at `start + k·stride`
/// rows and stopping after `stride` rows. This is the paper's
/// "parallelization through the manipulation of loop boundaries"; callers
/// (the VM) run the shards on worker threads over disjoint output buffers.
pub fn shard(p: &Program, total_rows: usize, n_shards: usize) -> Vec<(usize, usize, Program)> {
    let n = n_shards.max(1);
    let stride = total_rows.div_ceil(n);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let start = k * stride;
        let end = (start + stride).min(total_rows);
        if start >= end {
            break;
        }
        out.push((start, end, p.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::printer::print_program;
    use crate::programs;
    use crate::typecheck::{check_program, TypeEnv};
    use adaptvm_storage::scalar::ScalarType;

    #[test]
    fn chunk_size_rewrites_reads() {
        let p = programs::fig2_example();
        let t = set_chunk_size(&p, ChunkSize::Tuple);
        let printed = print_program(&t);
        // Reads now carry an explicit length of 1 (not visible in the
        // surface syntax, check the AST).
        fn find_read_len(stmts: &[Stmt]) -> Option<i64> {
            for s in stmts {
                match s {
                    Stmt::Let { expr, body, .. } => {
                        if let Expr::Read { len: Some(l), .. } = expr {
                            if let Expr::Const(Scalar::I64(v)) = l.as_ref() {
                                return Some(*v);
                            }
                        }
                        if let Some(v) = find_read_len(body) {
                            return Some(v);
                        }
                    }
                    Stmt::Loop(b) => {
                        if let Some(v) = find_read_len(b) {
                            return Some(v);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        assert_eq!(find_read_len(&t.stmts), Some(1), "{printed}");
        let v = set_chunk_size(&p, ChunkSize::Vector(512));
        assert_eq!(find_read_len(&v.stmts), Some(512));
        let c = set_chunk_size(&p, ChunkSize::Column);
        assert_eq!(find_read_len(&c.stmts), None);
    }

    #[test]
    fn chunk_elements() {
        assert_eq!(ChunkSize::Tuple.elements(), 1);
        assert_eq!(ChunkSize::Vector(0).elements(), 1);
        assert_eq!(ChunkSize::Vector(1024).elements(), 1024);
        assert_eq!(ChunkSize::Column.elements(), usize::MAX);
    }

    #[test]
    fn vectorize_hypot() {
        let p = programs::hypot_whole_array();
        let v = vectorize(&p, 1024).unwrap();
        let printed = print_program(&v);
        assert!(printed.contains("loop {"), "{printed}");
        assert!(printed.contains("_i := _i + len(a)"), "{printed}");
        assert!(printed.contains("_o_out := _o_out + len(h)"), "{printed}");
        assert!(printed.contains("if len(a) == 0 then"), "{printed}");
        // Still type checks.
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::F64)
            .with_buffer("ys", ScalarType::F64)
            .with_buffer("out", ScalarType::F64);
        check_program(&v, &env).unwrap();
    }

    #[test]
    fn vectorize_rejects_folds_and_loops() {
        assert!(matches!(
            vectorize(&programs::sum_of_squares(), 1024),
            Err(DslError::Transform(_))
        ));
        assert!(matches!(
            vectorize(&programs::fig2_example(), 1024),
            Err(DslError::Transform(_))
        ));
        let non_zero_write = parse_program("let a = read 0 xs in { write out 5 a }").unwrap();
        assert!(vectorize(&non_zero_write, 16).is_err());
        let no_read = parse_program("mut x\nx := 1").unwrap();
        assert!(vectorize(&no_read, 16).is_err());
    }

    #[test]
    fn shard_covers_all_rows_once() {
        let p = programs::fig2_example();
        let shards = shard(&p, 10_000, 4);
        assert_eq!(shards.len(), 4);
        let mut covered = 0;
        let mut expected_start = 0;
        for (start, end, _) in &shards {
            assert_eq!(*start, expected_start);
            covered += end - start;
            expected_start = *end;
        }
        assert_eq!(covered, 10_000);
        // Degenerate cases.
        assert_eq!(shard(&p, 3, 8).len(), 3);
        assert_eq!(shard(&p, 100, 1).len(), 1);
    }
}
