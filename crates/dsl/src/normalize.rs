//! Normalization (§III-A): break composite operations into simple ones.
//!
//! The paper's example: `f(a,b) = sqrt(a² + b²)` is split into
//! `f1(a) = a²`, `f2(b) = b²`, `f3(x,y) = x + y`, `f4(x) = √x`, so each
//! piece can be dispatched to a **pre-compiled vectorized kernel**.
//!
//! This module implements that as a two-part rewrite into a normal form:
//!
//! 1. **ANF** — every skeleton's operands are *atoms* (variables or
//!    constants); nested skeletons are hoisted into fresh `let` bindings.
//! 2. **Single-op lambdas** — every `map`/`gen` lambda body is one scalar
//!    operation over atoms; composite bodies are flattened into chains of
//!    `map`s. `filter` predicates become a single comparison (or boolean
//!    variable) whose non-trivial operands were hoisted into `map`s — the
//!    flow carrier stays first so the selection still attaches to the
//!    original data.
//!
//! Normalized programs satisfy [`is_normalized_program`], the precondition
//! of the interpreter's kernel lookup and the dependency-graph builder.

use crate::ast::{Expr, Lambda, Program, ScalarOp, Stmt};

/// Counter-based fresh-name generator (`_t0`, `_t1`, …).
#[derive(Debug, Default)]
struct Fresh {
    counter: usize,
}

impl Fresh {
    fn next(&mut self) -> String {
        let name = format!("_t{}", self.counter);
        self.counter += 1;
        name
    }
}

/// Normalize a whole program.
pub fn normalize_program(p: &Program) -> Program {
    let mut fresh = Fresh::default();
    Program {
        funcs: p.funcs.clone(),
        stmts: normalize_stmts(&p.stmts, &mut fresh),
    }
}

/// True when every skeleton has atom operands and single-op lambdas.
pub fn is_normalized_program(p: &Program) -> bool {
    p.stmts.iter().all(stmt_normalized)
}

fn stmt_normalized(s: &Stmt) -> bool {
    match s {
        Stmt::DeclareMut { .. } | Stmt::Break => true,
        Stmt::Assign { expr, .. } => expr_normalized(expr),
        Stmt::Let { expr, body, .. } => expr_normalized(expr) && body.iter().all(stmt_normalized),
        Stmt::Write { pos, value, .. } => scalar_normalized(pos) && is_atom(value),
        Stmt::Scatter { indices, value, .. } => is_atom(indices) && is_atom(value),
        Stmt::Loop(body) => body.iter().all(stmt_normalized),
        Stmt::If { cond, then, els } => {
            scalar_normalized(cond)
                && then.iter().all(stmt_normalized)
                && els.iter().all(stmt_normalized)
        }
        Stmt::ExprStmt(e) => expr_normalized(e),
    }
}

fn is_atom(e: &Expr) -> bool {
    matches!(e, Expr::Var(_) | Expr::Const(_))
}

/// Scalar (non-skeleton) expressions may keep nested `Apply`s — they drive
/// loop counters, not kernels — but must not contain skeletons except
/// `len(atom)`.
fn scalar_normalized(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Apply(_, args) => args.iter().all(scalar_normalized),
        Expr::Len(inner) => is_atom(inner),
        _ => false,
    }
}

fn expr_normalized(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Apply(_, args) => args.iter().all(scalar_normalized),
        Expr::Len(inner) => is_atom(inner),
        Expr::Map { f, inputs } => f.is_normalized() && inputs.iter().all(is_atom),
        Expr::Filter { p, inputs } => p.is_normalized() && inputs.iter().all(is_atom),
        Expr::Fold { init, input, .. } => is_atom(init) && is_atom(input),
        Expr::Read { pos, len, .. } => {
            scalar_normalized(pos) && len.as_deref().is_none_or(scalar_normalized)
        }
        Expr::Gather { indices, .. } => is_atom(indices),
        Expr::Gen { f, len } => f.is_normalized() && scalar_normalized(len),
        Expr::Condense(inner) => is_atom(inner),
        Expr::Merge { left, right, .. } => is_atom(left) && is_atom(right),
    }
}

/// True when a lambda body is pure per-lane scalar computation — the only
/// shape `flatten_body` can rewrite. A nested skeleton referencing a
/// parameter would leak that parameter out of the lambda's scope if
/// hoisted, so such lambdas stay composite (the type checker rejects
/// them; see `check_lambda_body_shape`).
fn body_flattenable(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Apply(_, args) => args.iter().all(body_flattenable),
        Expr::Len(inner) => body_flattenable(inner),
        _ => false,
    }
}

fn normalize_stmts(stmts: &[Stmt], fresh: &mut Fresh) -> Vec<Stmt> {
    stmts.iter().map(|s| normalize_stmt(s, fresh)).collect()
}

/// Wrap a statement in `let` bindings: `binds` outermost-first.
fn wrap_bindings(binds: Vec<(String, Expr)>, inner: Stmt) -> Stmt {
    let mut stmt = inner;
    for (name, expr) in binds.into_iter().rev() {
        stmt = Stmt::Let {
            name,
            expr,
            body: vec![stmt],
        };
    }
    stmt
}

fn normalize_stmt(s: &Stmt, fresh: &mut Fresh) -> Stmt {
    match s {
        Stmt::DeclareMut { .. } | Stmt::Break => s.clone(),
        Stmt::Assign { name, expr } => {
            let mut binds = Vec::new();
            let e = normalize_expr(expr, &mut binds, fresh);
            wrap_bindings(
                binds,
                Stmt::Assign {
                    name: name.clone(),
                    expr: e,
                },
            )
        }
        Stmt::Let { name, expr, body } => {
            let mut binds = Vec::new();
            let e = normalize_expr(expr, &mut binds, fresh);
            wrap_bindings(
                binds,
                Stmt::Let {
                    name: name.clone(),
                    expr: e,
                    body: normalize_stmts(body, fresh),
                },
            )
        }
        Stmt::Write { target, pos, value } => {
            let mut binds = Vec::new();
            let value = atomize(value, &mut binds, fresh);
            let pos = normalize_scalar(pos, &mut binds, fresh);
            wrap_bindings(
                binds,
                Stmt::Write {
                    target: target.clone(),
                    pos,
                    value,
                },
            )
        }
        Stmt::Scatter {
            target,
            indices,
            value,
            conflict,
        } => {
            let mut binds = Vec::new();
            let indices = atomize(indices, &mut binds, fresh);
            let value = atomize(value, &mut binds, fresh);
            wrap_bindings(
                binds,
                Stmt::Scatter {
                    target: target.clone(),
                    indices,
                    value,
                    conflict: *conflict,
                },
            )
        }
        Stmt::Loop(body) => Stmt::Loop(normalize_stmts(body, fresh)),
        Stmt::If { cond, then, els } => {
            let mut binds = Vec::new();
            let cond = normalize_scalar(cond, &mut binds, fresh);
            wrap_bindings(
                binds,
                Stmt::If {
                    cond,
                    then: normalize_stmts(then, fresh),
                    els: normalize_stmts(els, fresh),
                },
            )
        }
        Stmt::ExprStmt(e) => {
            let mut binds = Vec::new();
            let e = normalize_expr(e, &mut binds, fresh);
            wrap_bindings(binds, Stmt::ExprStmt(e))
        }
    }
}

/// Normalize an expression, pushing hoisted bindings into `binds`.
fn normalize_expr(e: &Expr, binds: &mut Vec<(String, Expr)>, fresh: &mut Fresh) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Apply(op, args) => {
            // Scalar computation; hoist any embedded skeletons.
            let args = args
                .iter()
                .map(|a| normalize_scalar(a, binds, fresh))
                .collect();
            Expr::Apply(*op, args)
        }
        Expr::Len(inner) => Expr::Len(Box::new(atomize(inner, binds, fresh))),
        Expr::Map { f, inputs } => {
            let inputs: Vec<Expr> = inputs.iter().map(|i| atomize(i, binds, fresh)).collect();
            // Arity-mismatched lambdas can't be flattened (parameters
            // without inputs); leave them composite so the type checker /
            // interpreter reports the mismatch instead of a panic here.
            // Same for skeleton-carrying bodies, which the checker rejects.
            if f.is_normalized() || f.params.len() != inputs.len() || !body_flattenable(&f.body) {
                Expr::Map {
                    f: f.clone(),
                    inputs,
                }
            } else {
                flatten_lambda(f, &inputs, binds, fresh)
            }
        }
        Expr::Filter { p, inputs } => {
            let inputs: Vec<Expr> = inputs.iter().map(|i| atomize(i, binds, fresh)).collect();
            // Same guard as Map, plus: a filter with no inputs has no flow
            // carrier to attach a selection to — leave it for the checker.
            if p.is_normalized()
                || p.params.len() != inputs.len()
                || inputs.is_empty()
                || !body_flattenable(&p.body)
            {
                Expr::Filter {
                    p: p.clone(),
                    inputs,
                }
            } else {
                flatten_filter(p, &inputs, binds, fresh)
            }
        }
        Expr::Fold { r, init, input } => Expr::Fold {
            r: *r,
            init: Box::new(atomize_scalar(init, binds, fresh)),
            input: Box::new(atomize(input, binds, fresh)),
        },
        Expr::Read { pos, data, len } => Expr::Read {
            pos: Box::new(normalize_scalar(pos, binds, fresh)),
            data: data.clone(),
            len: len
                .as_ref()
                .map(|l| Box::new(normalize_scalar(l, binds, fresh))),
        },
        Expr::Gather { indices, data } => Expr::Gather {
            indices: Box::new(atomize(indices, binds, fresh)),
            data: data.clone(),
        },
        Expr::Gen { f, len } => {
            let len_e = normalize_scalar(len, binds, fresh);
            // A gen lambda takes exactly the index; flattening a
            // wrong-arity lambda would index parameters past the single
            // input — leave it for the checker (same policy as Map).
            if f.is_normalized() || f.params.len() != 1 || !body_flattenable(&f.body) {
                Expr::Gen {
                    f: f.clone(),
                    len: Box::new(len_e),
                }
            } else {
                // gen f n  ⇒  let idx = gen (\i -> i) n in <maps over idx>
                let idx = fresh.next();
                binds.push((
                    idx.clone(),
                    Expr::Gen {
                        f: Lambda::new(vec!["i"], Expr::Var("i".into())),
                        len: Box::new(len_e),
                    },
                ));
                flatten_lambda(f, &[Expr::Var(idx)], binds, fresh)
            }
        }
        Expr::Condense(inner) => Expr::Condense(Box::new(atomize(inner, binds, fresh))),
        Expr::Merge { kind, left, right } => Expr::Merge {
            kind: *kind,
            left: Box::new(atomize(left, binds, fresh)),
            right: Box::new(atomize(right, binds, fresh)),
        },
    }
}

/// Normalize in atom position: bind anything non-atomic to a fresh name.
fn atomize(e: &Expr, binds: &mut Vec<(String, Expr)>, fresh: &mut Fresh) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        other => {
            let ne = normalize_expr(other, binds, fresh);
            match ne {
                Expr::Const(_) | Expr::Var(_) => ne,
                bound => {
                    let name = fresh.next();
                    binds.push((name.clone(), bound));
                    Expr::Var(name)
                }
            }
        }
    }
}

/// Like [`atomize`] but leaves pure scalar computation inline (fold inits
/// are usually constants or counters).
fn atomize_scalar(e: &Expr, binds: &mut Vec<(String, Expr)>, fresh: &mut Fresh) -> Expr {
    if scalar_normalized(e) {
        e.clone()
    } else {
        atomize(e, binds, fresh)
    }
}

/// Normalize a scalar-position expression: skeletons inside are hoisted,
/// plain arithmetic stays inline.
fn normalize_scalar(e: &Expr, binds: &mut Vec<(String, Expr)>, fresh: &mut Fresh) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Apply(op, args) => Expr::Apply(
            *op,
            args.iter()
                .map(|a| normalize_scalar(a, binds, fresh))
                .collect(),
        ),
        Expr::Len(inner) => Expr::Len(Box::new(atomize(inner, binds, fresh))),
        other => atomize(other, binds, fresh),
    }
}

/// An operand of a flattened lambda body: a constant, one of the original
/// parameters, or a derived array bound earlier in the chain.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Const(Expr),
    Array(String),
}

/// Flatten a composite `map` lambda into a chain of single-op maps. Returns
/// the final (normalized) map expression; intermediate maps go to `binds`.
fn flatten_lambda(
    f: &Lambda,
    inputs: &[Expr],
    binds: &mut Vec<(String, Expr)>,
    fresh: &mut Fresh,
) -> Expr {
    let operand = flatten_body(&f.body, f, inputs, binds, fresh);
    match operand {
        Operand::Array(name) => {
            // The chain already ends in a bound map — unwrap the last
            // binding so the caller owns the final expression.
            if let Some(pos) = binds.iter().rposition(|(n, _)| *n == name) {
                let (_, e) = binds.remove(pos);
                e
            } else {
                // The body was a bare parameter: identity map over it.
                Expr::Var(name)
            }
        }
        Operand::Const(c) => {
            // Constant body: keep every input so the broadcast length stays
            // that of the first *array* input — dropping inputs here used to
            // shrink `map (\a b -> c) scalar arr` from len(arr) lanes to 1.
            if inputs.is_empty() {
                return Expr::Map {
                    f: Lambda::new(vec!["_x"], c),
                    inputs: vec![Expr::Const(adaptvm_storage::scalar::Scalar::I64(0))],
                };
            }
            let params: Vec<String> = (0..inputs.len()).map(|i| format!("_x{i}")).collect();
            Expr::Map {
                f: Lambda {
                    params: params.clone(),
                    body: Box::new(c),
                },
                inputs: inputs.to_vec(),
            }
        }
    }
}

/// Flatten a body expression to an operand, emitting single-op maps.
fn flatten_body(
    e: &Expr,
    f: &Lambda,
    inputs: &[Expr],
    binds: &mut Vec<(String, Expr)>,
    fresh: &mut Fresh,
) -> Operand {
    match e {
        Expr::Const(_) => Operand::Const(e.clone()),
        Expr::Var(v) => {
            match f.params.iter().position(|p| p == v) {
                Some(i) => match &inputs[i] {
                    Expr::Var(arr) => Operand::Array(arr.clone()),
                    // Constant input broadcast as scalar.
                    c => Operand::Const(c.clone()),
                },
                // Captured outer variable (scalar) — treat as constant.
                None => Operand::Const(e.clone()),
            }
        }
        Expr::Apply(op, args) => {
            let operands: Vec<Operand> = args
                .iter()
                .map(|a| flatten_body(a, f, inputs, binds, fresh))
                .collect();
            emit_single_op_map(*op, &operands, binds, fresh)
        }
        // Only `len(...)` reaches here: `body_flattenable` filters out
        // skeleton-carrying bodies before flattening starts, and `len` of
        // an outer array is lane-invariant — safe to embed as a constant.
        other => Operand::Const(other.clone()),
    }
}

/// Emit `tN = map (\…single op…) arrays…`, deduplicating array operands.
fn emit_single_op_map(
    op: ScalarOp,
    operands: &[Operand],
    binds: &mut Vec<(String, Expr)>,
    fresh: &mut Fresh,
) -> Operand {
    // Collect distinct array operands, in order.
    let mut arrays: Vec<String> = Vec::new();
    for o in operands {
        if let Operand::Array(a) = o {
            if !arrays.contains(a) {
                arrays.push(a.clone());
            }
        }
    }
    let params: Vec<String> = (0..arrays.len()).map(|i| format!("_p{i}")).collect();
    let body_args: Vec<Expr> = operands
        .iter()
        .map(|o| match o {
            Operand::Const(c) => c.clone(),
            Operand::Array(a) => {
                let idx = arrays.iter().position(|x| x == a).expect("collected");
                Expr::Var(params[idx].clone())
            }
        })
        .collect();
    if arrays.is_empty() {
        // Pure constant folding opportunity; keep as scalar constant
        // expression (it stays inside the next op's lambda).
        return Operand::Const(Expr::Apply(op, body_args));
    }
    let lambda = Lambda {
        params: params.clone(),
        body: Box::new(Expr::Apply(op, body_args)),
    };
    let name = fresh.next();
    binds.push((
        name.clone(),
        Expr::Map {
            f: lambda,
            inputs: arrays.into_iter().map(Expr::Var).collect(),
        },
    ));
    Operand::Array(name)
}

/// Flatten a composite filter predicate. The flow carrier (`inputs[0]`)
/// stays first; derived predicate operands are appended as extra inputs.
fn flatten_filter(
    p: &Lambda,
    inputs: &[Expr],
    binds: &mut Vec<(String, Expr)>,
    fresh: &mut Fresh,
) -> Expr {
    // Try to keep the root comparison in the predicate; hoist its operands.
    let (root_op, root_args): (ScalarOp, &[Expr]) = match p.body.as_ref() {
        Expr::Apply(op, args) if op.is_comparison() => (*op, args),
        // Anything else: compute the whole boolean array, then select by it.
        _ => {
            let bools = flatten_body(&p.body, p, inputs, binds, fresh);
            return filter_by_operands(
                inputs,
                ScalarOp::Eq,
                &[
                    bools,
                    Operand::Const(Expr::Const(adaptvm_storage::scalar::Scalar::Bool(true))),
                ],
            );
        }
    };
    let operands: Vec<Operand> = root_args
        .iter()
        .map(|a| flatten_body(a, p, inputs, binds, fresh))
        .collect();
    filter_by_operands(inputs, root_op, &operands)
}

/// Build the final normalized filter: flow carrier first, then the distinct
/// array operands of the root comparison.
fn filter_by_operands(inputs: &[Expr], op: ScalarOp, operands: &[Operand]) -> Expr {
    let flow = inputs[0].clone();
    let flow_name = match &flow {
        Expr::Var(v) => Some(v.clone()),
        _ => None,
    };
    let mut arrays: Vec<String> = Vec::new();
    for o in operands {
        if let Operand::Array(a) = o {
            if Some(a) != flow_name.as_ref() && !arrays.contains(a) {
                arrays.push(a.clone());
            }
        }
    }
    // Parameter 0 is the flow carrier; extra params follow.
    let mut params = vec!["_x0".to_string()];
    params.extend((0..arrays.len()).map(|i| format!("_x{}", i + 1)));
    let body_args: Vec<Expr> = operands
        .iter()
        .map(|o| match o {
            Operand::Const(c) => c.clone(),
            Operand::Array(a) => {
                if Some(a) == flow_name.as_ref() {
                    Expr::Var(params[0].clone())
                } else {
                    let idx = arrays.iter().position(|x| x == a).expect("collected");
                    Expr::Var(params[idx + 1].clone())
                }
            }
        })
        .collect();
    let mut all_inputs = vec![flow];
    all_inputs.extend(arrays.into_iter().map(Expr::Var));
    Expr::Filter {
        p: Lambda {
            params,
            body: Box::new(Expr::Apply(op, body_args)),
        },
        inputs: all_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};
    use crate::printer::print_program;
    use crate::programs;
    use crate::typecheck::{check_program, TypeEnv};
    use adaptvm_storage::scalar::ScalarType;

    fn normalize_src(src: &str) -> Program {
        normalize_program(&parse_program(src).unwrap())
    }

    #[test]
    fn already_normal_is_untouched() {
        let p = programs::fig2_example();
        let n = normalize_program(&p);
        assert_eq!(p, n);
        assert!(is_normalized_program(&n));
    }

    #[test]
    fn hypot_splits_into_four_ops() {
        // The paper's §III-A example.
        let p = programs::hypot_whole_array();
        assert!(!is_normalized_program(&p));
        let n = normalize_program(&p);
        assert!(is_normalized_program(&n), "{}", print_program(&n));
        // Count the maps: p², q², +, sqrt → 4 single-op maps.
        let printed = print_program(&n);
        assert_eq!(printed.matches("map (").count(), 4, "{printed}");
        // Still type checks.
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::F64)
            .with_buffer("ys", ScalarType::F64)
            .with_buffer("out", ScalarType::F64);
        check_program(&n, &env).unwrap();
    }

    #[test]
    fn duplicate_operands_deduplicated() {
        // x*x over one input must produce a unary map, not binary.
        let p = normalize_src("let s = map (\\x -> sqrt(x * x)) (read 0 xs) in { write out 0 s }");
        assert!(is_normalized_program(&p));
        let printed = print_program(&p);
        assert!(printed.contains("_p0 * _p0"), "{printed}");
    }

    #[test]
    fn complex_filter_keeps_flow_first() {
        // filter (\x -> 2*x+1 > 3) a : selection must attach to `a`.
        let p = normalize_src(
            "let a = read 0 xs in { let t = filter (\\x -> 2 * x + 1 > 3) a in { let b = condense t in { write out 0 b } } }",
        );
        assert!(is_normalized_program(&p), "{}", print_program(&p));
        let printed = print_program(&p);
        // The final filter's first input is still `a`.
        assert!(
            printed.contains("filter (\\_x0 _x1 -> _x1 > 3) a"),
            "{printed}"
        );
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("out", ScalarType::I64);
        check_program(&p, &env).unwrap();
    }

    #[test]
    fn conjunction_predicate_becomes_bool_select() {
        let p = normalize_src(
            "let a = read 0 xs in { let t = filter (\\x -> x > 0 && x < 10) a in { write out 0 (condense t) } }",
        );
        assert!(is_normalized_program(&p), "{}", print_program(&p));
        let printed = print_program(&p);
        // Root is not a comparison → select by == true on a computed bool
        // array.
        assert!(printed.contains("== true"), "{printed}");
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("out", ScalarType::I64);
        check_program(&p, &env).unwrap();
    }

    #[test]
    fn nested_skeletons_are_hoisted() {
        let p =
            normalize_src("let s = fold sum 0 (map (\\x -> x + 1) (read 0 xs)) in { result := s }");
        assert!(is_normalized_program(&p), "{}", print_program(&p));
        // read bound, map bound, fold over the map temp.
        let printed = print_program(&p);
        assert!(printed.contains("let _t0 = read 0 xs"), "{printed}");
    }

    #[test]
    fn gen_with_complex_lambda() {
        let p = normalize_src("let g = gen (\\i -> i * i + 1) 10 in { write out 0 g }");
        assert!(is_normalized_program(&p), "{}", print_program(&p));
        let printed = print_program(&p);
        assert!(printed.contains("gen (\\i -> i) 10"), "{printed}");
    }

    #[test]
    fn captured_scalars_stay_inline() {
        // `alpha` is a captured outer scalar, not an array operand.
        let src = "mut alpha\nalpha := 3\nlet a = read 0 xs in { let r = map (\\x -> alpha * x + 1) a in { write out 0 r } }";
        let p = normalize_src(src);
        assert!(is_normalized_program(&p), "{}", print_program(&p));
        let printed = print_program(&p);
        assert!(printed.contains("alpha * _p0"), "{printed}");
    }

    #[test]
    fn normalization_is_idempotent() {
        for p in [
            programs::hypot_whole_array(),
            programs::fig2_example(),
            programs::map_chain(100),
        ] {
            let once = normalize_program(&p);
            let twice = normalize_program(&once);
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn arity_mismatched_map_lambda_stays_composite() {
        // Regression: flattening a 2-param lambda over 1 input used to
        // index past the input list and panic; it must stay composite so
        // the type checker reports the mismatch.
        use crate::ast::build::*;
        use crate::ast::ScalarOp::{Add, Mul};
        let bad = Program::new(vec![let_in(
            "r",
            map(
                lam2("a", "b", bin(Add, bin(Mul, var("a"), var("a")), var("b"))),
                vec![read(int(0), "xs")],
            ),
            vec![write("out", int(0), var("r"))],
        )]);
        let n = normalize_program(&bad);
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("out", ScalarType::I64);
        assert!(matches!(
            check_program(&n, &env),
            Err(crate::DslError::Type(_))
        ));
    }

    #[test]
    fn empty_input_filter_stays_composite() {
        // Regression: a composite no-input filter predicate used to panic
        // on `inputs[0]` while hunting for the flow carrier.
        use crate::ast::build::*;
        use crate::ast::ScalarOp::{Add, Gt};
        let bad = Program::new(vec![let_in(
            "t",
            filter_multi(
                lam1("x", bin(Gt, bin(Add, var("x"), int(1)), int(3))),
                vec![],
            ),
            vec![write("out", int(0), var("t"))],
        )]);
        let n = normalize_program(&bad);
        let env = TypeEnv::new().with_buffer("out", ScalarType::I64);
        assert!(matches!(
            check_program(&n, &env),
            Err(crate::DslError::Type(_))
        ));
    }

    #[test]
    fn arity_mismatched_gen_lambda_stays_composite() {
        // Regression: gen's flattening rewrites over a single index array,
        // so a 2-param lambda used to index past it.
        use crate::ast::build::*;
        use crate::ast::ScalarOp::{Add, Mul};
        let bad = Program::new(vec![let_in(
            "g",
            gen(
                lam2("a", "b", bin(Add, bin(Mul, var("a"), var("a")), var("b"))),
                int(4),
            ),
            vec![write("out", int(0), var("g"))],
        )]);
        let n = normalize_program(&bad);
        let env = TypeEnv::new().with_buffer("out", ScalarType::I64);
        assert!(matches!(
            check_program(&n, &env),
            Err(crate::DslError::Type(_))
        ));
    }

    #[test]
    fn constant_body_map_keeps_all_inputs() {
        // Regression (found by the query fuzzer): a constant-body map used
        // to be rewritten over only its first input — if that input was a
        // broadcast scalar, the result length collapsed from len(array)
        // to 1.
        use crate::ast::build::*;
        let p = Program::new(vec![write(
            "ob",
            int(2),
            map(
                lam2("p0", "p1", bin(ScalarOp::Gt, int(-38), int(-23))),
                vec![int(0), read(int(0), "ss")],
            ),
        )]);
        let n = normalize_program(&p);
        let env = TypeEnv::new()
            .with_buffer("ss", ScalarType::Str)
            .with_buffer("ob", ScalarType::Bool);
        check_program(&n, &env).unwrap();
        // Both original inputs (the scalar and the read temp) must survive.
        fn find_map_input_count(stmts: &[Stmt]) -> Option<usize> {
            for s in stmts {
                match s {
                    Stmt::Write {
                        value: Expr::Map { inputs, .. },
                        ..
                    } => {
                        return Some(inputs.len());
                    }
                    Stmt::Let { expr, body, .. } => {
                        if let Expr::Map { inputs, .. } = expr {
                            return Some(inputs.len());
                        }
                        if let Some(n) = find_map_input_count(body) {
                            return Some(n);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        assert_eq!(
            find_map_input_count(&n.stmts),
            Some(2),
            "{}",
            print_program(&n)
        );
    }

    #[test]
    fn skeleton_lambda_bodies_stay_composite() {
        // Regression (found by the query fuzzer): flattening a lambda
        // whose body folds over a buffer used to hoist the fold out of
        // the lambda, leaking the parameter (`x`) out of scope — the
        // re-check after normalization failed with `Unbound("x")`. Such
        // lambdas now stay composite; the checker reports a Type error
        // on both the original and the normalized program.
        let p = normalize_src(
            "let r = map (\\x -> (fold min x (read 0 sa))) (read 0 xs) in { write out 0 r }",
        );
        let env = TypeEnv::new()
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("sa", ScalarType::I64)
            .with_buffer("out", ScalarType::I64);
        assert!(matches!(
            check_program(&p, &env),
            Err(crate::DslError::Type(_))
        ));
    }

    #[test]
    fn normalized_expr_predicate() {
        let e = parse_expr("map (\\x -> 2 * x) input").unwrap();
        let mut binds = Vec::new();
        let mut fresh = Fresh::default();
        let n = normalize_expr(&e, &mut binds, &mut fresh);
        assert!(binds.is_empty());
        assert_eq!(n, e);
    }
}
