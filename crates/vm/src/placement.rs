//! Adaptive device placement (§IV target 3).
//!
//! Given the registered devices and the observed shape of a fragment's work
//! (lanes, operations, bytes), the policy picks the device with the lowest
//! *predicted* virtual cost, then corrects its predictions with observed
//! costs (a multiplicative model-error term per device). This closes the
//! loop the paper asks for: "making adaptive decisions which strategy to
//! use … but also on which hardware".

use adaptvm_hetsim::cost::price;
use adaptvm_hetsim::device::DeviceSpec;

/// Discount for the per-device model-error correction.
const ALPHA: f64 = 0.2;

/// Device placement policy.
#[derive(Debug)]
pub struct PlacementPolicy {
    devices: Vec<DeviceSpec>,
    /// Multiplicative correction per device (observed / predicted).
    correction: Vec<f64>,
    decisions: Vec<u64>,
}

impl PlacementPolicy {
    /// Policy over a device set (must be non-empty).
    pub fn new(devices: Vec<DeviceSpec>) -> PlacementPolicy {
        assert!(!devices.is_empty(), "placement needs at least one device");
        let n = devices.len();
        PlacementPolicy {
            devices,
            correction: vec![1.0; n],
            decisions: vec![0; n],
        }
    }

    /// The registered devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Choose a device for a fragment execution of the given shape.
    /// Returns the device index.
    pub fn choose(&mut self, lanes: usize, ops: usize, bytes_in: usize, bytes_out: usize) -> usize {
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        for (i, d) in self.devices.iter().enumerate() {
            let predicted =
                price(d, lanes, ops, bytes_in, bytes_out).total_ns() as f64 * self.correction[i];
            if predicted < best_cost {
                best_cost = predicted;
                best = i;
            }
        }
        self.decisions[best] += 1;
        best
    }

    /// Feed back the observed virtual cost of running on `device`.
    pub fn feedback(
        &mut self,
        device: usize,
        lanes: usize,
        ops: usize,
        bytes_in: usize,
        bytes_out: usize,
        observed_ns: u64,
    ) {
        let predicted = price(&self.devices[device], lanes, ops, bytes_in, bytes_out).total_ns();
        if predicted == 0 {
            return;
        }
        let ratio = observed_ns as f64 / predicted as f64;
        self.correction[device] = ALPHA * ratio + (1.0 - ALPHA) * self.correction[device];
    }

    /// How many times each device was chosen.
    pub fn decisions(&self) -> &[u64] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_dgpu() -> PlacementPolicy {
        PlacementPolicy::new(vec![DeviceSpec::cpu(), DeviceSpec::discrete_gpu()])
    }

    #[test]
    fn small_work_goes_to_cpu() {
        let mut p = cpu_dgpu();
        let d = p.choose(1024, 4, 8192, 8192);
        assert_eq!(p.devices()[d].name, "cpu");
    }

    #[test]
    fn large_work_goes_to_gpu() {
        let mut p = cpu_dgpu();
        let n = 64 * 1024 * 1024;
        let d = p.choose(n, 16, n * 8, n * 8);
        assert_eq!(p.devices()[d].name, "dgpu");
    }

    #[test]
    fn crossover_sweep_is_monotone() {
        let mut p = cpu_dgpu();
        let mut gpu_started = false;
        for exp in 8..=26 {
            let n = 1usize << exp;
            let d = p.choose(n, 16, n * 8, n * 8);
            let is_gpu = p.devices()[d].name == "dgpu";
            if gpu_started {
                assert!(is_gpu, "fell back to CPU at 2^{exp}");
            }
            gpu_started |= is_gpu;
        }
        assert!(gpu_started, "gpu never chosen");
        // Both devices got decisions.
        assert!(p.decisions().iter().all(|&c| c > 0));
    }

    #[test]
    fn feedback_corrects_model_error() {
        let mut p = cpu_dgpu();
        let (lanes, ops, b) = (1 << 20, 16, 8 << 20);
        let before = p.choose(lanes, ops, b, b);
        // Report that the chosen device is consistently 100× slower than
        // predicted; the policy must eventually switch.
        for _ in 0..50 {
            let predicted = price(&p.devices()[before].clone(), lanes, ops, b, b).total_ns();
            p.feedback(before, lanes, ops, b, b, predicted * 100);
        }
        let after = p.choose(lanes, ops, b, b);
        assert_ne!(
            before, after,
            "policy should abandon the mispredicted device"
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_set_panics() {
        let _ = PlacementPolicy::new(vec![]);
    }
}
