//! VM error type.

use std::fmt;

use adaptvm_dsl::DslError;
use adaptvm_jit::JitError;
use adaptvm_kernels::KernelError;
use adaptvm_storage::StorageError;

/// Errors surfaced while executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// DSL-level failure (parse/type/transform).
    Dsl(DslError),
    /// Kernel dispatch or execution failure.
    Kernel(KernelError),
    /// Storage failure.
    Storage(StorageError),
    /// JIT failure that could not be recovered by interpretation.
    Jit(JitError),
    /// Reference to an unbound variable at runtime.
    Unbound(String),
    /// Reference to an unknown buffer.
    UnknownBuffer(String),
    /// A runtime value had an unexpected shape (e.g. vector where scalar
    /// expected).
    Shape(String),
    /// The iteration safety limit was exceeded (runaway loop).
    IterationLimit(u64),
    /// The run did not complete on its executor: cancelled via a cancel
    /// token, past its deadline, or refused admission by a shut-down /
    /// draining scheduler or service.
    Cancelled,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Dsl(e) => write!(f, "dsl: {e}"),
            VmError::Kernel(e) => write!(f, "kernel: {e}"),
            VmError::Storage(e) => write!(f, "storage: {e}"),
            VmError::Jit(e) => write!(f, "jit: {e}"),
            VmError::Unbound(v) => write!(f, "unbound variable {v}"),
            VmError::UnknownBuffer(b) => write!(f, "unknown buffer {b}"),
            VmError::Shape(m) => write!(f, "shape error: {m}"),
            VmError::IterationLimit(n) => write!(f, "loop exceeded {n} iterations"),
            VmError::Cancelled => write!(f, "run cancelled (token, deadline, or admission)"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<DslError> for VmError {
    fn from(e: DslError) -> VmError {
        VmError::Dsl(e)
    }
}
impl From<KernelError> for VmError {
    fn from(e: KernelError) -> VmError {
        VmError::Kernel(e)
    }
}
impl From<StorageError> for VmError {
    fn from(e: StorageError) -> VmError {
        VmError::Storage(e)
    }
}
impl From<JitError> for VmError {
    fn from(e: JitError) -> VmError {
        VmError::Jit(e)
    }
}
