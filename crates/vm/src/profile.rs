//! Profiling: the feedback that drives every adaptive decision.
//!
//! §III: "the VM collects profiling information (time spent in each
//! operation, number of calls) to identify hot paths and potential targets
//! for further optimization", and §III-C: workload changes are "triggered
//! by \[the\] program itself or by profiling information".
//!
//! The profile records, per operation site (binding name or sink label):
//! call counts, tuple counts, and elapsed nanoseconds — and per filter
//! site, observed selectivity with an EWMA-based shift detector.

use std::collections::HashMap;

/// Counters for one operation site.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpProfile {
    /// Invocations (chunks processed).
    pub calls: u64,
    /// Tuples processed.
    pub tuples: u64,
    /// Total elapsed nanoseconds.
    pub total_ns: u64,
}

impl OpProfile {
    /// Average nanoseconds per call.
    pub fn ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }

    /// Average nanoseconds per tuple.
    pub fn ns_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.tuples as f64
        }
    }
}

/// Selectivity classes used as trace-specialization situations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelClass {
    /// Under ~5% pass rate.
    Low,
    /// Between the extremes.
    Mid,
    /// Over ~95% pass rate.
    High,
}

impl SelClass {
    /// Classify a pass rate.
    pub fn of(selectivity: f64) -> SelClass {
        if selectivity < 0.05 {
            SelClass::Low
        } else if selectivity > 0.95 {
            SelClass::High
        } else {
            SelClass::Mid
        }
    }

    /// Stable name for situation keys.
    pub fn name(self) -> &'static str {
        match self {
            SelClass::Low => "low",
            SelClass::Mid => "mid",
            SelClass::High => "high",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SelTracker {
    ewma: f64,
    observations: u64,
}

/// The run profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    ops: HashMap<String, OpProfile>,
    selectivity: HashMap<String, SelTracker>,
    /// Loop iterations executed.
    pub iterations: u64,
}

/// EWMA decay for selectivity tracking.
const SEL_ALPHA: f64 = 0.2;

impl Profile {
    /// Fresh profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Record one operation execution.
    pub fn record(&mut self, site: &str, ns: u64, tuples: usize) {
        let p = self.ops.entry(site.to_string()).or_default();
        p.calls += 1;
        p.tuples += tuples as u64;
        p.total_ns += ns;
    }

    /// Record an observed filter selectivity.
    pub fn record_selectivity(&mut self, site: &str, selectivity: f64) {
        let t = self.selectivity.entry(site.to_string()).or_default();
        if t.observations == 0 {
            t.ewma = selectivity;
        } else {
            t.ewma = SEL_ALPHA * selectivity + (1.0 - SEL_ALPHA) * t.ewma;
        }
        t.observations += 1;
    }

    /// Counters for one site.
    pub fn op(&self, site: &str) -> OpProfile {
        self.ops.get(site).copied().unwrap_or_default()
    }

    /// All sites with counters, sorted by total time descending (the "hot
    /// path" view the optimizer seeds from).
    pub fn hottest(&self) -> Vec<(String, OpProfile)> {
        let mut v: Vec<_> = self.ops.iter().map(|(k, p)| (k.clone(), *p)).collect();
        v.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        v
    }

    /// Per-site average cost per call — the measured replacement for
    /// static costs in the dependency graph ([`adaptvm_dsl::depgraph::DepGraph::apply_costs`]).
    pub fn costs(&self) -> HashMap<String, f64> {
        self.ops
            .iter()
            .map(|(k, p)| (k.clone(), p.ns_per_call()))
            .collect()
    }

    /// Smoothed selectivity of a filter site.
    pub fn selectivity(&self, site: &str) -> Option<f64> {
        self.selectivity.get(site).map(|t| t.ewma)
    }

    /// Selectivity class of a site (Mid when unobserved).
    pub fn sel_class(&self, site: &str) -> SelClass {
        self.selectivity(site).map_or(SelClass::Mid, SelClass::of)
    }

    /// Sites whose latest smoothed selectivity moved to a different class
    /// than `previous` recorded — the workload-shift signal.
    pub fn shifted_sites(&self, previous: &HashMap<String, SelClass>) -> Vec<String> {
        let mut out = Vec::new();
        for (site, tracker) in &self.selectivity {
            if let Some(&prev) = previous.get(site) {
                if SelClass::of(tracker.ewma) != prev {
                    out.push(site.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Snapshot of current selectivity classes.
    pub fn sel_classes(&self) -> HashMap<String, SelClass> {
        self.selectivity
            .iter()
            .map(|(k, t)| (k.clone(), SelClass::of(t.ewma)))
            .collect()
    }

    /// Merge another profile into this one (used by sharded runs).
    pub fn merge(&mut self, other: &Profile) {
        for (k, p) in &other.ops {
            let dst = self.ops.entry(k.clone()).or_default();
            dst.calls += p.calls;
            dst.tuples += p.tuples;
            dst.total_ns += p.total_ns;
        }
        self.iterations += other.iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut p = Profile::new();
        p.record("map_a", 1000, 100);
        p.record("map_a", 3000, 100);
        let op = p.op("map_a");
        assert_eq!(op.calls, 2);
        assert_eq!(op.tuples, 200);
        assert_eq!(op.ns_per_call(), 2000.0);
        assert_eq!(op.ns_per_tuple(), 20.0);
        assert_eq!(p.op("missing"), OpProfile::default());
        assert_eq!(p.op("missing").ns_per_call(), 0.0);
    }

    #[test]
    fn hottest_sorts_by_time() {
        let mut p = Profile::new();
        p.record("cheap", 10, 1);
        p.record("hot", 10_000, 1);
        p.record("warm", 500, 1);
        let h = p.hottest();
        assert_eq!(h[0].0, "hot");
        assert_eq!(h[2].0, "cheap");
        assert_eq!(p.costs()["hot"], 10_000.0);
    }

    #[test]
    fn selectivity_ewma_and_classes() {
        let mut p = Profile::new();
        p.record_selectivity("f", 0.5);
        assert_eq!(p.selectivity("f"), Some(0.5));
        assert_eq!(p.sel_class("f"), SelClass::Mid);
        // Long stream of near-zero selectivity drags the EWMA down.
        for _ in 0..50 {
            p.record_selectivity("f", 0.01);
        }
        assert!(p.selectivity("f").unwrap() < 0.05);
        assert_eq!(p.sel_class("f"), SelClass::Low);
        assert_eq!(p.sel_class("unseen"), SelClass::Mid);
    }

    #[test]
    fn shift_detection() {
        let mut p = Profile::new();
        for _ in 0..20 {
            p.record_selectivity("f", 0.01);
        }
        let snapshot = p.sel_classes();
        assert!(p.shifted_sites(&snapshot).is_empty());
        for _ in 0..50 {
            p.record_selectivity("f", 0.99);
        }
        assert_eq!(p.shifted_sites(&snapshot), vec!["f".to_string()]);
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(SelClass::of(0.0), SelClass::Low);
        assert_eq!(SelClass::of(0.049), SelClass::Low);
        assert_eq!(SelClass::of(0.5), SelClass::Mid);
        assert_eq!(SelClass::of(0.951), SelClass::High);
        assert_eq!(SelClass::of(1.0), SelClass::High);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Profile::new();
        a.record("x", 100, 10);
        let mut b = Profile::new();
        b.record("x", 300, 30);
        b.record("y", 50, 5);
        b.iterations = 7;
        a.merge(&b);
        assert_eq!(a.op("x").calls, 2);
        assert_eq!(a.op("x").tuples, 40);
        assert_eq!(a.op("y").calls, 1);
        assert_eq!(a.iterations, 7);
    }
}
