//! On-the-fly reordering of selective operators (§III-C).
//!
//! "Consider a chain of two HashJoin operators A and B. We could filter the
//! tuples using A first and later B (essentially executing the SemiJoin
//! first), when A eliminates more tuples from the flow. During runtime the
//! order of these operations could change dynamically based on the observed
//! selectivity."
//!
//! [`ReorderController`] tracks, per operator in a chain, the observed pass
//! rate and per-tuple cost, and yields the rank-optimal order: ascending
//! `cost / (1 - selectivity)` — the classical predicate-ordering rule
//! (cheapest most-selective first). Observations are discounted so a
//! selectivity shift flips the order within a bounded number of chunks.

/// Discount factor for pass-rate and cost estimates.
const ALPHA: f64 = 0.15;

#[derive(Debug, Clone, Default)]
struct OperatorStats {
    observations: u64,
    /// Discounted pass rate estimate.
    pass_rate: f64,
    /// Discounted per-tuple cost estimate (ns).
    cost: f64,
}

/// Tracks a chain of selective operators and proposes their order.
#[derive(Debug)]
pub struct ReorderController {
    ops: Vec<OperatorStats>,
    /// Re-evaluate the order every this many chunks.
    every: u64,
    chunks: u64,
    order: Vec<usize>,
    reorders: u64,
}

impl ReorderController {
    /// Controller over `n` operators, re-evaluating every `every` chunks.
    pub fn new(n: usize, every: u64) -> ReorderController {
        ReorderController {
            ops: vec![OperatorStats::default(); n],
            every: every.max(1),
            chunks: 0,
            order: (0..n).collect(),
            reorders: 0,
        }
    }

    /// Record one execution of operator `i`: it saw `input` tuples, passed
    /// `output`, and took `ns`.
    pub fn record(&mut self, i: usize, input: usize, output: usize, ns: u64) {
        let s = &mut self.ops[i];
        let rate = if input == 0 {
            s.pass_rate
        } else {
            output as f64 / input as f64
        };
        let per_tuple = ns as f64 / input.max(1) as f64;
        if s.observations == 0 {
            s.pass_rate = rate;
            s.cost = per_tuple;
        } else {
            s.pass_rate = ALPHA * rate + (1.0 - ALPHA) * s.pass_rate;
            s.cost = ALPHA * per_tuple + (1.0 - ALPHA) * s.cost;
        }
        s.observations += 1;
    }

    /// Called once per chunk; returns the order to use for the next chunk.
    pub fn next_order(&mut self) -> &[usize] {
        self.chunks += 1;
        if self.chunks.is_multiple_of(self.every) {
            let mut proposed = self.order.clone();
            proposed.sort_by(|&a, &b| {
                rank(&self.ops[a])
                    .partial_cmp(&rank(&self.ops[b]))
                    .expect("ranks are finite")
                    .then(a.cmp(&b))
            });
            if proposed != self.order {
                self.order = proposed;
                self.reorders += 1;
            }
        }
        &self.order
    }

    /// The current order without advancing the chunk counter.
    pub fn current_order(&self) -> &[usize] {
        &self.order
    }

    /// How many times the order changed.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Observed pass rate of operator `i`.
    pub fn pass_rate(&self, i: usize) -> f64 {
        self.ops[i].pass_rate
    }
}

/// The predicate-ordering rank: cost per eliminated tuple.
/// Lower is better: cheap, highly selective operators run first.
fn rank(s: &OperatorStats) -> f64 {
    let eliminate = (1.0 - s.pass_rate).max(1e-9);
    s.cost.max(1e-9) / eliminate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_cheap_operator_goes_first() {
        let mut c = ReorderController::new(2, 1);
        // Op 0: passes 90%, op 1: passes 10%; equal costs.
        for _ in 0..20 {
            c.record(0, 1000, 900, 10_000);
            c.record(1, 1000, 100, 10_000);
            c.next_order();
        }
        assert_eq!(c.current_order(), &[1, 0]);
        assert!((c.pass_rate(1) - 0.1).abs() < 0.05);
    }

    #[test]
    fn expensive_selective_may_lose_to_cheap_less_selective() {
        let mut c = ReorderController::new(2, 1);
        // Op 0: 50% pass at 1k ns/tuple → rank 2000.
        // Op 1: 10% pass at 10k ns/tuple → rank ~11111.
        for _ in 0..20 {
            c.record(0, 1000, 500, 1_000_000);
            c.record(1, 1000, 100, 10_000_000);
            c.next_order();
        }
        assert_eq!(c.current_order(), &[0, 1]);
    }

    #[test]
    fn order_flips_after_selectivity_shift() {
        let mut c = ReorderController::new(2, 4);
        // Phase 1: op 0 selective.
        for _ in 0..40 {
            c.record(0, 1000, 100, 10_000);
            c.record(1, 1000, 900, 10_000);
            c.next_order();
        }
        assert_eq!(c.current_order(), &[0, 1]);
        let reorders_before = c.reorders();
        // Phase 2: selectivities swap.
        for _ in 0..60 {
            c.record(0, 1000, 900, 10_000);
            c.record(1, 1000, 100, 10_000);
            c.next_order();
        }
        assert_eq!(c.current_order(), &[1, 0]);
        assert!(c.reorders() > reorders_before);
    }

    #[test]
    fn reevaluation_cadence_respected() {
        let mut c = ReorderController::new(2, 10);
        // Strong evidence immediately, but order may only change at chunk 10.
        for i in 0..9 {
            c.record(0, 1000, 990, 10_000);
            c.record(1, 1000, 10, 10_000);
            c.next_order();
            assert_eq!(c.current_order(), &[0, 1], "chunk {i}");
        }
        c.next_order(); // 10th chunk
        assert_eq!(c.current_order(), &[1, 0]);
    }

    #[test]
    fn zero_input_chunks_are_harmless() {
        let mut c = ReorderController::new(2, 1);
        c.record(0, 0, 0, 100);
        c.record(1, 1000, 10, 100);
        c.next_order();
        // No NaNs; order well-defined.
        assert_eq!(c.current_order().len(), 2);
    }

    #[test]
    fn single_operator_chain() {
        let mut c = ReorderController::new(1, 1);
        c.record(0, 10, 5, 100);
        assert_eq!(c.next_order(), &[0]);
        assert_eq!(c.reorders(), 0);
    }
}
