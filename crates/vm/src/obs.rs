//! JIT observability: always-on engine-wide counters plus an optional
//! event hook.
//!
//! The engine ([`crate::engine`]) reports what one *run* did through
//! [`crate::RunReport`]; this module aggregates the same decisions
//! **process-wide** so a serving layer can expose them as metrics, and
//! lets exactly one consumer install a global [`JitEvent`] hook for
//! per-query attribution (the tracing subsystem in `adaptvm_parallel`
//! installs one that routes events into the current query's trace).
//!
//! Counter updates are single relaxed `fetch_add`s; the hook check is one
//! `OnceLock::get` (an acquire load). Both are cheap enough to stay on
//! unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One JIT lifecycle event, as it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitEvent {
    /// A fragment was injected straight from a shared code cache.
    CacheHit,
    /// A fragment was compiled synchronously (modeled cost attached).
    Compile {
        /// Modeled compile cost, nanoseconds.
        cost_ns: u64,
    },
    /// A fragment was submitted to a background compile server.
    AsyncSubmit,
    /// A background compile landed and was injected (modeled cost
    /// attached; emitted by the run that submitted it).
    Publish {
        /// Modeled compile cost, nanoseconds.
        cost_ns: u64,
    },
    /// A fragment failed to build/compile/run and execution fell back to
    /// the interpreter (the adaptive strategy's deopt path).
    Deopt,
    /// An injected trace carries native machine code (the x86-64 tier);
    /// chunk dispatches will prefer it.
    NativeInstall,
    /// A native execution hit a guard (budget, output capacity, or input
    /// type) and the chunk was re-run on the interpreted-trace tier.
    NativeDeopt,
}

/// A snapshot of the process-wide JIT counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitCounters {
    /// Fragments compiled (synchronously or via a background publish).
    pub compiles: u64,
    /// Fragments injected from a shared cache without compiling.
    pub cache_hits: u64,
    /// Fragments submitted to a background compile server.
    pub async_submits: u64,
    /// Build/compile/run failures that fell back to interpretation.
    pub deopts: u64,
    /// Traces injected with a native machine-code body.
    pub native_installs: u64,
    /// Native executions that guard-deopted back to the interpreted tier.
    pub native_deopts: u64,
}

static COMPILES: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ASYNC_SUBMITS: AtomicU64 = AtomicU64::new(0);
static DEOPTS: AtomicU64 = AtomicU64::new(0);
static NATIVE_INSTALLS: AtomicU64 = AtomicU64::new(0);
static NATIVE_DEOPTS: AtomicU64 = AtomicU64::new(0);

type JitHook = Box<dyn Fn(JitEvent) + Send + Sync>;

static HOOK: OnceLock<JitHook> = OnceLock::new();

/// Install the process-wide JIT event hook. The first installation wins;
/// returns `false` (and drops `hook`) if one is already installed.
pub fn install_jit_hook(hook: JitHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// The process-wide JIT counter totals (monotonic since process start).
pub fn jit_counters() -> JitCounters {
    JitCounters {
        compiles: COMPILES.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        async_submits: ASYNC_SUBMITS.load(Ordering::Relaxed),
        deopts: DEOPTS.load(Ordering::Relaxed),
        native_installs: NATIVE_INSTALLS.load(Ordering::Relaxed),
        native_deopts: NATIVE_DEOPTS.load(Ordering::Relaxed),
    }
}

/// Count the event and forward it to the installed hook, if any.
pub(crate) fn jit_event(ev: JitEvent) {
    match ev {
        JitEvent::CacheHit => CACHE_HITS.fetch_add(1, Ordering::Relaxed),
        JitEvent::Compile { .. } | JitEvent::Publish { .. } => {
            COMPILES.fetch_add(1, Ordering::Relaxed)
        }
        JitEvent::AsyncSubmit => ASYNC_SUBMITS.fetch_add(1, Ordering::Relaxed),
        JitEvent::Deopt => DEOPTS.fetch_add(1, Ordering::Relaxed),
        JitEvent::NativeInstall => NATIVE_INSTALLS.fetch_add(1, Ordering::Relaxed),
        JitEvent::NativeDeopt => NATIVE_DEOPTS.fetch_add(1, Ordering::Relaxed),
    };
    if let Some(hook) = HOOK.get() {
        hook(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_events() {
        let before = jit_counters();
        jit_event(JitEvent::CacheHit);
        jit_event(JitEvent::Compile { cost_ns: 10 });
        jit_event(JitEvent::Publish { cost_ns: 20 });
        jit_event(JitEvent::AsyncSubmit);
        jit_event(JitEvent::Deopt);
        jit_event(JitEvent::NativeInstall);
        jit_event(JitEvent::NativeDeopt);
        let after = jit_counters();
        assert_eq!(after.cache_hits - before.cache_hits, 1);
        assert_eq!(after.compiles - before.compiles, 2);
        assert_eq!(after.async_submits - before.async_submits, 1);
        assert_eq!(after.deopts - before.deopts, 1);
        assert_eq!(after.native_installs - before.native_installs, 1);
        assert_eq!(after.native_deopts - before.native_deopts, 1);
    }
}
