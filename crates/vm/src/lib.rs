//! The adaptive VM (paper §III).
//!
//! This crate assembles the whole system of the paper:
//!
//! * [`mod@env`] — named buffers and the variable environment programs run in,
//! * [`interp`] — the vectorized interpreter (§III-A): normalized programs,
//!   chunk-at-a-time execution, pre-compiled kernel dispatch,
//! * [`profile`] — per-operation timing/call/tuple/selectivity profiling
//!   and workload-shift detection,
//! * [`adaptive`] — micro-adaptivity (§III-C): bandit selection among
//!   kernel flavors (filter strategies, full-vs-selective maps),
//! * [`engine`] — the Fig. 1 state machine: Interpret → Optimize →
//!   GenerateCode → InjectFunctions → Interpret, multi-trace dispatch and
//!   execution strategies (vectorized / tuple-at-a-time compiled /
//!   column-at-a-time / fully adaptive),
//! * [`reorder`] — on-the-fly reordering of selective operators (§III-C),
//! * [`placement`] — adaptive device placement over the simulated
//!   heterogeneous substrate (§IV target 3).

pub mod adaptive;
pub mod engine;
pub mod env;
pub mod error;
pub mod interp;
pub mod obs;
pub mod placement;
pub mod profile;
pub mod reorder;

pub use adaptive::{BanditPolicy, FixedPolicy, FlavorPolicy};
pub use adaptvm_jit::exec::native_available;
pub use engine::{RunReport, Strategy, Vm, VmConfig, VmState};
pub use env::{Buffers, Env};
pub use error::VmError;
pub use obs::{install_jit_hook, jit_counters, JitCounters, JitEvent};
pub use profile::Profile;
