//! The Fig. 1 state machine: the adaptive VM engine.
//!
//! > "Program execution starts with interpretation, meanwhile the VM
//! > collects profiling information (time spent in each operation, number
//! > of calls) to identify hot paths and potential targets for further
//! > optimization. At some point, the interpreter decides to optimize and
//! > will eventually generate optimized code which will get injected into
//! > the interpreter. Afterwards program interpretation continues with a
//! > partially optimized program."
//!
//! The engine executes the chunk loop of a program as a **flat iteration
//! plan**: a document-ordered list of steps (skeleton nodes, scalar
//! statements). Injection replaces a contiguous set of node steps with one
//! trace step — the plan *is* the "partially optimized program", and
//! rebuilding it is what "inject functions" means concretely.
//!
//! Three strategies share this machinery (the §IV target-1 goal of
//! mimicking MonetDB/X100 and HyPer in one framework):
//! * [`Strategy::Interpret`] — pure vectorized interpretation,
//! * [`Strategy::CompiledPipeline`] — compile the whole loop body up
//!   front (HyPer-style; at chunk size 1, literally tuple-at-a-time),
//! * [`Strategy::Adaptive`] — Fig. 1: profile, partition (§III-B),
//!   compile hot regions (optionally in the background), inject, and fall
//!   back to interpretation whenever a fragment is uncompilable.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use adaptvm_dsl::ast::{OpClass, Program, Stmt};
use adaptvm_dsl::depgraph::{scalar_uses, DepGraph, NodeId};
use adaptvm_dsl::normalize::normalize_program;
use adaptvm_dsl::partition::{partition, PartitionConfig};
use adaptvm_dsl::typecheck::{infer_expr, Type, TypeEnv};
use adaptvm_dsl::value::{Value, Vector};
use adaptvm_hetsim::exec::run_trace_on;
use adaptvm_jit::builder::{build_fragment, Fragment};
use adaptvm_jit::cache::{CodeCache, TraceKey, GENERIC_SITUATION};
use adaptvm_jit::compiler::{compile, CompileServer, CompiledTrace, CostModel, TierRun, TraceTier};
use adaptvm_jit::JitError;
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::ScalarType;
use adaptvm_storage::DEFAULT_CHUNK;

use crate::adaptive::{FixedPolicy, FlavorPolicy};
use crate::env::{Buffers, Env};
use crate::error::VmError;
use crate::interp::{Flow, Interpreter, MAX_ITERATIONS};
use crate::placement::PlacementPolicy;
use crate::profile::Profile;

/// The Fig. 1 states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Vectorized interpretation (the start state).
    Interpret,
    /// Profile analysis + partitioning decision.
    Optimize,
    /// Fragment compilation (possibly backgrounded).
    GenerateCode,
    /// Finished traces spliced into the iteration plan.
    InjectFunctions,
}

/// One logged state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTransition {
    /// Loop iteration at which the transition happened.
    pub iteration: u64,
    /// The state entered.
    pub state: VmState,
}

/// Execution strategies (§IV target 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Pure vectorized interpretation (MonetDB/X100-style).
    Interpret,
    /// Whole-pipeline compilation up front (HyPer-style).
    CompiledPipeline,
    /// The adaptive Fig. 1 state machine.
    #[default]
    Adaptive,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Default chunk length for `read`.
    pub chunk_size: usize,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Iterations of interpretation before the Optimize transition.
    pub hot_threshold: u64,
    /// Compile-cost model. `VmConfig::default()` uses the *untimed* model
    /// (costs reported, no wall-clock padding) so tests stay fast;
    /// benchmarks opt into `CostModel::default()`.
    pub cost_model: CostModel,
    /// §III-B partitioning heuristics.
    pub partition: PartitionConfig,
    /// Compile on a background worker (Fig. 1 semantics) or synchronously.
    pub async_compile: bool,
    /// Devices for placement; empty = host only, >1 = adaptive placement.
    pub devices: Vec<adaptvm_hetsim::device::DeviceSpec>,
    /// Shared code cache, keyed by fragment fingerprint. When set, compile
    /// decisions consult the cache first and publish finished traces into
    /// it — this is how morsel-parallel workers share one JIT: the first
    /// worker to reach a fragment compiles it, everyone else injects the
    /// cached trace for free (§III-B's multi-trace store, shared).
    pub code_cache: Option<Arc<CodeCache>>,
    /// Shared background compile server. When set (it must be a
    /// *publishing* server, [`CompileServer::with_cache`], over the same
    /// cache as `code_cache`), `async_compile` runs submit hot fragments
    /// here instead of spawning a private server per run: the submit is
    /// deduplicated by fragment fingerprint across every run sharing the
    /// server, the finished trace lands in the shared cache, and each run
    /// picks it up from there — the run that submitted counts the compile,
    /// later runs count a `trace_cache_hits`. This is how a long-lived
    /// scheduler overlaps one background compiler with many concurrent
    /// morsel runs. A non-publishing server is ignored (the run falls back
    /// to a private server), because unclaimed finishes would be lost.
    pub compile_server: Option<Arc<CompileServer>>,
    /// Dispatch injected traces to their native machine-code bodies when
    /// the host supports it (x86-64 Linux, not disabled via
    /// `ADAPTVM_NATIVE=0`). `false` pins every trace to the interpreted
    /// tier; results are bit-identical either way — a native guard deopt
    /// transparently re-runs the chunk on the interpreter.
    pub native: bool,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            chunk_size: DEFAULT_CHUNK,
            strategy: Strategy::Adaptive,
            hot_threshold: 8,
            cost_model: CostModel::untimed(),
            partition: PartitionConfig::default(),
            async_compile: false,
            devices: Vec::new(),
            code_cache: None,
            compile_server: None,
            native: adaptvm_jit::exec::native_available(),
        }
    }
}

/// What one run did (the experiment harness prints these).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Loop iterations executed.
    pub iterations: u64,
    /// Fig. 1 transitions, in order.
    pub transitions: Vec<StateTransition>,
    /// Traces injected into the plan.
    pub injected_traces: usize,
    /// Total modeled compile cost (ns).
    pub compile_ns_total: u64,
    /// Trace-step executions.
    pub trace_executions: u64,
    /// Node steps executed by the interpreter.
    pub interpreted_nodes: u64,
    /// Fragments that failed to build/run and fell back to interpretation.
    pub fallbacks: u64,
    /// Traces injected straight from the shared code cache (no compile).
    pub trace_cache_hits: u64,
    /// Trace-step executions served by native machine code (a subset of
    /// `trace_executions`).
    pub native_trace_executions: u64,
    /// Native executions that hit a guard and re-ran on the interpreted
    /// tier (counted under `trace_executions`, not `fallbacks` — the
    /// trace stays injected and the answer is unchanged).
    pub native_deopts: u64,
    /// The run profile.
    pub profile: Profile,
    /// Virtual nanoseconds charged per device (placement runs).
    pub device_ns: Vec<(String, u64)>,
    /// Placement decisions per device.
    pub device_decisions: Vec<(String, u64)>,
    /// Wall-clock nanoseconds of the whole run.
    pub wall_ns: u64,
}

impl RunReport {
    /// The state sequence as short names (test/debug helper).
    pub fn state_names(&self) -> Vec<&'static str> {
        self.transitions
            .iter()
            .map(|t| match t.state {
                VmState::Interpret => "interpret",
                VmState::Optimize => "optimize",
                VmState::GenerateCode => "generate_code",
                VmState::InjectFunctions => "inject_functions",
            })
            .collect()
    }
}

/// The adaptive VM.
pub struct Vm {
    /// Configuration.
    pub config: VmConfig,
}

/// One step of the flat iteration plan.
#[derive(Debug, Clone)]
enum Step {
    /// Interpret one dataflow node (a body-less `let` or a sink statement).
    Node { stmt: Stmt },
    /// Interpret a scalar statement (assignments, `if`/`break`).
    Scalar(Stmt),
    /// Execute an injected trace.
    Trace(usize),
}

/// An injected compiled region. (No statement copies are kept: if the
/// trace fails recoverably, the injection is simply removed and the plan
/// rebuilt — the covered nodes reappear as ordinary steps.)
struct Injection {
    anchor: NodeId,
    covered: HashSet<NodeId>,
    trace: Arc<CompiledTrace>,
}

// Unspecialized engine traces use [`GENERIC_SITUATION`] (re-exported from
// `adaptvm_jit::cache` so publishing compile servers key identically).
// Specialized situations — compression scheme, selectivity class — keep
// their own entries beside it; see [`adaptvm_jit::cache`].

impl Vm {
    /// A VM with the given configuration.
    pub fn new(config: VmConfig) -> Vm {
        Vm { config }
    }

    /// A VM with default (adaptive) configuration.
    pub fn adaptive() -> Vm {
        Vm::new(VmConfig::default())
    }

    /// Compile a fragment, going through the shared code cache when one is
    /// configured. Returns the trace; accounts compile cost vs. cache hit
    /// in the report.
    fn compile_cached(&self, frag: Fragment, report: &mut RunReport) -> Arc<CompiledTrace> {
        match &self.config.code_cache {
            Some(cache) => {
                let key = TraceKey {
                    fingerprint: frag.ir.fingerprint(),
                    situation: GENERIC_SITUATION.to_string(),
                };
                let model = self.config.cost_model;
                let (trace, hit) = cache.get_or_compile(key, || Arc::new(compile(frag, &model)));
                if hit {
                    report.trace_cache_hits += 1;
                    crate::obs::jit_event(crate::obs::JitEvent::CacheHit);
                } else {
                    report.compile_ns_total += trace.cost_ns;
                    crate::obs::jit_event(crate::obs::JitEvent::Compile {
                        cost_ns: trace.cost_ns,
                    });
                }
                trace
            }
            None => {
                let trace = Arc::new(compile(frag, &self.config.cost_model));
                report.compile_ns_total += trace.cost_ns;
                crate::obs::jit_event(crate::obs::JitEvent::Compile {
                    cost_ns: trace.cost_ns,
                });
                trace
            }
        }
    }

    /// Run a program with the default fixed flavor policy.
    pub fn run(
        &self,
        program: &Program,
        buffers: Buffers,
    ) -> Result<(Buffers, RunReport), VmError> {
        let mut policy = FixedPolicy::default();
        self.run_with_policy(program, buffers, &mut policy)
    }

    /// Run a program with a caller-supplied flavor policy (micro-adaptive
    /// runs pass a [`crate::adaptive::BanditPolicy`]).
    pub fn run_with_policy(
        &self,
        program: &Program,
        buffers: Buffers,
        policy: &mut dyn FlavorPolicy,
    ) -> Result<(Buffers, RunReport), VmError> {
        let wall = Instant::now();
        let program = normalize_program(program);
        let hints = binding_types(&program, &buffers);
        let mut report = RunReport::default();
        let mut profile = Profile::new();
        let mut env = Env::new(buffers);
        report.transitions.push(StateTransition {
            iteration: 0,
            state: VmState::Interpret,
        });

        // Split around the first top-level loop.
        let loop_pos = program
            .stmts
            .iter()
            .position(|s| matches!(s, Stmt::Loop(_)));
        let Some(loop_pos) = loop_pos else {
            // No loop: plain interpretation.
            let mut interp = Interpreter::new(self.config.chunk_size, &mut profile, policy);
            interp.exec_stmts(&program.stmts, &mut env)?;
            report.profile = profile;
            report.wall_ns = wall.elapsed().as_nanos() as u64;
            return Ok((env.buffers, report));
        };

        // Prelude.
        {
            let mut interp = Interpreter::new(self.config.chunk_size, &mut profile, policy);
            interp.exec_stmts(&program.stmts[..loop_pos], &mut env)?;
        }

        let body = match &program.stmts[loop_pos] {
            Stmt::Loop(body) => body,
            _ => unreachable!("position() found a loop"),
        };

        // Flatten the body; complex bodies (nested loops, skeletons under
        // `if`) fall back to whole-program interpretation.
        let flat = match flatten_body(body) {
            Some(f) => f,
            None => {
                let mut interp = Interpreter::new(self.config.chunk_size, &mut profile, policy);
                interp.exec_stmts(&program.stmts[loop_pos..], &mut env)?;
                report.profile = profile;
                report.wall_ns = wall.elapsed().as_nanos() as u64;
                return Ok((env.buffers, report));
            }
        };

        let graph = DepGraph::from_stmts(body);
        let uses = scalar_uses(body);
        let mut injections: Vec<Injection> = Vec::new();
        let mut plan = build_plan(&flat, &injections);
        let mut placement = if self.config.devices.is_empty() {
            None
        } else {
            Some(PlacementPolicy::new(self.config.devices.clone()))
        };
        let mut device_clocks: Vec<u64> = vec![0; self.config.devices.len()];
        let mut server: Option<CompileServer> = None;
        let mut pending: HashMap<u64, (NodeId, Vec<NodeId>)> = HashMap::new();
        // The shared background path: fragments submitted to a *publishing*
        // compile server, picked up from its cache when they land. Each
        // entry is (publish key, covered nodes, whether this run enqueued
        // the compile) — the key is built once, from the server's own
        // situation string, so server and engine can never disagree and
        // the per-iteration poll allocates nothing.
        let shared_server: Option<Arc<CompileServer>> = self
            .config
            .compile_server
            .as_ref()
            .filter(|s| s.cache().is_some())
            .cloned();
        let shared_situation: Option<String> = shared_server
            .as_ref()
            .and_then(|s| s.situation())
            .map(str::to_string);
        let mut shared_pending: Vec<(TraceKey, Vec<NodeId>, bool)> = Vec::new();
        let mut optimized = false;

        // Strategy::CompiledPipeline compiles everything before iterating.
        if self.config.strategy == Strategy::CompiledPipeline {
            let region = adaptvm_dsl::partition::Region {
                nodes: (0..graph.len()).collect(),
                seed: 0,
                cost: 0.0,
            };
            match build_fragment(&graph, &region, &uses, &hints) {
                Ok(frag) => {
                    let trace = self.compile_cached(frag, &mut report);
                    inject(
                        &mut injections,
                        &graph,
                        &flat,
                        region.nodes.clone(),
                        trace,
                        self.config.native,
                    );
                    report.injected_traces += 1;
                    plan = build_plan(&flat, &injections);
                    report.transitions.push(StateTransition {
                        iteration: 0,
                        state: VmState::InjectFunctions,
                    });
                }
                Err(_) => {
                    report.fallbacks += 1;
                    crate::obs::jit_event(crate::obs::JitEvent::Deopt);
                }
            }
        }

        // The chunk loop.
        let mut iterations: u64 = 0;
        'outer: loop {
            iterations += 1;
            if iterations > MAX_ITERATIONS {
                return Err(VmError::IterationLimit(MAX_ITERATIONS));
            }
            profile.iterations += 1;

            // Adaptive: hot-path detection (the Interpret → Optimize edge).
            if self.config.strategy == Strategy::Adaptive
                && !optimized
                && iterations == self.config.hot_threshold.max(1)
            {
                optimized = true;
                report.transitions.push(StateTransition {
                    iteration: iterations,
                    state: VmState::Optimize,
                });
                let mut costed = graph.clone();
                costed.apply_costs(&profile.costs());
                let parts = partition(&costed, &self.config.partition);
                report.transitions.push(StateTransition {
                    iteration: iterations,
                    state: VmState::GenerateCode,
                });
                let injected_before = report.injected_traces;
                for region in &parts.regions {
                    match build_fragment(&graph, region, &uses, &hints) {
                        Ok(frag) => {
                            if self.config.async_compile {
                                // A cached trace needs no compile round-trip
                                // even on the background path: inject now.
                                // Key lookups by the server's own publish
                                // situation when one is shared, else the
                                // generic situation.
                                let key = TraceKey {
                                    fingerprint: frag.ir.fingerprint(),
                                    situation: shared_situation
                                        .clone()
                                        .unwrap_or_else(|| GENERIC_SITUATION.to_string()),
                                };
                                let cached =
                                    self.config.code_cache.as_ref().and_then(|c| c.get(&key));
                                if let Some(trace) = cached {
                                    report.trace_cache_hits += 1;
                                    crate::obs::jit_event(crate::obs::JitEvent::CacheHit);
                                    inject(
                                        &mut injections,
                                        &graph,
                                        &flat,
                                        region.nodes.clone(),
                                        trace,
                                        self.config.native,
                                    );
                                    report.injected_traces += 1;
                                    continue;
                                }
                                if let Some(shared) = &shared_server {
                                    // Shared publishing server: dedup by
                                    // fingerprint, pick the trace up from
                                    // the publish cache once it lands.
                                    match shared.submit_unique(frag) {
                                        Ok(ours) => {
                                            crate::obs::jit_event(
                                                crate::obs::JitEvent::AsyncSubmit,
                                            );
                                            shared_pending.push((
                                                key,
                                                region.nodes.clone(),
                                                ours.is_some(),
                                            ))
                                        }
                                        Err(_) => {
                                            report.fallbacks += 1;
                                            crate::obs::jit_event(crate::obs::JitEvent::Deopt);
                                        }
                                    }
                                    continue;
                                }
                                let srv = server.get_or_insert_with(|| {
                                    CompileServer::start(self.config.cost_model)
                                });
                                if let Ok(ticket) = srv.submit(frag) {
                                    crate::obs::jit_event(crate::obs::JitEvent::AsyncSubmit);
                                    pending.insert(ticket, (region.seed, region.nodes.clone()));
                                }
                            } else {
                                let trace = self.compile_cached(frag, &mut report);
                                inject(
                                    &mut injections,
                                    &graph,
                                    &flat,
                                    region.nodes.clone(),
                                    trace,
                                    self.config.native,
                                );
                                report.injected_traces += 1;
                            }
                        }
                        Err(_) => {
                            report.fallbacks += 1;
                            crate::obs::jit_event(crate::obs::JitEvent::Deopt);
                        }
                    }
                }
                if !self.config.async_compile || report.injected_traces > injected_before {
                    plan = build_plan(&flat, &injections);
                    report.transitions.push(StateTransition {
                        iteration: iterations,
                        state: VmState::InjectFunctions,
                    });
                }
            }

            // Pick up shared-server compiles from the publish cache: the
            // submitting run counts the compile cost, runs that found the
            // fragment already in flight count a cache hit.
            if !shared_pending.is_empty() {
                let cache = shared_server
                    .as_ref()
                    .and_then(|s| s.cache())
                    .expect("shared_pending implies a publishing server");
                let mut landed_any = false;
                let mut i = 0;
                while i < shared_pending.len() {
                    match cache.peek(&shared_pending[i].0) {
                        Some(trace) => {
                            let (_, nodes, ours) = shared_pending.remove(i);
                            if ours {
                                report.compile_ns_total += trace.cost_ns;
                                crate::obs::jit_event(crate::obs::JitEvent::Publish {
                                    cost_ns: trace.cost_ns,
                                });
                            } else {
                                report.trace_cache_hits += 1;
                                crate::obs::jit_event(crate::obs::JitEvent::CacheHit);
                            }
                            inject(
                                &mut injections,
                                &graph,
                                &flat,
                                nodes,
                                trace,
                                self.config.native,
                            );
                            report.injected_traces += 1;
                            landed_any = true;
                        }
                        None => i += 1,
                    }
                }
                if landed_any {
                    plan = build_plan(&flat, &injections);
                    report.transitions.push(StateTransition {
                        iteration: iterations,
                        state: VmState::InjectFunctions,
                    });
                }
            }

            // Poll background compiles; inject anything finished.
            if let Some(srv) = &server {
                let finished = srv.poll();
                if !finished.is_empty() {
                    for f in finished {
                        if let Some((_, nodes)) = pending.remove(&f.ticket) {
                            report.compile_ns_total += f.trace.cost_ns;
                            crate::obs::jit_event(crate::obs::JitEvent::Publish {
                                cost_ns: f.trace.cost_ns,
                            });
                            if let Some(cache) = &self.config.code_cache {
                                cache.insert(
                                    TraceKey {
                                        fingerprint: f.trace.fingerprint,
                                        situation: GENERIC_SITUATION.to_string(),
                                    },
                                    f.trace.clone(),
                                );
                            }
                            inject(
                                &mut injections,
                                &graph,
                                &flat,
                                nodes,
                                f.trace,
                                self.config.native,
                            );
                            report.injected_traces += 1;
                        }
                    }
                    plan = build_plan(&flat, &injections);
                    report.transitions.push(StateTransition {
                        iteration: iterations,
                        state: VmState::InjectFunctions,
                    });
                }
            }

            // Execute one iteration of the plan.
            let mut interp = Interpreter::new(self.config.chunk_size, &mut profile, policy);
            let mut idx = 0;
            while idx < plan.len() {
                match &plan[idx] {
                    Step::Node { stmt, .. } => {
                        report.interpreted_nodes += 1;
                        if interp.exec_stmt(stmt, &mut env)? == Flow::Broke {
                            break 'outer;
                        }
                    }
                    Step::Scalar(stmt) => {
                        if interp.exec_stmt(stmt, &mut env)? == Flow::Broke {
                            break 'outer;
                        }
                    }
                    Step::Trace(k) => {
                        let inj = &injections[*k];
                        match exec_trace(
                            inj,
                            &mut interp,
                            &mut env,
                            self.config.chunk_size,
                            placement.as_mut(),
                            &mut device_clocks,
                            self.config.native,
                        ) {
                            Ok(tier) => {
                                report.trace_executions += 1;
                                if tier.tier == TraceTier::Native {
                                    report.native_trace_executions += 1;
                                }
                                if tier.native_deopt {
                                    report.native_deopts += 1;
                                    crate::obs::jit_event(crate::obs::JitEvent::NativeDeopt);
                                }
                            }
                            Err(TraceFailure::Recoverable(_)) => {
                                // Drop the injection for good and resume at
                                // the same plan position. The rebuilt plan
                                // agrees with the old one before `idx` (the
                                // anchor is the region's first covered node,
                                // so nothing covered precedes it), and at
                                // `idx` the trace step expands back into the
                                // anchor's node step — execution continues
                                // in document order, interleaved scalar
                                // statements (e.g. aliases between covered
                                // nodes) included. Manually interpreting the
                                // covered nodes back-to-back instead would
                                // skip those scalars and feed stale values
                                // to the nodes after them.
                                report.fallbacks += 1;
                                crate::obs::jit_event(crate::obs::JitEvent::Deopt);
                                injections.remove(*k);
                                plan = build_plan(&flat, &injections);
                                continue;
                            }
                            Err(TraceFailure::Fatal(e)) => return Err(e),
                        }
                    }
                }
                idx += 1;
            }
        }

        // Trailing statements after the loop.
        {
            let mut interp = Interpreter::new(self.config.chunk_size, &mut profile, policy);
            interp.exec_stmts(&program.stmts[loop_pos + 1..], &mut env)?;
        }

        report.iterations = iterations;
        report.profile = profile;
        if let Some(p) = &placement {
            report.device_decisions = p
                .devices()
                .iter()
                .zip(p.decisions())
                .map(|(d, &c)| (d.name.clone(), c))
                .collect();
            report.device_ns = p
                .devices()
                .iter()
                .zip(&device_clocks)
                .map(|(d, &ns)| (d.name.clone(), ns))
                .collect();
        }
        report.wall_ns = wall.elapsed().as_nanos() as u64;
        Ok((env.buffers, report))
    }
}

enum TraceFailure {
    /// Fall back to interpretation of the covered region. The error is
    /// retained for debugging (visible via `{:?}` in engine logs).
    #[allow(dead_code)]
    Recoverable(JitError),
    /// A genuine runtime error (bad buffer, storage failure).
    Fatal(VmError),
}

/// Execute one injected trace step. All fallible work happens before any
/// side effect, so a failure is recoverable by interpreting the region.
fn exec_trace(
    inj: &Injection,
    interp: &mut Interpreter<'_>,
    env: &mut Env,
    chunk_size: usize,
    placement: Option<&mut PlacementPolicy>,
    device_clocks: &mut [u64],
    allow_native: bool,
) -> Result<TierRun, TraceFailure> {
    let trace = &inj.trace;
    let t0 = Instant::now();

    // 1. Perform the region's buffer reads.
    let mut local: HashMap<String, Array> = HashMap::new();
    for spec in &trace.reads {
        let pos = interp
            .eval_scalar_index(&spec.pos, env, "read position")
            .map_err(TraceFailure::Fatal)?;
        let len = match &spec.len {
            Some(l) => interp
                .eval_scalar_index(l, env, "read length")
                .map_err(TraceFailure::Fatal)?,
            None => chunk_size,
        };
        let chunk = env
            .buffers
            .read(&spec.buffer, pos, len)
            .map_err(TraceFailure::Fatal)?;
        local.insert(spec.var.clone(), chunk);
    }

    // 2. Gather trace inputs (condensing any pending selections).
    let mut owned: Vec<(usize, Array)> = Vec::new();
    for (i, name) in trace.ir.inputs.iter().enumerate() {
        if local.contains_key(name) {
            continue;
        }
        let value = env.get(name).map_err(TraceFailure::Fatal)?;
        match value {
            Value::Vector(v) => {
                let dense = v.condense().map_err(|e| TraceFailure::Fatal(e.into()))?;
                owned.push((i, dense.data));
            }
            Value::Scalar(_) => {
                return Err(TraceFailure::Recoverable(JitError::Unsupported(format!(
                    "trace input {name} is a scalar"
                ))))
            }
        }
    }
    for (i, a) in owned {
        local.insert(trace.ir.inputs[i].clone(), a);
    }
    let inputs: Vec<&Array> = trace
        .ir
        .inputs
        .iter()
        .map(|n| local.get(n).expect("collected above"))
        .collect();

    // 3. Run (with placement when devices are registered). Placement runs
    // stay on the interpreted tier — the device cost model meters that
    // path; only the plain host dispatch goes native.
    let lanes = inputs.first().map_or(0, |a| a.len());
    let mut tier = TierRun {
        tier: TraceTier::Interpreted,
        native_deopt: false,
    };
    let result = match placement {
        Some(policy) => {
            let bytes_in: usize = inputs.iter().map(|a| a.byte_size()).sum();
            let d = policy.choose(lanes, trace.ir.op_count(), bytes_in, bytes_in);
            let run = run_trace_on(&policy.devices()[d].clone(), trace, &inputs, None)
                .map_err(TraceFailure::Recoverable)?;
            device_clocks[d] += run.cost.total_ns();
            policy.feedback(
                d,
                lanes,
                trace.ir.op_count(),
                bytes_in,
                bytes_in,
                run.cost.total_ns(),
            );
            run.result
        }
        None => {
            let (r, t) = trace
                .run_tiered(&inputs, None, allow_native)
                .map_err(TraceFailure::Recoverable)?;
            tier = t;
            r
        }
    };

    // 4. Bind outputs (arrays first — selections may reference them).
    for (name, data) in result.arrays {
        env.set(&name, Value::dense(data));
    }
    for (name, flow, sel) in result.sels {
        let data = match local.get(&flow) {
            Some(a) => a.clone(),
            None => match env.get(&flow).map_err(TraceFailure::Fatal)? {
                Value::Vector(v) => v.data.clone(),
                Value::Scalar(_) => {
                    return Err(TraceFailure::Fatal(VmError::Shape(format!(
                        "selection flow {flow} is a scalar"
                    ))))
                }
            },
        };
        interp.profile.record_selectivity(
            &format!("trace-sel@{name}"),
            if data.is_empty() {
                0.0
            } else {
                sel.len() as f64 / data.len() as f64
            },
        );
        env.set(&name, Value::Vector(Vector::selected(data, sel)));
    }
    for (name, scalar) in result.scalars {
        env.set(&name, Value::Scalar(scalar));
    }
    // Bind read results too (the loop's counter updates use len(input)).
    for spec in &trace.reads {
        let data = local.get(&spec.var).expect("read performed").clone();
        env.set(&spec.var, Value::dense(data));
    }

    // 5. Perform the region's buffer writes.
    for spec in &trace.writes {
        let pos = interp
            .eval_scalar_index(&spec.pos, env, "write position")
            .map_err(TraceFailure::Fatal)?;
        let value = env.get(&spec.value_var).map_err(TraceFailure::Fatal)?;
        let data = match value {
            Value::Vector(v) => {
                v.condense()
                    .map_err(|e| TraceFailure::Fatal(e.into()))?
                    .data
            }
            Value::Scalar(s) => Array::splat(s, 1),
        };
        env.buffers
            .write(&spec.buffer, pos, &data)
            .map_err(TraceFailure::Fatal)?;
    }

    interp.profile.record(
        &format!("trace@{}", inj.anchor),
        t0.elapsed().as_nanos() as u64,
        lanes,
    );
    Ok(tier)
}

/// A flattened loop body: document-ordered items.
struct FlatBody {
    items: Vec<FlatItem>,
}

enum FlatItem {
    Node { id: NodeId, stmt: Stmt },
    Scalar(Stmt),
}

/// Flatten a loop body into document-ordered items; `None` when the body
/// has shapes the flat executor cannot honor (nested loops, skeletons
/// inside `if` branches).
fn flatten_body(stmts: &[Stmt]) -> Option<FlatBody> {
    let mut items = Vec::new();
    let mut next_id = 0usize;
    if !flatten_into(stmts, &mut items, &mut next_id) {
        return None;
    }
    Some(FlatBody { items })
}

fn stmt_has_nodes(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Let { expr, body, .. } => expr.op_class() != OpClass::Scalar || stmt_has_nodes(body),
        Stmt::Write { .. } | Stmt::Scatter { .. } => true,
        Stmt::Loop(b) => stmt_has_nodes(b),
        Stmt::If { then, els, .. } => stmt_has_nodes(then) || stmt_has_nodes(els),
        _ => false,
    })
}

fn flatten_into(stmts: &[Stmt], items: &mut Vec<FlatItem>, next_id: &mut usize) -> bool {
    for s in stmts {
        match s {
            Stmt::Let { name, expr, body } => {
                if expr.op_class() != OpClass::Scalar {
                    let id = *next_id;
                    *next_id += 1;
                    items.push(FlatItem::Node {
                        id,
                        stmt: Stmt::Let {
                            name: name.clone(),
                            expr: expr.clone(),
                            body: Vec::new(),
                        },
                    });
                } else {
                    // Scalar binding becomes a flat assignment.
                    items.push(FlatItem::Scalar(Stmt::Assign {
                        name: name.clone(),
                        expr: expr.clone(),
                    }));
                }
                if !flatten_into(body, items, next_id) {
                    return false;
                }
            }
            Stmt::Write { .. } | Stmt::Scatter { .. } => {
                let id = *next_id;
                *next_id += 1;
                items.push(FlatItem::Node {
                    id,
                    stmt: s.clone(),
                });
            }
            Stmt::Loop(_) => return false, // nested loops stay interpreted
            Stmt::If { then, els, .. } => {
                if stmt_has_nodes(then) || stmt_has_nodes(els) {
                    return false;
                }
                items.push(FlatItem::Scalar(s.clone()));
            }
            other => items.push(FlatItem::Scalar(other.clone())),
        }
    }
    true
}

/// Build the executable plan from the flat body and current injections.
fn build_plan(flat: &FlatBody, injections: &[Injection]) -> Vec<Step> {
    let mut plan = Vec::with_capacity(flat.items.len());
    for item in &flat.items {
        match item {
            FlatItem::Scalar(s) => plan.push(Step::Scalar(s.clone())),
            FlatItem::Node { id, stmt } => {
                match injections.iter().position(|inj| inj.covered.contains(id)) {
                    Some(k) if injections[k].anchor == *id => plan.push(Step::Trace(k)),
                    Some(_) => {} // covered, non-anchor: skipped
                    None => plan.push(Step::Node { stmt: stmt.clone() }),
                }
            }
        }
    }
    plan
}

/// Register an injection: the anchor is the *first* covered node in
/// document order, so the trace runs at the region's original position.
fn inject(
    injections: &mut Vec<Injection>,
    _graph: &DepGraph,
    flat: &FlatBody,
    nodes: Vec<NodeId>,
    trace: Arc<CompiledTrace>,
    native: bool,
) {
    let covered: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut anchor = None;
    for item in &flat.items {
        if let FlatItem::Node { id, .. } = item {
            if covered.contains(id) && anchor.is_none() {
                anchor = Some(*id);
            }
        }
    }
    let Some(anchor) = anchor else { return };
    if native && trace.has_native() {
        // The injected trace carries an executable machine-code body the
        // engine will dispatch to.
        crate::obs::jit_event(crate::obs::JitEvent::NativeInstall);
    }
    injections.push(Injection {
        anchor,
        covered,
        trace,
    });
}

/// Infer element types of `let` bindings (best effort) — the JIT's
/// type hints for output narrowing and lane selection.
fn binding_types(program: &Program, buffers: &Buffers) -> HashMap<String, ScalarType> {
    let mut env = TypeEnv::new();
    for (name, ty) in buffers.input_types() {
        env = env.with_buffer(name, ty);
    }
    let mut hints = HashMap::new();
    collect_binding_types(&program.stmts, &mut env, &mut hints);
    hints
}

fn collect_binding_types(
    stmts: &[Stmt],
    env: &mut TypeEnv,
    hints: &mut HashMap<String, ScalarType>,
) {
    for s in stmts {
        match s {
            Stmt::Let { name, expr, body } => {
                if let Ok(t) = infer_expr(expr, env) {
                    if let Type::Array(elem) = t {
                        hints.insert(name.clone(), elem);
                    }
                    *env = env.clone().with_var(name, t);
                }
                collect_binding_types(body, env, hints);
            }
            Stmt::Assign { name, expr } => {
                if let Ok(t) = infer_expr(expr, env) {
                    *env = env.clone().with_var(name, t);
                }
            }
            Stmt::Loop(body) => collect_binding_types(body, env, hints),
            Stmt::If { then, els, .. } => {
                collect_binding_types(then, env, hints);
                collect_binding_types(els, env, hints);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_dsl::programs;
    use adaptvm_hetsim::device::DeviceSpec;

    fn fig2_data(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| (i % 7) - 3).collect()
    }

    fn run_fig2(config: VmConfig, n: usize, limit: i64) -> (Buffers, RunReport) {
        let data = fig2_data(n);
        let buffers = Buffers::new().with_input("some_data", Array::from(data));
        let vm = Vm::new(config);
        vm.run(&programs::fig2_with_limit(limit), buffers).unwrap()
    }

    /// Elements the Fig. 2 loop processes at this chunk size (whole chunks
    /// until the limit check fires).
    fn fig2_processed(n: usize, chunk: usize, limit: usize) -> usize {
        let mut i = 0;
        while i < limit {
            let take = chunk.min(n - i);
            if take == 0 {
                break;
            }
            i += take;
        }
        i
    }

    fn check_fig2_chunked(out: &Buffers, n: usize, chunk: usize, limit: usize) {
        let data = fig2_data(n);
        let processed = fig2_processed(n, chunk, limit);
        let (v, w) = programs::fig2_reference(&data, processed);
        assert_eq!(out.output("v").unwrap().to_i64_vec().unwrap(), v);
        assert_eq!(out.output("w").unwrap().to_i64_vec().unwrap(), w);
    }

    fn check_fig2(out: &Buffers, n: usize, limit: usize) {
        check_fig2_chunked(out, n, DEFAULT_CHUNK, limit)
    }

    #[test]
    fn fig1_state_machine_sequence() {
        let config = VmConfig {
            hot_threshold: 4,
            ..VmConfig::default()
        };
        let (out, report) = run_fig2(config, 40_000, 32_768);
        check_fig2(&out, 40_000, 32_768);
        // Interpret → Optimize → GenerateCode → InjectFunctions.
        assert_eq!(
            report.state_names(),
            vec!["interpret", "optimize", "generate_code", "inject_functions"]
        );
        assert!(report.injected_traces >= 2, "{report:?}");
        assert!(report.trace_executions > 0);
        // The first iterations were interpreted.
        assert!(report.interpreted_nodes > 0);
        assert_eq!(report.iterations, 32);
    }

    #[test]
    fn all_strategies_agree_on_fig2() {
        let n = 20_000;
        let limit = 16_384;
        let mut reference: Option<Vec<i64>> = None;
        for strategy in [
            Strategy::Interpret,
            Strategy::CompiledPipeline,
            Strategy::Adaptive,
        ] {
            let config = VmConfig {
                strategy,
                hot_threshold: 3,
                ..VmConfig::default()
            };
            let (out, _) = run_fig2(config, n, limit as i64);
            check_fig2(&out, n, limit);
            let w = out.output("w").unwrap().to_i64_vec().unwrap();
            match &reference {
                None => reference = Some(w),
                Some(r) => assert_eq!(*r, w, "{strategy:?} diverged"),
            }
        }
    }

    #[test]
    fn chunk_sizes_agree() {
        // Vectorized (1024), tuple-at-a-time (1), column-at-a-time (whole
        // input) — footnote 1's strategy axis.
        for chunk in [1usize, 7, 1024, 1 << 20] {
            let config = VmConfig {
                chunk_size: chunk,
                strategy: Strategy::CompiledPipeline,
                ..VmConfig::default()
            };
            let (out, _) = run_fig2(config, 5000, 4096);
            check_fig2_chunked(&out, 5000, chunk, 4096);
        }
    }

    #[test]
    fn async_compile_injects_mid_run() {
        // The background worker races the loop; retry with growing inputs
        // so the test is robust on fast machines (injection timing is
        // inherently nondeterministic — that is the point of Fig. 1's
        // background code generation).
        let mut injected = None;
        for scale in [1usize, 8, 32] {
            let n = 200_000 * scale;
            let limit = (n - 50_000) as i64;
            let config = VmConfig {
                hot_threshold: 2,
                async_compile: true,
                ..VmConfig::default()
            };
            let (out, report) = run_fig2(config, n, limit);
            check_fig2(&out, n, limit as usize);
            if report.injected_traces > 0 {
                injected = Some(report);
                break;
            }
        }
        let report = injected.expect("background compile should land within the largest run");
        let names = report.state_names();
        assert!(names.contains(&"inject_functions"), "{names:?}");
        let inject_iter = report
            .transitions
            .iter()
            .find(|t| t.state == VmState::InjectFunctions)
            .unwrap()
            .iteration;
        assert!(
            inject_iter >= 2,
            "background injection should land at/after the optimize point"
        );
    }

    #[test]
    fn interpret_strategy_never_compiles() {
        let config = VmConfig {
            strategy: Strategy::Interpret,
            ..VmConfig::default()
        };
        let (out, report) = run_fig2(config, 10_000, 8192);
        check_fig2(&out, 10_000, 8192);
        assert_eq!(report.injected_traces, 0);
        assert_eq!(report.trace_executions, 0);
        assert_eq!(report.compile_ns_total, 0);
    }

    #[test]
    fn compiled_pipeline_compiles_upfront() {
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            ..VmConfig::default()
        };
        let (out, report) = run_fig2(config, 10_000, 8192);
        check_fig2(&out, 10_000, 8192);
        assert_eq!(report.injected_traces, 1);
        assert!(report.compile_ns_total > 0);
        assert_eq!(report.interpreted_nodes, 0, "everything runs in the trace");
    }

    #[test]
    fn programs_without_loops_run() {
        let vm = Vm::adaptive();
        let b = Buffers::new()
            .with_input("xs", Array::from(vec![3.0, 4.0]))
            .with_input("ys", Array::from(vec![4.0, 3.0]));
        let (out, report) = vm.run(&programs::hypot_whole_array(), b).unwrap();
        assert_eq!(out.output("out").unwrap(), &Array::from(vec![5.0, 5.0]));
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn placement_chooses_cpu_for_small_chunks() {
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            devices: vec![DeviceSpec::cpu(), DeviceSpec::discrete_gpu()],
            ..VmConfig::default()
        };
        let (out, report) = run_fig2(config, 10_000, 8192);
        check_fig2(&out, 10_000, 8192);
        let cpu = report
            .device_decisions
            .iter()
            .find(|(n, _)| n == "cpu")
            .unwrap()
            .1;
        let gpu = report
            .device_decisions
            .iter()
            .find(|(n, _)| n == "dgpu")
            .unwrap()
            .1;
        assert!(
            cpu > 0 && gpu == 0,
            "small chunks belong on the CPU: {report:?}"
        );
        assert!(report.device_ns.iter().any(|(_, ns)| *ns > 0));
    }

    #[test]
    fn filter_sum_adaptive_matches_reference() {
        let data: Vec<i64> = (0..50_000).map(|i| (i * 31) % 200 - 100).collect();
        let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
        let config = VmConfig {
            hot_threshold: 3,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let p = programs::filter_sum(0, 40_000);
        let (_, report) = vm.run(&p, buffers).unwrap();
        assert!(report.injected_traces > 0);
        // acc lives in the env — surface it via a write program instead:
        // simpler: rerun interpreted and compare profiles' iteration count.
        assert_eq!(report.iterations, 40);
    }

    #[test]
    fn shared_code_cache_compiles_once_across_runs() {
        let cache = Arc::new(CodeCache::new(8));
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            code_cache: Some(cache.clone()),
            ..VmConfig::default()
        };
        // First run: compiles and publishes the pipeline trace.
        let (out1, r1) = run_fig2(config.clone(), 10_000, 8192);
        check_fig2(&out1, 10_000, 8192);
        assert_eq!(r1.injected_traces, 1);
        assert_eq!(r1.trace_cache_hits, 0);
        assert!(r1.compile_ns_total > 0);
        assert_eq!(cache.stats().entries, 1);
        // Second run over the same program: injects from the cache, pays
        // no compile cost, computes the same result.
        let (out2, r2) = run_fig2(config, 10_000, 8192);
        check_fig2(&out2, 10_000, 8192);
        assert_eq!(r2.trace_cache_hits, 1);
        assert_eq!(r2.compile_ns_total, 0);
        assert_eq!(out1.output("v"), out2.output("v"));
        // Adaptive runs share the same cache entries.
        let adaptive = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 2,
            code_cache: Some(cache.clone()),
            ..VmConfig::default()
        };
        let (out3, r3) = run_fig2(adaptive, 10_000, 8192);
        check_fig2(&out3, 10_000, 8192);
        assert!(
            r3.trace_cache_hits + (r3.injected_traces as u64) > 0,
            "{r3:?}"
        );
    }

    #[test]
    fn shared_compile_server_publishes_across_runs() {
        // A publishing server over a shared cache: the first async run
        // submits the hot fragments; once the compiles land in the cache,
        // later runs over the same program hit without compiling. Retry
        // with growing inputs — background landing time is nondeterministic
        // (that is the point) but the *cache* outlives each run, so the
        // second run observes whatever the first one seeded.
        let cache = Arc::new(CodeCache::new(16));
        let server = Arc::new(CompileServer::with_cache(
            CostModel::untimed(),
            cache.clone(),
            GENERIC_SITUATION,
        ));
        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 2,
            async_compile: true,
            code_cache: Some(cache.clone()),
            compile_server: Some(server.clone()),
            ..VmConfig::default()
        };
        let (out1, _) = run_fig2(config.clone(), 200_000, 150_000);
        check_fig2(&out1, 200_000, 150_000);
        // Give the background compiles time to publish.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while cache.stats().entries == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(cache.stats().entries > 0, "server must publish to cache");
        let (out2, r2) = run_fig2(config, 200_000, 150_000);
        check_fig2(&out2, 200_000, 150_000);
        assert_eq!(out1.output("v"), out2.output("v"));
        assert!(
            r2.trace_cache_hits > 0,
            "second run must hit the published traces: {r2:?}"
        );
        assert_eq!(r2.compile_ns_total, 0, "{r2:?}");
    }

    #[test]
    fn non_publishing_shared_server_is_ignored() {
        // A plain `start()` server cannot be shared safely (unclaimed
        // finishes would be lost), so the engine falls back to its private
        // background path and still completes correctly.
        let server = Arc::new(CompileServer::start(CostModel::untimed()));
        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 2,
            async_compile: true,
            compile_server: Some(server),
            ..VmConfig::default()
        };
        let (out, _) = run_fig2(config, 50_000, 40_000);
        check_fig2(&out, 50_000, 40_000);
    }

    #[test]
    fn trace_and_interpreter_outputs_byte_identical() {
        // Larger soak: every chunk boundary shape (full, partial, empty).
        for n in [1usize, 1023, 1024, 1025, 4096, 10_000] {
            let limit = n.min(8192) as i64;
            let ci = VmConfig {
                strategy: Strategy::Interpret,
                ..VmConfig::default()
            };
            let ca = VmConfig {
                strategy: Strategy::Adaptive,
                hot_threshold: 1,
                ..VmConfig::default()
            };
            let (a, _) = run_fig2(ci, n, limit);
            let (b, _) = run_fig2(ca, n, limit);
            assert_eq!(a.output("v"), b.output("v"), "n={n}");
            assert_eq!(a.output("w"), b.output("w"), "n={n}");
        }
    }
}
