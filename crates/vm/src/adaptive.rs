//! Micro-adaptivity (§III-C): bandit selection among kernel flavors.
//!
//! Following Răducanu et al.'s micro-adaptivity in Vectorwise (the paper's
//! \[24\]), each operation *site* chooses among implementation flavors —
//! filter strategy (selection-vector / bitmap / compute-all) and map mode
//! (full / selective) — using observed per-tuple cost. Two selectors are
//! provided: ε-greedy (explore with fixed probability) and UCB1
//! (optimism under uncertainty); both re-adapt after workload shifts
//! because observations are exponentially discounted.

use adaptvm_kernels::{FilterFlavor, MapMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Selector algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectorKind {
    /// Explore uniformly with probability ε, otherwise exploit.
    EpsilonGreedy(f64),
    /// UCB1 with the given exploration constant.
    Ucb(f64),
}

/// Discount for per-tuple cost estimates (recent observations dominate, so
/// the bandit re-converges after a workload shift).
const COST_ALPHA: f64 = 0.15;

#[derive(Debug, Clone, Default)]
struct Arm {
    pulls: u64,
    /// Discounted average nanoseconds per tuple.
    cost: f64,
}

/// A per-site multi-armed bandit over `N` flavors.
#[derive(Debug)]
pub struct Bandit<const N: usize> {
    kind: SelectorKind,
    sites: HashMap<String, [Arm; N]>,
    rng: StdRng,
}

impl<const N: usize> Bandit<N> {
    /// Build a bandit with a deterministic seed.
    pub fn new(kind: SelectorKind, seed: u64) -> Bandit<N> {
        Bandit {
            kind,
            sites: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Choose an arm index for `site`.
    pub fn choose(&mut self, site: &str) -> usize {
        let arms = self
            .sites
            .entry(site.to_string())
            .or_insert_with(|| std::array::from_fn(|_| Arm::default()));
        // Pull every arm once first.
        if let Some(unpulled) = arms.iter().position(|a| a.pulls == 0) {
            return unpulled;
        }
        match self.kind {
            SelectorKind::EpsilonGreedy(eps) => {
                if self.rng.gen::<f64>() < eps {
                    self.rng.gen_range(0..N)
                } else {
                    best_arm(arms)
                }
            }
            SelectorKind::Ucb(c) => {
                let total: u64 = arms.iter().map(|a| a.pulls).sum();
                let ln_t = (total as f64).ln();
                let mut best = 0;
                let mut best_score = f64::INFINITY;
                for (i, a) in arms.iter().enumerate() {
                    // Lower cost is better: subtract the exploration bonus.
                    let score = a.cost - c * (ln_t / a.pulls as f64).sqrt();
                    if score < best_score {
                        best_score = score;
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Report the observed cost of pulling `arm` at `site`.
    pub fn feedback(&mut self, site: &str, arm: usize, ns: u64, tuples: usize) {
        let arms = self
            .sites
            .entry(site.to_string())
            .or_insert_with(|| std::array::from_fn(|_| Arm::default()));
        let a = &mut arms[arm];
        let per_tuple = ns as f64 / tuples.max(1) as f64;
        if a.pulls == 0 {
            a.cost = per_tuple;
        } else {
            a.cost = COST_ALPHA * per_tuple + (1.0 - COST_ALPHA) * a.cost;
        }
        a.pulls += 1;
    }

    /// The currently-best arm for a site (exploitation view).
    pub fn best(&self, site: &str) -> Option<usize> {
        self.sites.get(site).map(best_arm)
    }

    /// Pull counts per arm for a site.
    pub fn pulls(&self, site: &str) -> Option<Vec<u64>> {
        self.sites
            .get(site)
            .map(|arms| arms.iter().map(|a| a.pulls).collect())
    }
}

fn best_arm<const N: usize>(arms: &[Arm; N]) -> usize {
    let mut best = 0;
    for (i, a) in arms.iter().enumerate() {
        if a.cost < arms[best].cost {
            best = i;
        }
    }
    best
}

/// The flavor-selection interface the interpreter consults.
pub trait FlavorPolicy {
    /// Pick a filter flavor for this site.
    fn filter_flavor(&mut self, site: &str) -> FilterFlavor;
    /// Pick a map mode for this site (the flow carries a selection).
    fn map_mode(&mut self, site: &str) -> MapMode;
    /// Report filter execution feedback.
    fn feedback_filter(&mut self, site: &str, flavor: FilterFlavor, ns: u64, tuples: usize);
    /// Report map execution feedback.
    fn feedback_map(&mut self, site: &str, mode: MapMode, ns: u64, tuples: usize);
}

/// A fixed (non-adaptive) policy.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    /// Filter flavor used everywhere.
    pub filter: FilterFlavor,
    /// Map mode used everywhere.
    pub map: MapMode,
}

impl Default for FixedPolicy {
    fn default() -> FixedPolicy {
        FixedPolicy {
            filter: FilterFlavor::SelVecLoop,
            map: MapMode::Full,
        }
    }
}

impl FlavorPolicy for FixedPolicy {
    fn filter_flavor(&mut self, _site: &str) -> FilterFlavor {
        self.filter
    }
    fn map_mode(&mut self, _site: &str) -> MapMode {
        self.map
    }
    fn feedback_filter(&mut self, _: &str, _: FilterFlavor, _: u64, _: usize) {}
    fn feedback_map(&mut self, _: &str, _: MapMode, _: u64, _: usize) {}
}

/// Bandit-driven micro-adaptive policy.
pub struct BanditPolicy {
    filters: Bandit<3>,
    maps: Bandit<2>,
}

impl BanditPolicy {
    /// ε-greedy policy with a deterministic seed.
    pub fn epsilon_greedy(eps: f64, seed: u64) -> BanditPolicy {
        BanditPolicy {
            filters: Bandit::new(SelectorKind::EpsilonGreedy(eps), seed),
            maps: Bandit::new(SelectorKind::EpsilonGreedy(eps), seed.wrapping_add(1)),
        }
    }

    /// UCB1 policy.
    pub fn ucb(c: f64, seed: u64) -> BanditPolicy {
        BanditPolicy {
            filters: Bandit::new(SelectorKind::Ucb(c), seed),
            maps: Bandit::new(SelectorKind::Ucb(c), seed.wrapping_add(1)),
        }
    }

    /// The exploitation choice for a filter site (for reports).
    pub fn best_filter(&self, site: &str) -> Option<FilterFlavor> {
        self.filters.best(site).map(|i| FilterFlavor::ALL[i])
    }

    /// Pull counts for a filter site.
    pub fn filter_pulls(&self, site: &str) -> Option<Vec<u64>> {
        self.filters.pulls(site)
    }
}

const MAP_MODES: [MapMode; 2] = [MapMode::Full, MapMode::Selective];

impl FlavorPolicy for BanditPolicy {
    fn filter_flavor(&mut self, site: &str) -> FilterFlavor {
        FilterFlavor::ALL[self.filters.choose(site)]
    }

    fn map_mode(&mut self, site: &str) -> MapMode {
        MAP_MODES[self.maps.choose(site)]
    }

    fn feedback_filter(&mut self, site: &str, flavor: FilterFlavor, ns: u64, tuples: usize) {
        let arm = FilterFlavor::ALL
            .iter()
            .position(|f| *f == flavor)
            .expect("flavor in table");
        self.filters.feedback(site, arm, ns, tuples);
    }

    fn feedback_map(&mut self, site: &str, mode: MapMode, ns: u64, tuples: usize) {
        let arm = MAP_MODES
            .iter()
            .position(|m| *m == mode)
            .expect("mode in table");
        self.maps.feedback(site, arm, ns, tuples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulated environment: arm costs per tuple; arm 1 is the best.
    fn run_bandit(kind: SelectorKind, rounds: usize, costs: [u64; 3]) -> (Vec<u64>, usize) {
        let mut b: Bandit<3> = Bandit::new(kind, 42);
        for _ in 0..rounds {
            let arm = b.choose("site");
            b.feedback("site", arm, costs[arm] * 100, 100);
        }
        (b.pulls("site").unwrap(), b.best("site").unwrap())
    }

    #[test]
    fn epsilon_greedy_converges_to_cheapest() {
        let (pulls, best) = run_bandit(SelectorKind::EpsilonGreedy(0.1), 500, [30, 5, 50]);
        assert_eq!(best, 1);
        assert!(
            pulls[1] > pulls[0] + pulls[2],
            "best arm should dominate: {pulls:?}"
        );
    }

    #[test]
    fn ucb_converges_to_cheapest() {
        let (pulls, best) = run_bandit(SelectorKind::Ucb(2.0), 500, [30, 5, 50]);
        assert_eq!(best, 1);
        assert!(pulls[1] > pulls[0] && pulls[1] > pulls[2], "{pulls:?}");
    }

    #[test]
    fn bandit_readapts_after_shift() {
        let mut b: Bandit<2> = Bandit::new(SelectorKind::EpsilonGreedy(0.15), 7);
        // Phase 1: arm 0 cheap.
        for _ in 0..200 {
            let arm = b.choose("s");
            let cost = if arm == 0 { 5 } else { 50 };
            b.feedback("s", arm, cost * 100, 100);
        }
        assert_eq!(b.best("s"), Some(0));
        // Phase 2: costs invert; the discounted estimate must flip.
        for _ in 0..400 {
            let arm = b.choose("s");
            let cost = if arm == 0 { 50 } else { 5 };
            b.feedback("s", arm, cost * 100, 100);
        }
        assert_eq!(b.best("s"), Some(1));
    }

    #[test]
    fn sites_are_independent() {
        let mut b: Bandit<2> = Bandit::new(SelectorKind::EpsilonGreedy(0.0), 3);
        for _ in 0..50 {
            let a = b.choose("one");
            b.feedback("one", a, if a == 0 { 100 } else { 9000 }, 100);
            let a = b.choose("two");
            b.feedback("two", a, if a == 1 { 100 } else { 9000 }, 100);
        }
        assert_eq!(b.best("one"), Some(0));
        assert_eq!(b.best("two"), Some(1));
    }

    #[test]
    fn fixed_policy_is_constant() {
        let mut p = FixedPolicy::default();
        assert_eq!(p.filter_flavor("x"), FilterFlavor::SelVecLoop);
        assert_eq!(p.map_mode("x"), MapMode::Full);
        p.feedback_filter("x", FilterFlavor::Bitmap, 1, 1); // no-op
        assert_eq!(p.filter_flavor("x"), FilterFlavor::SelVecLoop);
    }

    #[test]
    fn bandit_policy_maps_flavors() {
        let mut p = BanditPolicy::epsilon_greedy(0.0, 11);
        // Feed strong evidence that Bitmap is best.
        for _ in 0..20 {
            let f = p.filter_flavor("f");
            let ns = match f {
                FilterFlavor::Bitmap => 100,
                _ => 10_000,
            };
            p.feedback_filter("f", f, ns, 100);
        }
        assert_eq!(p.best_filter("f"), Some(FilterFlavor::Bitmap));
        let pulls = p.filter_pulls("f").unwrap();
        assert_eq!(pulls.iter().sum::<u64>(), 20);
    }
}
