//! Buffers and the runtime variable environment.

use std::collections::HashMap;

use adaptvm_dsl::value::Value;
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::ScalarType;

use crate::error::VmError;

/// Named data buffers: read-only inputs and growable output sinks.
///
/// `read i buf` reads inputs first, falling back to outputs (programs may
/// read back what they wrote); `write buf i v` always targets an output,
/// creating it on first write.
#[derive(Debug, Clone, Default)]
pub struct Buffers {
    inputs: HashMap<String, Array>,
    outputs: HashMap<String, Array>,
}

impl Buffers {
    /// Empty buffer set.
    pub fn new() -> Buffers {
        Buffers::default()
    }

    /// Add (replace) an input buffer.
    pub fn with_input(mut self, name: &str, data: Array) -> Buffers {
        self.inputs.insert(name.to_string(), data);
        self
    }

    /// Add an input buffer in place.
    pub fn insert_input(&mut self, name: &str, data: Array) {
        self.inputs.insert(name.to_string(), data);
    }

    /// Look up an input (or previously written output) buffer.
    pub fn buffer(&self, name: &str) -> Result<&Array, VmError> {
        self.inputs
            .get(name)
            .or_else(|| self.outputs.get(name))
            .ok_or_else(|| VmError::UnknownBuffer(name.to_string()))
    }

    /// Read up to `len` elements starting at `pos`; short (or empty) reads
    /// at the tail are normal (Fig. 2's loop exit depends on them).
    pub fn read(&self, name: &str, pos: usize, len: usize) -> Result<Array, VmError> {
        Ok(self.buffer(name)?.slice(pos, len))
    }

    /// Write `values` into output `name` at `pos`, growing as needed.
    pub fn write(&mut self, name: &str, pos: usize, values: &Array) -> Result<(), VmError> {
        let out = self
            .outputs
            .entry(name.to_string())
            .or_insert_with(|| Array::empty(values.scalar_type()));
        out.write_at(pos, values)?;
        Ok(())
    }

    /// Mutable access to an output buffer (scatter targets), creating it
    /// with the given type when absent.
    pub fn output_mut(&mut self, name: &str, ty: ScalarType) -> &mut Array {
        self.outputs
            .entry(name.to_string())
            .or_insert_with(|| Array::empty(ty))
    }

    /// An output buffer by name, when present.
    pub fn output(&self, name: &str) -> Option<&Array> {
        self.outputs.get(name)
    }

    /// Iterate over input buffer names and types.
    pub fn input_types(&self) -> impl Iterator<Item = (&str, ScalarType)> {
        self.inputs
            .iter()
            .map(|(n, a)| (n.as_str(), a.scalar_type()))
    }

    /// Consume into the output map.
    pub fn into_outputs(self) -> HashMap<String, Array> {
        self.outputs
    }
}

/// The variable environment of one program run.
///
/// The engine executes normalized loop bodies against a *flat* per-run
/// environment: normalized programs use unique binding names (`_t…`), so
/// lexical scoping collapses to name lookup.
#[derive(Debug, Default)]
pub struct Env {
    vars: HashMap<String, Value>,
    /// The buffers the program reads/writes.
    pub buffers: Buffers,
}

impl Env {
    /// Fresh environment over the given buffers.
    pub fn new(buffers: Buffers) -> Env {
        Env {
            vars: HashMap::new(),
            buffers,
        }
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Result<&Value, VmError> {
        self.vars
            .get(name)
            .ok_or_else(|| VmError::Unbound(name.to_string()))
    }

    /// Bind (or rebind) a variable.
    pub fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }

    /// True when `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::scalar::Scalar;

    #[test]
    fn buffer_reads_clamp() {
        let b = Buffers::new().with_input("xs", Array::from(vec![1i64, 2, 3]));
        assert_eq!(b.read("xs", 2, 10).unwrap(), Array::from(vec![3i64]));
        assert_eq!(b.read("xs", 5, 10).unwrap().len(), 0);
        assert!(b.read("nope", 0, 1).is_err());
    }

    #[test]
    fn writes_create_and_grow() {
        let mut b = Buffers::new();
        b.write("out", 0, &Array::from(vec![1i64, 2])).unwrap();
        b.write("out", 2, &Array::from(vec![3i64])).unwrap();
        assert_eq!(b.output("out").unwrap(), &Array::from(vec![1i64, 2, 3]));
        // Written outputs are readable.
        assert_eq!(b.read("out", 1, 2).unwrap(), Array::from(vec![2i64, 3]));
    }

    #[test]
    fn env_bindings() {
        let mut env = Env::new(Buffers::new());
        assert!(env.get("x").is_err());
        env.set("x", Value::Scalar(Scalar::I64(5)));
        assert_eq!(env.get("x").unwrap().as_i64(), Some(5));
        assert!(env.contains("x"));
    }
}
