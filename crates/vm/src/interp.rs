//! The vectorized interpreter (§III-A).
//!
//! Executes (preferably normalized) DSL programs chunk-at-a-time: every
//! skeleton dispatches to a pre-compiled kernel from `adaptvm-kernels`,
//! profiling collects per-site time/calls/tuples, and a [`FlavorPolicy`]
//! picks kernel flavors per site (micro-adaptivity). Non-normalized
//! lambdas are handled by a generic fallback (parameters bound to vectors,
//! scalar ops lifted element-wise), so the interpreter is total over the
//! language even before normalization.

use std::time::Instant;

use adaptvm_dsl::ast::{Expr, Lambda, Program, ScalarOp, Stmt};
use adaptvm_dsl::value::{Value, Vector};
use adaptvm_kernels::movement;
use adaptvm_kernels::{filter_cmp, fold_apply, map_apply, Operand};
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::sel::SelVec;
use adaptvm_storage::DEFAULT_CHUNK;

use crate::adaptive::{FixedPolicy, FlavorPolicy};
use crate::env::{Buffers, Env};
use crate::error::VmError;
use crate::profile::Profile;

/// Control-flow result of statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Continue with the next statement.
    Normal,
    /// A `break` is propagating to the innermost loop.
    Broke,
}

/// Safety limit on loop iterations (runaway-program guard).
pub const MAX_ITERATIONS: u64 = 1 << 32;

/// The vectorized interpreter.
pub struct Interpreter<'p> {
    /// Chunk length used by `read` without an explicit length.
    pub chunk_size: usize,
    /// Profile sink.
    pub profile: &'p mut Profile,
    /// Flavor selection (micro-adaptivity).
    pub policy: &'p mut dyn FlavorPolicy,
}

impl<'p> Interpreter<'p> {
    /// Interpreter with the given profile and policy.
    pub fn new(
        chunk_size: usize,
        profile: &'p mut Profile,
        policy: &'p mut dyn FlavorPolicy,
    ) -> Interpreter<'p> {
        Interpreter {
            chunk_size,
            profile,
            policy,
        }
    }

    /// Execute statements.
    pub fn exec_stmts(&mut self, stmts: &[Stmt], env: &mut Env) -> Result<Flow, VmError> {
        for s in stmts {
            if self.exec_stmt(s, env)? == Flow::Broke {
                return Ok(Flow::Broke);
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute one statement.
    pub fn exec_stmt(&mut self, s: &Stmt, env: &mut Env) -> Result<Flow, VmError> {
        match s {
            Stmt::DeclareMut { .. } => Ok(Flow::Normal),
            Stmt::Assign { name, expr } => {
                let v = self.eval(expr, env)?;
                env.set(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Let { name, expr, body } => {
                let profiled = !matches!(expr, Expr::Const(_) | Expr::Var(_) | Expr::Apply(..));
                let t0 = Instant::now();
                let v = self.eval(expr, env)?;
                if profiled {
                    let tuples = v.logical_len();
                    self.profile
                        .record(name, t0.elapsed().as_nanos() as u64, tuples);
                }
                env.set(name, v);
                let flow = self.exec_stmts(body, env)?;
                Ok(flow)
            }
            Stmt::Write { target, pos, value } => {
                let t0 = Instant::now();
                let pos = self.eval_scalar_index(pos, env, "write position")?;
                let v = self.eval(value, env)?;
                let data = match v {
                    Value::Vector(vec) => vec.condense()?.data,
                    Value::Scalar(s) => Array::splat(&s, 1),
                };
                let tuples = data.len();
                env.buffers.write(target, pos, &data)?;
                self.profile.record(
                    &format!("write {target}"),
                    t0.elapsed().as_nanos() as u64,
                    tuples,
                );
                Ok(Flow::Normal)
            }
            Stmt::Scatter {
                target,
                indices,
                value,
                conflict,
            } => {
                let idx = self.eval_vector(indices, env)?.condense()?.data;
                let vals = self.eval_vector(value, env)?.condense()?.data;
                let out = env.buffers.output_mut(target, vals.scalar_type());
                movement::scatter(out, &idx, &vals, *conflict)?;
                Ok(Flow::Normal)
            }
            Stmt::Loop(body) => {
                let mut iterations: u64 = 0;
                loop {
                    iterations += 1;
                    if iterations > MAX_ITERATIONS {
                        return Err(VmError::IterationLimit(MAX_ITERATIONS));
                    }
                    self.profile.iterations += 1;
                    if self.exec_stmts(body, env)? == Flow::Broke {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Broke),
            Stmt::If { cond, then, els } => {
                let c = self.eval(cond, env)?;
                let b = c
                    .as_scalar()
                    .and_then(Scalar::as_bool)
                    .ok_or_else(|| VmError::Shape("if condition must be a scalar bool".into()))?;
                if b {
                    self.exec_stmts(then, env)
                } else {
                    self.exec_stmts(els, env)
                }
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Evaluate an expression to a value.
    pub fn eval(&mut self, e: &Expr, env: &mut Env) -> Result<Value, VmError> {
        match e {
            Expr::Const(s) => Ok(Value::Scalar(s.clone())),
            Expr::Var(name) => env.get(name).cloned(),
            Expr::Len(inner) => {
                let v = self.eval(inner, env)?;
                Ok(Value::Scalar(Scalar::I64(v.logical_len() as i64)))
            }
            Expr::Apply(op, args) => {
                let values = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_apply(*op, &values)
            }
            Expr::Read { pos, data, len } => {
                let pos = self.eval_scalar_index(pos, env, "read position")?;
                let len = match len {
                    Some(l) => self.eval_scalar_index(l, env, "read length")?,
                    None => self.chunk_size,
                };
                let chunk = env.buffers.read(data, pos, len)?;
                Ok(Value::dense(chunk))
            }
            Expr::Map { f, inputs } => {
                let values = inputs
                    .iter()
                    .map(|i| self.eval(i, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_map(f, &values, env, "map")
            }
            Expr::Filter { p, inputs } => {
                let values = inputs
                    .iter()
                    .map(|i| self.eval(i, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_filter(p, &values, env)
            }
            Expr::Fold { r, init, input } => {
                let init = self
                    .eval(init, env)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| VmError::Shape("fold init must be scalar".into()))?;
                let v = self.eval_vector(input, env)?;
                let result = fold_apply(*r, &init, &v.data, v.sel.as_ref())?;
                Ok(Value::Scalar(result))
            }
            Expr::Gather { indices, data } => {
                let idx = self.eval_vector(indices, env)?.condense()?.data;
                let buffer = env.buffers.buffer(data)?.clone();
                Ok(Value::dense(movement::gather(&buffer, &idx)?))
            }
            Expr::Gen { f, len } => {
                let n = self.eval_scalar_index(len, env, "gen length")?;
                let index = Value::dense(movement::gen_index(n));
                if f.params.len() == 1
                    && matches!(f.body.as_ref(), Expr::Var(v) if *v == f.params[0])
                {
                    return Ok(index);
                }
                self.eval_map(f, &[index], env, "gen")
            }
            Expr::Condense(inner) => {
                let v = self.eval_vector(inner, env)?;
                Ok(Value::Vector(v.condense()?))
            }
            Expr::Merge { kind, left, right } => {
                let l = self.eval_vector(left, env)?.condense()?.data;
                let r = self.eval_vector(right, env)?.condense()?.data;
                Ok(Value::dense(adaptvm_kernels::merge::merge_apply(
                    *kind, &l, &r,
                )?))
            }
        }
    }

    fn eval_vector(&mut self, e: &Expr, env: &mut Env) -> Result<Vector, VmError> {
        match self.eval(e, env)? {
            Value::Vector(v) => Ok(v),
            Value::Scalar(s) => Ok(Vector::dense(Array::splat(&s, 1))),
        }
    }

    /// Evaluate a scalar integer expression (positions, lengths).
    pub fn eval_scalar_int(&mut self, e: &Expr, env: &mut Env) -> Result<i64, VmError> {
        self.eval(e, env)?
            .as_i64()
            .ok_or_else(|| VmError::Shape("expected a scalar integer".into()))
    }

    /// Evaluate a position/length operand that must be non-negative
    /// (buffer offsets, chunk lengths, gen lengths) to a `usize`.
    pub fn eval_scalar_index(
        &mut self,
        e: &Expr,
        env: &mut Env,
        what: &str,
    ) -> Result<usize, VmError> {
        let v = self.eval_scalar_int(e, env)?;
        if v < 0 {
            return Err(VmError::Shape(format!("{what} must be non-negative")));
        }
        Ok(v as usize)
    }

    /// Scalar ops over mixed scalar/vector operands: pure-scalar operands
    /// compute directly; any vector operand lifts the op element-wise
    /// (the DSL's "scalars are length-1 arrays" rule).
    fn eval_apply(&mut self, op: ScalarOp, values: &[Value]) -> Result<Value, VmError> {
        let any_vector = values.iter().any(|v| matches!(v, Value::Vector(_)));
        if !any_vector {
            // Scalar fast path via a length-1 kernel call.
            let scalars: Vec<Scalar> = values
                .iter()
                .map(|v| v.as_scalar().cloned().expect("checked"))
                .collect();
            let first = Array::splat(&scalars[0], 1);
            let mut operands = vec![Operand::Col(&first)];
            for s in &scalars[1..] {
                operands.push(Operand::Const(s.clone()));
            }
            let result = map_apply(op, &operands, None, adaptvm_kernels::MapMode::Full)?;
            return Ok(Value::Scalar(result.get(0)?));
        }
        // Lifted path: common selection from the vector operands.
        let sel = common_sel(values)?;
        let arrays: Vec<Option<&Array>> = values
            .iter()
            .map(|v| v.as_vector().map(|vec| &vec.data))
            .collect();
        let operands: Vec<Operand<'_>> = values
            .iter()
            .zip(&arrays)
            .map(|(v, a)| match a {
                Some(arr) => Operand::Col(arr),
                None => Operand::Const(v.as_scalar().cloned().expect("scalar")),
            })
            .collect();
        let data = map_apply(op, &operands, sel.as_ref(), adaptvm_kernels::MapMode::Full)?;
        Ok(Value::Vector(Vector { data, sel }))
    }

    /// Evaluate a map by binding parameters and evaluating the body with
    /// lifted scalar ops. Normalized single-op bodies take one kernel call;
    /// composite bodies recurse (still vectorized, with intermediates).
    fn eval_map(
        &mut self,
        f: &Lambda,
        inputs: &[Value],
        env: &mut Env,
        _site: &str,
    ) -> Result<Value, VmError> {
        if f.params.len() != inputs.len() {
            return Err(VmError::Shape(format!(
                "map arity mismatch: {} params, {} inputs",
                f.params.len(),
                inputs.len()
            )));
        }
        let sel = common_sel(inputs)?;
        // Broadcast scalars are kept as scalars (kernel Const operands).
        let shadowed: Vec<Option<Value>> = f
            .params
            .iter()
            .zip(inputs)
            .map(|(p, v)| {
                let old = if env.contains(p) {
                    Some(env.get(p).expect("contains").clone())
                } else {
                    None
                };
                env.set(p, v.clone());
                old
            })
            .collect();
        let result = self.eval(&f.body, env);
        for (p, old) in f.params.iter().zip(shadowed) {
            match old {
                Some(v) => env.set(p, v),
                None => {
                    // Leave a tombstone-free env: rebinding with a scalar 0
                    // would be wrong; remove by rebuilding is costly. We
                    // simply shadow — normalized programs use fresh names.
                }
            }
        }
        let value = result?;
        match value {
            Value::Vector(v) => Ok(Value::Vector(v)),
            // Constant body: broadcast to the input length.
            Value::Scalar(s) => {
                let n = inputs
                    .iter()
                    .find_map(|v| v.as_vector().map(Vector::len))
                    .unwrap_or(1);
                Ok(Value::Vector(Vector {
                    data: Array::splat(&s, n),
                    sel,
                }))
            }
        }
    }

    /// Evaluate a filter: compute the new selection on the flow carrier.
    fn eval_filter(
        &mut self,
        p: &Lambda,
        inputs: &[Value],
        env: &mut Env,
    ) -> Result<Value, VmError> {
        let flow = inputs
            .first()
            .and_then(Value::as_vector)
            .ok_or_else(|| VmError::Shape("filter flow must be a vector".into()))?
            .clone();
        let site = format!("filter@{}", p_fingerprint(p));
        let flavor = self.policy.filter_flavor(&site);
        let t0 = Instant::now();

        // Fast path: normalized comparison predicate.
        let sel = if let Expr::Apply(op, args) = p.body.as_ref() {
            if op.is_comparison()
                && args
                    .iter()
                    .all(|a| matches!(a, Expr::Var(_) | Expr::Const(_)))
            {
                let operands = args
                    .iter()
                    .map(|a| self.predicate_operand(a, p, inputs))
                    .collect::<Result<Vec<_>, _>>()?;
                let operand_refs: Vec<Operand<'_>> = operands
                    .iter()
                    .map(|o| match o {
                        PredOperand::Col(a) => Operand::Col(a),
                        PredOperand::Const(s) => Operand::Const(s.clone()),
                    })
                    .collect();
                Some(filter_cmp(*op, &operand_refs, flow.sel.as_ref(), flavor)?)
            } else {
                None
            }
        } else {
            None
        };
        let sel = match sel {
            Some(s) => s,
            None => {
                // Generic path: evaluate the predicate to a bool column.
                let bools = self.eval_map(p, inputs, env, "filter-pred")?;
                let bools = bools
                    .as_vector()
                    .ok_or_else(|| VmError::Shape("predicate must be vectorized".into()))?;
                adaptvm_kernels::filter::filter_bools(&bools.data, flow.sel.as_ref(), flavor)?
            }
        };

        let elapsed = t0.elapsed().as_nanos() as u64;
        let candidates = flow.selected_len();
        self.policy
            .feedback_filter(&site, flavor, elapsed, candidates.max(1));
        let selectivity = if candidates == 0 {
            0.0
        } else {
            sel.len() as f64 / candidates as f64
        };
        self.profile.record_selectivity(&site, selectivity);

        Ok(Value::Vector(Vector::selected(flow.data, sel)))
    }

    fn predicate_operand<'v>(
        &self,
        arg: &Expr,
        p: &Lambda,
        inputs: &'v [Value],
    ) -> Result<PredOperand<'v>, VmError> {
        match arg {
            Expr::Const(s) => Ok(PredOperand::Const(s.clone())),
            Expr::Var(name) => match p.params.iter().position(|x| x == name) {
                Some(i) => match &inputs[i] {
                    Value::Vector(v) => Ok(PredOperand::Col(&v.data)),
                    Value::Scalar(s) => Ok(PredOperand::Const(s.clone())),
                },
                None => Err(VmError::Unbound(format!("predicate variable {name}"))),
            },
            _ => Err(VmError::Shape("non-atomic predicate operand".into())),
        }
    }
}

enum PredOperand<'a> {
    Col(&'a Array),
    Const(Scalar),
}

/// A stable site id for a predicate (used to key micro-adaptive arms).
fn p_fingerprint(p: &Lambda) -> String {
    adaptvm_dsl::printer::print_expr(&p.body)
}

/// The common pending selection of vector operands (scalars have none).
/// Mixed selections are a shape error — normalization never produces them.
fn common_sel(values: &[Value]) -> Result<Option<SelVec>, VmError> {
    let mut sel: Option<&SelVec> = None;
    for v in values {
        if let Value::Vector(vec) = v {
            match (&sel, &vec.sel) {
                (None, Some(s)) => sel = Some(s),
                (Some(a), Some(b)) if *a != b => {
                    return Err(VmError::Shape("operands carry different selections".into()))
                }
                _ => {}
            }
        }
    }
    Ok(sel.cloned())
}

/// Convenience: run a whole program under plain vectorized interpretation.
pub fn run_interpreted(
    program: &Program,
    buffers: Buffers,
    chunk_size: usize,
) -> Result<(Buffers, Profile), VmError> {
    let mut profile = Profile::new();
    let mut policy = FixedPolicy::default();
    let mut env = Env::new(buffers);
    {
        let mut interp = Interpreter::new(
            if chunk_size == 0 {
                DEFAULT_CHUNK
            } else {
                chunk_size
            },
            &mut profile,
            &mut policy,
        );
        interp.exec_stmts(&program.stmts, &mut env)?;
    }
    Ok((env.buffers, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_dsl::normalize::normalize_program;
    use adaptvm_dsl::parser::parse_program;
    use adaptvm_dsl::programs;

    fn run(src: &str, buffers: Buffers) -> Buffers {
        let p = parse_program(src).unwrap();
        let (buffers, _) = run_interpreted(&p, buffers, 1024).unwrap();
        buffers
    }

    #[test]
    fn negative_positions_are_typed_errors() {
        // Regression: negative read/write positions, read lengths, and gen
        // lengths were cast straight to usize (huge allocations or debug
        // overflow panics) instead of producing typed errors.
        use adaptvm_dsl::ast::build::*;
        use adaptvm_dsl::ast::{Program, ScalarOp};
        let b = || Buffers::new().with_input("xs", Array::from(vec![1i64, 2, 3]));
        for src in [
            "let a = read (0 - 1) xs in { write out 0 a }",
            "let a = read 0 xs in { write out (0 - 2) a }",
            "let g = gen (\\i -> i) (0 - 5) in { write out 0 g }",
        ] {
            let p = parse_program(src).unwrap();
            assert!(
                matches!(run_interpreted(&p, b(), 1024), Err(VmError::Shape(_))),
                "{src}"
            );
        }
        // Negative explicit read length (no concrete syntax; builder only).
        let p = Program::new(vec![adaptvm_dsl::ast::build::let_in(
            "a",
            adaptvm_dsl::ast::Expr::Read {
                pos: Box::new(int(0)),
                data: "xs".into(),
                len: Some(Box::new(bin(ScalarOp::Sub, int(0), int(4)))),
            },
            vec![write("out", int(0), var("a"))],
        )]);
        assert!(matches!(
            run_interpreted(&p, b(), 1024),
            Err(VmError::Shape(_))
        ));
    }

    #[test]
    fn fig2_interprets_correctly() {
        let data: Vec<i64> = (0..5000).map(|i| (i % 5) - 2).collect();
        let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
        let (out, profile) = run_interpreted(&programs::fig2_example(), buffers, 1024).unwrap();
        let (v_ref, w_ref) = programs::fig2_reference(&data, 4096);
        assert_eq!(out.output("v").unwrap().to_i64_vec().unwrap(), v_ref);
        assert_eq!(out.output("w").unwrap().to_i64_vec().unwrap(), w_ref);
        // 4096 elements at 1024/chunk = 4 iterations.
        assert_eq!(profile.iterations, 4);
        // Profile captured the map site.
        assert!(profile.op("a").calls >= 4);
    }

    /// Elements the Fig. 2 loop processes: whole chunks until the limit
    /// check fires (the loop tests `i >= limit` only after a full chunk).
    fn fig2_processed(n: usize, chunk: usize, limit: usize) -> usize {
        let mut i = 0;
        while i < limit {
            let take = chunk.min(n - i);
            if take == 0 {
                break;
            }
            i += take;
        }
        i
    }

    #[test]
    fn fig2_chunk_size_invariance() {
        let data: Vec<i64> = (0..5000).map(|i| (i * 7 % 11) - 5).collect();
        for chunk in [1usize, 3, 64, 1024, 4096, 10_000] {
            let processed = fig2_processed(data.len(), chunk, 4096);
            let expected = programs::fig2_reference(&data, processed);
            let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
            let (out, _) = run_interpreted(&programs::fig2_example(), buffers, chunk).unwrap();
            assert_eq!(
                out.output("v").unwrap().to_i64_vec().unwrap(),
                expected.0,
                "chunk {chunk}"
            );
            assert_eq!(
                out.output("w").unwrap().to_i64_vec().unwrap(),
                expected.1,
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn normalized_and_raw_programs_agree() {
        let data: Vec<i64> = (-50..50).collect();
        let src = programs::hypot_whole_array();
        let normalized = normalize_program(&src);
        let mk = || {
            Buffers::new()
                .with_input("xs", Array::from(vec![3.0, 6.0, 9.0]))
                .with_input("ys", Array::from(vec![4.0, 8.0, 12.0]))
        };
        let (a, _) = run_interpreted(&src, mk(), 1024).unwrap();
        let (b, _) = run_interpreted(&normalized, mk(), 1024).unwrap();
        assert_eq!(a.output("out"), b.output("out"));
        assert_eq!(
            a.output("out").unwrap(),
            &Array::from(vec![5.0, 10.0, 15.0])
        );
        let _ = data;
    }

    #[test]
    fn filter_sum_accumulates() {
        let data: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
        let p = programs::filter_sum(90, 10_000);
        let (_, profile) = {
            let mut profile = Profile::new();
            let mut policy = FixedPolicy::default();
            let mut env = Env::new(buffers);
            {
                let mut i = Interpreter::new(1024, &mut profile, &mut policy);
                i.exec_stmts(&p.stmts, &mut env).unwrap();
            }
            let acc = env.get("acc").unwrap().as_i64().unwrap();
            assert_eq!(acc, programs::filter_sum_reference(&data, 90, 10_000));
            (env, profile)
        };
        // Selectivity of x > 90 over 0..100 is ~0.09.
        let sites: Vec<_> = profile.sel_classes().into_keys().collect();
        assert_eq!(sites.len(), 1);
        let sel = profile.selectivity(&sites[0]).unwrap();
        assert!((sel - 0.09).abs() < 0.02, "sel {sel}");
    }

    #[test]
    fn scatter_and_gather() {
        let b = Buffers::new()
            .with_input("src", Array::from(vec![10i64, 20, 30, 40]))
            .with_input("idx", Array::from(vec![3i64, 0]));
        let out = run(
            "let i = read 0 idx in { let g = gather i src in { write picked 0 g } }",
            b,
        );
        assert_eq!(out.output("picked").unwrap(), &Array::from(vec![40i64, 10]));

        let b = Buffers::new()
            .with_input("vals", Array::from(vec![5i64, 7, 9]))
            .with_input("keys", Array::from(vec![1i64, 1, 0]));
        let out = run(
            "let k = read 0 keys in { let v = read 0 vals in { scatter agg k v add } }",
            b,
        );
        assert_eq!(out.output("agg").unwrap(), &Array::from(vec![9i64, 12]));
    }

    #[test]
    fn merge_and_gen() {
        let b = Buffers::new()
            .with_input("xs", Array::from(vec![1i64, 3, 5]))
            .with_input("ys", Array::from(vec![2i64, 3]));
        let out = run(
            "let a = read 0 xs in { let b = read 0 ys in { let m = merge union a b in { write out 0 m } } }",
            b,
        );
        assert_eq!(
            out.output("out").unwrap(),
            &Array::from(vec![1i64, 2, 3, 3, 5])
        );
        let out = run(
            "let g = gen (\\i -> i * i) 5 in { write sq 0 g }",
            Buffers::new(),
        );
        assert_eq!(
            out.output("sq").unwrap(),
            &Array::from(vec![0i64, 1, 4, 9, 16])
        );
    }

    #[test]
    fn conjunction_predicates_via_generic_path() {
        let b = Buffers::new().with_input("xs", Array::from(vec![1i64, 5, 8, 12]));
        let out = run(
            "let a = read 0 xs in { let t = filter (\\x -> x > 2 && x < 10) a in { write out 0 (condense t) } }",
            b,
        );
        assert_eq!(out.output("out").unwrap(), &Array::from(vec![5i64, 8]));
    }

    #[test]
    fn if_else_and_scalars() {
        let out = run(
            "mut x\nx := 10\nif x > 5 then { x := x * 2 } else { x := 0 }\nlet g = gen (\\i -> i) x in { write out 0 g }",
            Buffers::new(),
        );
        assert_eq!(out.output("out").unwrap().len(), 20);
    }

    #[test]
    fn errors_are_reported() {
        let p = parse_program("write out 0 missing").unwrap();
        let err = run_interpreted(&p, Buffers::new(), 64).unwrap_err();
        assert!(matches!(err, VmError::Unbound(_)));
        let p = parse_program("let a = read 0 nope in { write out 0 a }").unwrap();
        let err = run_interpreted(&p, Buffers::new(), 64).unwrap_err();
        assert!(matches!(err, VmError::UnknownBuffer(_)));
        let p = parse_program("if 5 then { break }").unwrap();
        let err = run_interpreted(&p, Buffers::new(), 64).unwrap_err();
        assert!(matches!(err, VmError::Shape(_)));
    }

    #[test]
    fn saxpy_program() {
        let xs: Vec<i64> = (0..3000).collect();
        let ys: Vec<i64> = (0..3000).map(|i| i * 10).collect();
        let b = Buffers::new()
            .with_input("xs", Array::from(xs.clone()))
            .with_input("ys", Array::from(ys.clone()));
        let (out, _) = run_interpreted(&programs::saxpy(3, 3000), b, 512).unwrap();
        let expected: Vec<i64> = xs.iter().zip(&ys).map(|(x, y)| 3 * x + y).collect();
        assert_eq!(out.output("out").unwrap().to_i64_vec().unwrap(), expected);
    }
}
