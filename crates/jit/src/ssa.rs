//! SSA construction for the native backend.
//!
//! A [`TraceIr`] uses a small file of mutable registers; the native
//! emitter wants pure values with known live ranges. This pass renames
//! every register write to a fresh **value id**, resolves every operand
//! to an input / value / lane-domain constant, and computes per-value
//! live intervals for [`crate::regalloc`].
//!
//! The pass also decides whether a trace is *eligible* for native code
//! at all. `run_blocks` (the packed interpreter) keeps register state
//! across blocks, so a trace that reads a register before writing it in
//! program order has semantics a per-lane loop cannot reproduce — such
//! traces (and any op outside the supported set) are rejected here,
//! which makes the engine fall back to the interpreted-trace tier.
//!
//! ## Positions
//!
//! Ops are linearized as: pre op `j` at position `j`, the filter at
//! position `pre_len`, post op `j` at `pre_len + 1 + j`, and all output
//! emission (dense/compacted arrays, selections, folds) at a single
//! trailing position. Helper-call sites (ops lowered to `extern "C"`
//! calls) clobber every pool register, so a value whose interval strictly
//! crosses a call position is marked `needs_stack`.

use adaptvm_dsl::ast::FoldFn;

use crate::error::JitError;
use crate::ir::{kind_of, LaneType, OutputSpec, Src, TraceIr, K};
use crate::regalloc::Interval;

/// A resolved operand: trace input, SSA value, or a constant already
/// converted to the lane domain's bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// Index into the widened input arrays.
    Input(u32),
    /// SSA value id.
    Value(u32),
    /// Lane-domain constant as raw bits (i64 bits or f64 bits).
    Const(u64),
}

/// One SSA operation. `b` is `None` for unary ops.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SsaOp {
    pub k: K,
    pub a: Operand,
    pub b: Option<Operand>,
    /// Destination value id.
    pub dst: u32,
    /// Lowered to an `extern "C"` helper call (clobbers pool registers).
    pub calls: bool,
}

/// One fold accumulator update.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SsaFold {
    /// Fold cell index (declaration order of `Fold` outputs).
    pub slot: u32,
    pub f: FoldFn,
    pub src: Operand,
    /// Accumulate only lanes passing the filter.
    pub masked: bool,
}

/// The SSA form of a trace, ready for allocation + emission.
#[derive(Debug, Clone)]
pub(crate) struct SsaProgram {
    pub lane: LaneType,
    /// Pre ops followed by post ops.
    pub ops: Vec<SsaOp>,
    /// `ops[..pre_len]` are unguarded; the filter sits between.
    pub pre_len: usize,
    pub filter: Option<(K, Operand, Operand)>,
    /// Dense array outputs: (array slot, per-lane source).
    pub dense: Vec<(u32, Operand)>,
    /// Compacted array outputs (emitted only for passing lanes).
    pub compact: Vec<(u32, Operand)>,
    /// Number of selection-vector outputs.
    pub sel_count: u32,
    pub folds: Vec<SsaFold>,
    /// Live interval per value id.
    pub intervals: Vec<Interval>,
}

/// Ops the emitter lowers without a second operand.
fn is_unary(k: K) -> bool {
    matches!(
        k,
        K::Neg
            | K::Abs
            | K::Sqrt
            | K::Not
            | K::Hash
            | K::CastI8
            | K::CastI16
            | K::CastI32
            | K::CastBool
            | K::Ident
    )
}

/// Ops lowered to helper calls in the given lane domain (exact Rust
/// semantics are cheaper to call than to re-encode: saturating casts,
/// `fmod`, NaN-aware min/max, trapping-free integer division).
fn is_call(lane: LaneType, k: K) -> bool {
    match lane {
        LaneType::I64 => matches!(k, K::Div | K::Rem),
        LaneType::F64 => matches!(
            k,
            K::Rem | K::Min | K::Max | K::CastI8 | K::CastI16 | K::CastI32
        ),
    }
}

/// Same domain restrictions as [`crate::ir`]'s `LaneNum::supports`.
fn supports(lane: LaneType, k: K) -> bool {
    match lane {
        LaneType::I64 => k != K::Sqrt,
        LaneType::F64 => k != K::Hash,
    }
}

struct Builder {
    lane: LaneType,
    n_inputs: usize,
    /// Trace register -> current value id.
    reg_map: Vec<Option<u32>>,
    /// Definition position per value.
    defs: Vec<u32>,
    /// Last-use position per value.
    ends: Vec<u32>,
}

impl Builder {
    fn resolve(&mut self, src: &Src, pos: u32) -> Result<Operand, JitError> {
        Ok(match src {
            Src::Input(k) => {
                if *k >= self.n_inputs {
                    return Err(JitError::Unresolved(format!("input #{k} out of range")));
                }
                Operand::Input(*k as u32)
            }
            Src::Reg(r) => {
                let v = self.reg_map.get(*r).copied().flatten().ok_or_else(|| {
                    JitError::Unsupported(format!("native: register #{r} read before write"))
                })?;
                self.ends[v as usize] = self.ends[v as usize].max(pos);
                Operand::Value(v)
            }
            Src::ConstI(v) => Operand::Const(match self.lane {
                LaneType::I64 => *v as u64,
                LaneType::F64 => (*v as f64).to_bits(),
            }),
            Src::ConstF(v) => Operand::Const(match self.lane {
                LaneType::I64 => (*v as i64) as u64,
                LaneType::F64 => v.to_bits(),
            }),
        })
    }

    fn op(&mut self, op: &crate::ir::TraceOp, pos: u32) -> Result<SsaOp, JitError> {
        let k = kind_of(op.op)?;
        if !supports(self.lane, k) {
            return Err(JitError::Unsupported(format!(
                "native: {:?} in this lane domain",
                op.op
            )));
        }
        let first = op
            .args
            .first()
            .ok_or_else(|| JitError::Unresolved("native: op with no operands".into()))?;
        let a = self.resolve(first, pos)?;
        let b = if is_unary(k) {
            None
        } else {
            // Missing second operands pack as the lane default, whose bit
            // pattern is 0 in both domains.
            Some(match op.args.get(1) {
                Some(s) => self.resolve(s, pos)?,
                None => Operand::Const(0),
            })
        };
        if op.dst >= self.reg_map.len() {
            return Err(JitError::Unresolved(format!(
                "destination register #{} out of range",
                op.dst
            )));
        }
        let dst = self.defs.len() as u32;
        self.defs.push(pos);
        self.ends.push(pos);
        self.reg_map[op.dst] = Some(dst);
        Ok(SsaOp {
            k,
            a,
            b,
            dst,
            calls: is_call(self.lane, k),
        })
    }
}

/// Build the SSA form of `ir`, or explain why it is not natively
/// compilable.
pub(crate) fn build(ir: &TraceIr) -> Result<SsaProgram, JitError> {
    let pre_len = ir.pre_ops.len();
    let mut b = Builder {
        lane: ir.lane,
        n_inputs: ir.inputs.len(),
        reg_map: vec![None; ir.n_regs.max(1)],
        defs: Vec::new(),
        ends: Vec::new(),
    };
    let mut ops = Vec::with_capacity(pre_len + ir.post_ops.len());
    for (j, op) in ir.pre_ops.iter().enumerate() {
        ops.push(b.op(op, j as u32)?);
    }
    let filter = match &ir.filter {
        None => None,
        Some(fc) => {
            let k = kind_of(fc.op)?;
            if !matches!(k, K::Eq | K::Ne | K::Lt | K::Le | K::Gt | K::Ge) {
                return Err(JitError::Unsupported(format!("filter op {:?}", fc.op)));
            }
            let pos = pre_len as u32;
            Some((k, b.resolve(&fc.lhs, pos)?, b.resolve(&fc.rhs, pos)?))
        }
    };
    for (j, op) in ir.post_ops.iter().enumerate() {
        ops.push(b.op(op, (pre_len + 1 + j) as u32)?);
    }
    let emit_pos = ops.len() as u32 + 2;

    let mut dense = Vec::new();
    let mut compact = Vec::new();
    let mut folds = Vec::new();
    let (mut arr_slot, mut sel_count, mut fold_slot) = (0u32, 0u32, 0u32);
    for o in &ir.outputs {
        match o {
            OutputSpec::Array { src, compacted, .. } => {
                let s = b.resolve(src, emit_pos)?;
                if *compacted {
                    compact.push((arr_slot, s));
                } else {
                    dense.push((arr_slot, s));
                }
                arr_slot += 1;
            }
            OutputSpec::Sel { .. } => sel_count += 1,
            OutputSpec::Fold {
                f, src, guarded, ..
            } => {
                if !matches!(f, FoldFn::Sum | FoldFn::Min | FoldFn::Max | FoldFn::Count) {
                    return Err(JitError::Unsupported(format!("fold {f:?} in trace")));
                }
                folds.push(SsaFold {
                    slot: fold_slot,
                    f: *f,
                    src: b.resolve(src, emit_pos)?,
                    // `run_blocks` masks a fold only when a filter exists
                    // AND the fold is guarded; native must match exactly.
                    masked: ir.filter.is_some() && *guarded,
                });
                fold_slot += 1;
            }
        }
    }

    // Live intervals + call-crossing analysis.
    let call_sites: Vec<u32> = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.calls)
        .map(|(idx, _)| {
            if idx < pre_len {
                idx as u32
            } else {
                idx as u32 + 1
            }
        })
        .collect();
    let intervals: Vec<Interval> = b
        .defs
        .iter()
        .zip(&b.ends)
        .map(|(&start, &end)| Interval {
            start,
            end,
            needs_stack: call_sites.iter().any(|&c| start < c && end > c),
        })
        .collect();

    Ok(SsaProgram {
        lane: ir.lane,
        ops,
        pre_len,
        filter,
        dense,
        compact,
        sel_count,
        folds,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FilterCheck, TraceOp};
    use adaptvm_dsl::ast::ScalarOp;
    use adaptvm_storage::scalar::{Scalar, ScalarType};

    fn map_ir() -> TraceIr {
        TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                TraceOp {
                    op: ScalarOp::Mul,
                    dst: 0,
                    args: vec![Src::Input(0), Src::ConstI(2)],
                },
                TraceOp {
                    op: ScalarOp::Add,
                    dst: 1,
                    args: vec![Src::Reg(0), Src::ConstI(3)],
                },
            ],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "out".into(),
                src: Src::Reg(1),
                compacted: false,
                out_ty: ScalarType::I64,
            }],
        }
    }

    #[test]
    fn renames_registers_to_values() {
        let p = build(&map_ir()).unwrap();
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.ops[0].dst, 0);
        assert_eq!(p.ops[1].dst, 1);
        assert_eq!(p.ops[1].a, Operand::Value(0));
        assert_eq!(p.dense, vec![(0, Operand::Value(1))]);
        // v0 defined at 0, last used at 1; v1 used by the emit stage.
        assert_eq!(p.intervals[0].start, 0);
        assert_eq!(p.intervals[0].end, 1);
        assert_eq!(p.intervals[1].end, p.ops.len() as u32 + 2);
    }

    #[test]
    fn rejects_read_before_write() {
        let mut ir = map_ir();
        ir.pre_ops[0].args[0] = Src::Reg(1); // reads r1 before any write
        assert!(matches!(
            build(&ir),
            Err(JitError::Unsupported(m)) if m.contains("read before write")
        ));
    }

    #[test]
    fn rewrites_of_a_register_get_fresh_values() {
        let mut ir = map_ir();
        ir.pre_ops[1].dst = 0; // r0 written twice
        ir.outputs = vec![OutputSpec::Array {
            name: "out".into(),
            src: Src::Reg(0),
            compacted: false,
            out_ty: ScalarType::I64,
        }];
        let p = build(&ir).unwrap();
        // The output reads the SECOND definition of r0.
        assert_eq!(p.dense[0].1, Operand::Value(1));
    }

    #[test]
    fn constants_are_converted_to_lane_bits() {
        let mut ir = map_ir();
        ir.lane = LaneType::F64;
        let p = build(&ir).unwrap();
        assert_eq!(p.ops[0].b, Some(Operand::Const(2.0f64.to_bits())));
    }

    #[test]
    fn call_crossing_values_are_stack_marked() {
        // v0 = x*2 ; v1 = x/3 (helper call) ; out = v0+v1: v0 crosses the
        // call, the call's own operand/result do not.
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 3,
            pre_ops: vec![
                TraceOp {
                    op: ScalarOp::Mul,
                    dst: 0,
                    args: vec![Src::Input(0), Src::ConstI(2)],
                },
                TraceOp {
                    op: ScalarOp::Div,
                    dst: 1,
                    args: vec![Src::Input(0), Src::ConstI(3)],
                },
                TraceOp {
                    op: ScalarOp::Add,
                    dst: 2,
                    args: vec![Src::Reg(0), Src::Reg(1)],
                },
            ],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "out".into(),
                src: Src::Reg(2),
                compacted: false,
                out_ty: ScalarType::I64,
            }],
        };
        let p = build(&ir).unwrap();
        assert!(p.ops[1].calls);
        assert!(p.intervals[0].needs_stack, "{:?}", p.intervals);
        assert!(!p.intervals[1].needs_stack);
        assert!(!p.intervals[2].needs_stack);
    }

    #[test]
    fn guarded_folds_are_masked_only_with_a_filter() {
        let mut ir = map_ir();
        ir.outputs.push(OutputSpec::Fold {
            name: "s".into(),
            f: FoldFn::Sum,
            init: Scalar::I64(0),
            src: Src::Reg(1),
            guarded: true,
        });
        // No filter: the guarded fold still accumulates every lane.
        let p = build(&ir).unwrap();
        assert!(!p.folds[0].masked);
        ir.filter = Some(FilterCheck {
            op: ScalarOp::Gt,
            lhs: Src::Reg(0),
            rhs: Src::ConstI(0),
        });
        let p = build(&ir).unwrap();
        assert!(p.folds[0].masked);
    }

    #[test]
    fn rejects_unsupported_domain_ops() {
        let mut ir = map_ir();
        ir.pre_ops[0].op = ScalarOp::Sqrt;
        ir.pre_ops[0].args = vec![Src::Input(0)];
        assert!(build(&ir).is_err());
    }
}
