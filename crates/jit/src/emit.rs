//! x86-64 machine-code emission for the native backend.
//!
//! This module is pure byte generation — it never executes anything —
//! so it compiles and unit-tests on every host; only [`crate::exec`]
//! is architecture-gated.
//!
//! ## Register plan
//!
//! Fixed (callee-saved, live for the whole function):
//!
//! | reg | role |
//! |-----|------|
//! | r13 | `NativeCtx` pointer |
//! | rbx | lane index `i` |
//! | r12 | lane count `n` |
//! | r14 | filter pass flag (0/1) |
//! | r15 | remaining guard budget |
//!
//! Scratch (never allocated): rax, rcx, r10, r11, xmm0, xmm1.
//! Allocatable pools: GPRs {rdx, rsi, rdi, r8, r9} for i64 lanes,
//! xmm2..xmm15 for f64 lanes — all caller-saved, which is why
//! [`crate::ssa`] stack-forces values that live across helper calls.
//!
//! Every op follows the same uniform shape — load operands into scratch,
//! compute into scratch, store to the value's allocated location — so
//! correctness does not depend on which `Loc` the allocator picked.
//!
//! ## ABI & frame
//!
//! The emitted function is `extern "C" fn(*mut NativeCtx) -> i64`
//! (SysV64: ctx in rdi, status in rax — 0 ok, 1 guard budget exhausted,
//! 2 output capacity exceeded). The prologue pushes 6 callee-saved
//! registers and reserves `8*slots` bytes (padded so rsp is 16-aligned
//! at helper-call sites). Helper arguments go through rdi/rsi (ints) or
//! stay in xmm0/xmm1 (floats); results return in rax/xmm0.

use crate::ir::{LaneType, K};
use crate::regalloc::{Allocation, Loc};
use crate::ssa::{Operand, SsaFold, SsaProgram};
use adaptvm_dsl::ast::FoldFn;

// ---------------------------------------------------------------------
// NativeCtx field offsets (struct defined in `exec`; a test there pins
// these against `mem::offset_of!`).

pub(crate) const CTX_INPUTS: i32 = 0;
pub(crate) const CTX_N: i32 = 8;
pub(crate) const CTX_ARR_PTRS: i32 = 16;
pub(crate) const CTX_ARR_COUNTS: i32 = 24;
pub(crate) const CTX_ARR_CAP: i32 = 32;
pub(crate) const CTX_SEL_PTRS: i32 = 40;
pub(crate) const CTX_SEL_COUNTS: i32 = 48;
pub(crate) const CTX_FOLDS: i32 = 56;
pub(crate) const CTX_BUDGET: i32 = 64;

/// Addresses of the `extern "C"` helper functions (provided by `exec`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Helpers {
    pub i64_div: u64,
    pub i64_rem: u64,
    pub f64_rem: u64,
    pub f64_min: u64,
    pub f64_max: u64,
    pub f64_cast_i8: u64,
    pub f64_cast_i16: u64,
    pub f64_cast_i32: u64,
}

// ---------------------------------------------------------------------
// GPR numbers.

const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;
const RBX: u8 = 3;
const RSP: u8 = 4;
const RBP: u8 = 5;
const RSI: u8 = 6;
const RDI: u8 = 7;
const R8: u8 = 8;
const R9: u8 = 9;
const R10: u8 = 10;
const R11: u8 = 11;
const R12: u8 = 12;
const R13: u8 = 13;
const R14: u8 = 14;
const R15: u8 = 15;

/// Allocatable GPR pool for i64 lanes (index = abstract pool register).
const GPR_POOL: [u8; 5] = [RDX, RSI, RDI, R8, R9];
/// f64 pool register `r` is physical xmm `2 + r`.
const XMM_BASE: u8 = 2;
/// Pool sizes handed to the allocator.
pub(crate) const GPR_POOL_SIZE: u8 = GPR_POOL.len() as u8;
pub(crate) const XMM_POOL_SIZE: u8 = 14;

/// x86 condition codes (the low nibble of the 0F 9x/4x/8x opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cc {
    Ae = 3,
    E = 4,
    Ne = 5,
    Be = 6,
    A = 7,
    S = 8,
    P = 10,
    Np = 11,
    L = 12,
    Ge = 13,
    Le = 14,
    G = 15,
}

// ---------------------------------------------------------------------
// Assembler.

#[derive(Debug, Clone, Copy)]
struct Label(usize);

struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    /// (patch position of the rel32, label index).
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    fn new() -> Asm {
        Asm {
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
    }

    fn finish(mut self) -> Vec<u8> {
        for (pos, label) in self.fixups {
            let target = self.labels[label].expect("unbound label");
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.code
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }

    fn i32(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix if any bit is needed.
    fn rex(&mut self, w: bool, reg: u8, index: u8, base: u8) {
        let r = (reg >> 3) & 1;
        let x = (index >> 3) & 1;
        let b = (base >> 3) & 1;
        if w || r != 0 || x != 0 || b != 0 {
            self.u8(0x40 | (u8::from(w) << 3) | (r << 2) | (x << 1) | b);
        }
    }

    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.u8((md << 6) | ((reg & 7) << 3) | (rm & 7));
    }

    /// `prefix? REX opcode… modrm(reg, rm-direct)`.
    fn rr(&mut self, pfx: Option<u8>, w: bool, opc: &[u8], reg: u8, rm: u8) {
        if let Some(p) = pfx {
            self.u8(p);
        }
        self.rex(w, reg, 0, rm);
        self.code.extend_from_slice(opc);
        self.modrm(3, reg, rm);
    }

    /// `prefix? REX opcode… modrm(reg, [base+disp32])` (always disp32; SIB
    /// when the base is rsp/r12).
    fn rm(&mut self, pfx: Option<u8>, w: bool, opc: &[u8], reg: u8, base: u8, disp: i32) {
        if let Some(p) = pfx {
            self.u8(p);
        }
        self.rex(w, reg, 0, base);
        self.code.extend_from_slice(opc);
        if base & 7 == 4 {
            self.modrm(2, reg, 4);
            self.u8(0x24); // SIB: no index, base rsp/r12
        } else {
            self.modrm(2, reg, base);
        }
        self.i32(disp);
    }

    /// `prefix? REX opcode… modrm(reg, [base+index<<scale])` with disp32 0.
    #[allow(clippy::too_many_arguments)]
    fn rms(
        &mut self,
        pfx: Option<u8>,
        w: bool,
        opc: &[u8],
        reg: u8,
        base: u8,
        index: u8,
        scale: u8,
    ) {
        debug_assert_ne!(index & 7, 4, "rsp cannot be an index");
        if let Some(p) = pfx {
            self.u8(p);
        }
        self.rex(w, reg, index, base);
        self.code.extend_from_slice(opc);
        self.modrm(2, reg, 4);
        self.u8((scale << 6) | ((index & 7) << 3) | (base & 7));
        self.i32(0);
    }

    // --- GPR instructions ------------------------------------------

    /// mov dst, src (64-bit).
    fn mov_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x89], src, dst);
    }

    /// movabs dst, imm64.
    fn mov_ri(&mut self, dst: u8, imm: u64) {
        self.rex(true, 0, 0, dst);
        self.u8(0xB8 + (dst & 7));
        self.u64(imm);
    }

    /// mov dst, [base+disp].
    fn mov_load(&mut self, dst: u8, base: u8, disp: i32) {
        self.rm(None, true, &[0x8B], dst, base, disp);
    }

    /// mov [base+disp], src.
    fn mov_store(&mut self, base: u8, disp: i32, src: u8) {
        self.rm(None, true, &[0x89], src, base, disp);
    }

    /// mov dst, [base+index<<scale].
    fn mov_load_idx(&mut self, dst: u8, base: u8, index: u8, scale: u8) {
        self.rms(None, true, &[0x8B], dst, base, index, scale);
    }

    /// mov [base+index<<scale], src (64-bit).
    fn mov_store_idx(&mut self, base: u8, index: u8, scale: u8, src: u8) {
        self.rms(None, true, &[0x89], src, base, index, scale);
    }

    /// mov [base+index<<scale], src32 (32-bit store).
    fn mov_store32_idx(&mut self, base: u8, index: u8, scale: u8, src: u8) {
        self.rms(None, false, &[0x89], src, base, index, scale);
    }

    fn add_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x01], src, dst);
    }

    fn sub_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x29], src, dst);
    }

    fn and_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x21], src, dst);
    }

    fn or_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x09], src, dst);
    }

    fn xor_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x31], src, dst);
    }

    /// cmp a, b (sets flags for a ? b).
    fn cmp_rr(&mut self, a: u8, b: u8) {
        self.rr(None, true, &[0x39], b, a);
    }

    /// cmp a, [base+disp].
    fn cmp_mem(&mut self, a: u8, base: u8, disp: i32) {
        self.rm(None, true, &[0x3B], a, base, disp);
    }

    fn test_rr(&mut self, a: u8, b: u8) {
        self.rr(None, true, &[0x85], b, a);
    }

    fn imul_rr(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x0F, 0xAF], dst, src);
    }

    fn neg(&mut self, r: u8) {
        self.rr(None, true, &[0xF7], 3, r);
    }

    fn sar_imm(&mut self, r: u8, imm: u8) {
        self.rr(None, true, &[0xC1], 7, r);
        self.u8(imm);
    }

    fn add_imm(&mut self, r: u8, imm: i32) {
        self.rr(None, true, &[0x81], 0, r);
        self.i32(imm);
    }

    fn sub_imm(&mut self, r: u8, imm: i32) {
        self.rr(None, true, &[0x81], 5, r);
        self.i32(imm);
    }

    fn cmov(&mut self, cc: Cc, dst: u8, src: u8) {
        self.rr(None, true, &[0x0F, 0x40 + cc as u8], dst, src);
    }

    /// setcc on an 8-bit register; restricted to al (0) / cl (1) so no
    /// REX is needed and no high-byte aliasing can occur.
    fn setcc(&mut self, cc: Cc, rm8: u8) {
        debug_assert!(rm8 <= 1, "setcc restricted to al/cl");
        self.u8(0x0F);
        self.u8(0x90 + cc as u8);
        self.modrm(3, 0, rm8);
    }

    /// movzx dst64, src8 (src restricted to al/cl).
    fn movzx8(&mut self, dst: u8, src8: u8) {
        debug_assert!(src8 <= 1);
        self.rr(None, true, &[0x0F, 0xB6], dst, src8);
    }

    /// movsx dst64, src8 (al/cl).
    fn movsx8(&mut self, dst: u8, src8: u8) {
        debug_assert!(src8 <= 1);
        self.rr(None, true, &[0x0F, 0xBE], dst, src8);
    }

    /// movsx dst64, src16.
    fn movsx16(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x0F, 0xBF], dst, src);
    }

    /// movsxd dst64, src32.
    fn movsxd(&mut self, dst: u8, src: u8) {
        self.rr(None, true, &[0x63], dst, src);
    }

    fn push(&mut self, r: u8) {
        if r >= 8 {
            self.u8(0x41);
        }
        self.u8(0x50 + (r & 7));
    }

    fn pop(&mut self, r: u8) {
        if r >= 8 {
            self.u8(0x41);
        }
        self.u8(0x58 + (r & 7));
    }

    fn call_r(&mut self, r: u8) {
        if r >= 8 {
            self.u8(0x41);
        }
        self.u8(0xFF);
        self.modrm(3, 2, r);
    }

    fn ret(&mut self) {
        self.u8(0xC3);
    }

    fn jcc(&mut self, cc: Cc, l: Label) {
        self.u8(0x0F);
        self.u8(0x80 + cc as u8);
        self.fixups.push((self.code.len(), l.0));
        self.i32(0);
    }

    fn jmp(&mut self, l: Label) {
        self.u8(0xE9);
        self.fixups.push((self.code.len(), l.0));
        self.i32(0);
    }

    // --- SSE2 scalar-double instructions ---------------------------

    /// movsd dst, src (register).
    fn movsd_rr(&mut self, dst: u8, src: u8) {
        self.rr(Some(0xF2), false, &[0x0F, 0x10], dst, src);
    }

    fn movsd_load(&mut self, dst: u8, base: u8, disp: i32) {
        self.rm(Some(0xF2), false, &[0x0F, 0x10], dst, base, disp);
    }

    fn movsd_store(&mut self, base: u8, disp: i32, src: u8) {
        self.rm(Some(0xF2), false, &[0x0F, 0x11], src, base, disp);
    }

    fn movsd_load_idx(&mut self, dst: u8, base: u8, index: u8, scale: u8) {
        self.rms(Some(0xF2), false, &[0x0F, 0x10], dst, base, index, scale);
    }

    fn movsd_store_idx(&mut self, base: u8, index: u8, scale: u8, src: u8) {
        self.rms(Some(0xF2), false, &[0x0F, 0x11], src, base, index, scale);
    }

    /// addsd/subsd/mulsd/divsd/sqrtsd dst, src via the opcode byte.
    fn sse_arith(&mut self, opc: u8, dst: u8, src: u8) {
        self.rr(Some(0xF2), false, &[0x0F, opc], dst, src);
    }

    fn ucomisd(&mut self, a: u8, b: u8) {
        self.rr(Some(0x66), false, &[0x0F, 0x2E], a, b);
    }

    fn xorpd(&mut self, dst: u8, src: u8) {
        self.rr(Some(0x66), false, &[0x0F, 0x57], dst, src);
    }

    fn andpd(&mut self, dst: u8, src: u8) {
        self.rr(Some(0x66), false, &[0x0F, 0x54], dst, src);
    }

    /// movq xmm, r64.
    fn movq_xr(&mut self, x: u8, r: u8) {
        self.rr(Some(0x66), true, &[0x0F, 0x6E], x, r);
    }

    /// movq r64, xmm.
    fn movq_rx(&mut self, r: u8, x: u8) {
        self.rr(Some(0x66), true, &[0x0F, 0x7E], x, r);
    }

    /// cvtsi2sd xmm, r64.
    fn cvtsi2sd(&mut self, x: u8, r: u8) {
        self.rr(Some(0xF2), true, &[0x0F, 0x2A], x, r);
    }
}

// ---------------------------------------------------------------------
// Trace codegen.

const ABS_MASK: u64 = 0x7fff_ffff_ffff_ffff;
const SIGN_BIT: u64 = 0x8000_0000_0000_0000;
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

struct Gen<'a> {
    a: Asm,
    p: &'a SsaProgram,
    locs: &'a [Loc],
    h: &'a Helpers,
    deopt_cap: Label,
}

impl Gen<'_> {
    /// Load an i64 operand into scratch GPR `g` (clobbers r10 for inputs).
    fn load_i(&mut self, op: Operand, g: u8) {
        match op {
            Operand::Input(k) => {
                self.a.mov_load(R10, R13, CTX_INPUTS);
                self.a.mov_load(R10, R10, 8 * k as i32);
                self.a.mov_load_idx(g, R10, RBX, 3);
            }
            Operand::Value(v) => match self.locs[v as usize] {
                Loc::Reg(r) => self.a.mov_rr(g, GPR_POOL[r as usize]),
                Loc::Stack(s) => self.a.mov_load(g, RSP, 8 * s as i32),
            },
            Operand::Const(bits) => self.a.mov_ri(g, bits),
        }
    }

    /// Load an f64 operand into scratch xmm `x` (clobbers rax/r10).
    fn load_f(&mut self, op: Operand, x: u8) {
        match op {
            Operand::Input(k) => {
                self.a.mov_load(R10, R13, CTX_INPUTS);
                self.a.mov_load(R10, R10, 8 * k as i32);
                self.a.movsd_load_idx(x, R10, RBX, 3);
            }
            Operand::Value(v) => match self.locs[v as usize] {
                Loc::Reg(r) => self.a.movsd_rr(x, XMM_BASE + r),
                Loc::Stack(s) => self.a.movsd_load(x, RSP, 8 * s as i32),
            },
            Operand::Const(bits) => {
                self.a.mov_ri(RAX, bits);
                self.a.movq_xr(x, RAX);
            }
        }
    }

    /// Store rax to value `v`'s location.
    fn store_i(&mut self, v: u32) {
        match self.locs[v as usize] {
            Loc::Reg(r) => self.a.mov_rr(GPR_POOL[r as usize], RAX),
            Loc::Stack(s) => self.a.mov_store(RSP, 8 * s as i32, RAX),
        }
    }

    /// Store xmm0 to value `v`'s location.
    fn store_f(&mut self, v: u32) {
        match self.locs[v as usize] {
            Loc::Reg(r) => self.a.movsd_rr(XMM_BASE + r, 0),
            Loc::Stack(s) => self.a.movsd_store(RSP, 8 * s as i32, 0),
        }
    }

    fn call_helper(&mut self, addr: u64) {
        self.a.mov_ri(RAX, addr);
        self.a.call_r(RAX);
    }

    /// i64 comparison result (rax vs rcx) into rax as 0/1.
    fn cmp_i_flag(&mut self, k: K) {
        let cc = match k {
            K::Eq => Cc::E,
            K::Ne => Cc::Ne,
            K::Lt => Cc::L,
            K::Le => Cc::Le,
            K::Gt => Cc::G,
            K::Ge => Cc::Ge,
            _ => unreachable!("validated comparison"),
        };
        self.a.cmp_rr(RAX, RCX);
        self.a.setcc(cc, 0);
        self.a.movzx8(RAX, 0);
    }

    /// f64 comparison result (xmm0 vs xmm1) into rax as 0/1, with Rust's
    /// NaN semantics (any unordered comparison except `Ne` is false).
    fn cmp_f_flag(&mut self, k: K) {
        match k {
            // a<b ⇔ b>a: ucomisd b,a then `a` (CF=0 and ZF=0); unordered
            // sets CF so both the strict and non-strict forms read false.
            K::Lt => {
                self.a.ucomisd(1, 0);
                self.a.setcc(Cc::A, 0);
                self.a.movzx8(RAX, 0);
            }
            K::Le => {
                self.a.ucomisd(1, 0);
                self.a.setcc(Cc::Ae, 0);
                self.a.movzx8(RAX, 0);
            }
            K::Gt => {
                self.a.ucomisd(0, 1);
                self.a.setcc(Cc::A, 0);
                self.a.movzx8(RAX, 0);
            }
            K::Ge => {
                self.a.ucomisd(0, 1);
                self.a.setcc(Cc::Ae, 0);
                self.a.movzx8(RAX, 0);
            }
            // Equality needs the parity bit: unordered sets ZF *and* PF.
            K::Eq => {
                self.a.ucomisd(0, 1);
                self.a.setcc(Cc::E, 0);
                self.a.setcc(Cc::Np, 1);
                self.a.movzx8(RAX, 0);
                self.a.movzx8(RCX, 1);
                self.a.and_rr(RAX, RCX);
            }
            K::Ne => {
                self.a.ucomisd(0, 1);
                self.a.setcc(Cc::Ne, 0);
                self.a.setcc(Cc::P, 1);
                self.a.movzx8(RAX, 0);
                self.a.movzx8(RCX, 1);
                self.a.or_rr(RAX, RCX);
            }
            _ => unreachable!("validated comparison"),
        }
    }

    /// One i64 op: operands → rax/rcx, result → rax, stored to dst.
    fn op_i(&mut self, op: &crate::ssa::SsaOp) {
        self.load_i(op.a, RAX);
        if let Some(b) = op.b {
            self.load_i(b, RCX);
        }
        match op.k {
            K::Add => self.a.add_rr(RAX, RCX),
            K::Sub => self.a.sub_rr(RAX, RCX),
            K::Mul => self.a.imul_rr(RAX, RCX),
            K::Div | K::Rem => {
                self.a.mov_rr(RDI, RAX);
                self.a.mov_rr(RSI, RCX);
                let addr = if op.k == K::Div {
                    self.h.i64_div
                } else {
                    self.h.i64_rem
                };
                self.call_helper(addr);
            }
            K::Min => {
                self.a.cmp_rr(RAX, RCX);
                self.a.cmov(Cc::G, RAX, RCX);
            }
            K::Max => {
                self.a.cmp_rr(RAX, RCX);
                self.a.cmov(Cc::L, RAX, RCX);
            }
            K::Neg => self.a.neg(RAX),
            K::Abs => {
                // Branch-free wrapping_abs (i64::MIN stays i64::MIN).
                self.a.mov_rr(RCX, RAX);
                self.a.sar_imm(RCX, 63);
                self.a.xor_rr(RAX, RCX);
                self.a.sub_rr(RAX, RCX);
            }
            K::Eq | K::Ne | K::Lt | K::Le | K::Gt | K::Ge => self.cmp_i_flag(op.k),
            K::And | K::Or => {
                self.a.test_rr(RCX, RCX);
                self.a.setcc(Cc::Ne, 1);
                self.a.test_rr(RAX, RAX);
                self.a.setcc(Cc::Ne, 0);
                self.a.movzx8(RAX, 0);
                self.a.movzx8(RCX, 1);
                if op.k == K::And {
                    self.a.and_rr(RAX, RCX);
                } else {
                    self.a.or_rr(RAX, RCX);
                }
            }
            K::Not => {
                self.a.test_rr(RAX, RAX);
                self.a.setcc(Cc::E, 0);
                self.a.movzx8(RAX, 0);
            }
            K::CastBool => {
                self.a.test_rr(RAX, RAX);
                self.a.setcc(Cc::Ne, 0);
                self.a.movzx8(RAX, 0);
            }
            K::Hash => {
                self.a.mov_ri(R10, HASH_MUL);
                self.a.imul_rr(RAX, R10);
            }
            K::CastI8 => self.a.movsx8(RAX, 0),
            K::CastI16 => self.a.movsx16(RAX, RAX),
            K::CastI32 => self.a.movsxd(RAX, RAX),
            K::Ident => {}
            K::Sqrt => unreachable!("rejected by ssa::build"),
        }
        self.store_i(op.dst);
    }

    /// One f64 op: operands → xmm0/xmm1, result → xmm0, stored to dst.
    fn op_f(&mut self, op: &crate::ssa::SsaOp) {
        self.load_f(op.a, 0);
        if let Some(b) = op.b {
            self.load_f(b, 1);
        }
        match op.k {
            K::Add => self.a.sse_arith(0x58, 0, 1),
            K::Sub => self.a.sse_arith(0x5C, 0, 1),
            K::Mul => self.a.sse_arith(0x59, 0, 1),
            K::Div => self.a.sse_arith(0x5E, 0, 1),
            K::Sqrt => self.a.sse_arith(0x51, 0, 0),
            K::Rem => self.call_helper(self.h.f64_rem),
            K::Min => self.call_helper(self.h.f64_min),
            K::Max => self.call_helper(self.h.f64_max),
            K::CastI8 => self.call_helper(self.h.f64_cast_i8),
            K::CastI16 => self.call_helper(self.h.f64_cast_i16),
            K::CastI32 => self.call_helper(self.h.f64_cast_i32),
            K::Neg => {
                self.a.mov_ri(RAX, SIGN_BIT);
                self.a.movq_xr(1, RAX);
                self.a.xorpd(0, 1);
            }
            K::Abs => {
                self.a.mov_ri(RAX, ABS_MASK);
                self.a.movq_xr(1, RAX);
                self.a.andpd(0, 1);
            }
            K::Eq | K::Ne | K::Lt | K::Le | K::Gt | K::Ge => {
                self.cmp_f_flag(op.k);
                self.a.cvtsi2sd(0, RAX);
            }
            K::And | K::Or => {
                // Truthiness is `bits & !sign != 0` — true for NaN, false
                // for ±0.0, exactly `x != 0.0`.
                self.a.movq_rx(RAX, 0);
                self.a.movq_rx(RCX, 1);
                self.a.mov_ri(R10, ABS_MASK);
                self.a.and_rr(RAX, R10);
                self.a.setcc(Cc::Ne, 0);
                self.a.and_rr(RCX, R10);
                self.a.setcc(Cc::Ne, 1);
                self.a.movzx8(RAX, 0);
                self.a.movzx8(RCX, 1);
                if op.k == K::And {
                    self.a.and_rr(RAX, RCX);
                } else {
                    self.a.or_rr(RAX, RCX);
                }
                self.a.cvtsi2sd(0, RAX);
            }
            K::Not | K::CastBool => {
                self.a.movq_rx(RAX, 0);
                self.a.mov_ri(R10, ABS_MASK);
                self.a.and_rr(RAX, R10);
                self.a.setcc(if op.k == K::Not { Cc::E } else { Cc::Ne }, 0);
                self.a.movzx8(RAX, 0);
                self.a.cvtsi2sd(0, RAX);
            }
            K::Ident => {}
            K::Hash => unreachable!("rejected by ssa::build"),
        }
        self.store_f(op.dst);
    }

    fn emit_filter(&mut self) {
        let Some((k, lhs, rhs)) = self.p.filter else {
            return;
        };
        match self.p.lane {
            LaneType::I64 => {
                self.load_i(lhs, RAX);
                self.load_i(rhs, RCX);
                self.cmp_i_flag(k);
            }
            LaneType::F64 => {
                self.load_f(lhs, 0);
                self.load_f(rhs, 1);
                self.cmp_f_flag(k);
            }
        }
        self.a.mov_rr(R14, RAX);
    }

    /// Append one element to array `slot`; the value is in rcx (i64) or
    /// xmm0 (f64). Deopts when the buffer is at capacity.
    fn array_push(&mut self, slot: u32) {
        let d = 8 * slot as i32;
        self.a.mov_load(R10, R13, CTX_ARR_COUNTS);
        self.a.mov_load(R11, R10, d);
        self.a.cmp_mem(R11, R13, CTX_ARR_CAP);
        let cap = self.deopt_cap;
        self.a.jcc(Cc::Ae, cap);
        self.a.mov_load(RAX, R13, CTX_ARR_PTRS);
        self.a.mov_load(RAX, RAX, d);
        match self.p.lane {
            LaneType::I64 => self.a.mov_store_idx(RAX, R11, 3, RCX),
            LaneType::F64 => self.a.movsd_store_idx(RAX, R11, 3, 0),
        }
        self.a.add_imm(R11, 1);
        self.a.mov_store(R10, d, R11);
    }

    fn emit_array(&mut self, slot: u32, src: Operand) {
        match self.p.lane {
            LaneType::I64 => self.load_i(src, RCX),
            LaneType::F64 => self.load_f(src, 0),
        }
        self.array_push(slot);
    }

    /// Append the lane index to selection vector `slot` (at most one push
    /// per lane, so the n-capacity buffer can never overflow).
    fn emit_sel(&mut self, slot: u32) {
        let d = 8 * slot as i32;
        self.a.mov_load(R10, R13, CTX_SEL_COUNTS);
        self.a.mov_load(R11, R10, d);
        self.a.mov_load(RAX, R13, CTX_SEL_PTRS);
        self.a.mov_load(RAX, RAX, d);
        self.a.mov_store32_idx(RAX, R11, 2, RBX);
        self.a.add_imm(R11, 1);
        self.a.mov_store(R10, d, R11);
    }

    fn emit_fold(&mut self, f: &SsaFold) {
        let acc = 16 * f.slot as i32;
        let cnt = acc + 8;
        match (f.f, self.p.lane) {
            (FoldFn::Sum, LaneType::I64) => {
                self.load_i(f.src, RAX);
                if f.masked {
                    // Failing lanes contribute 0 (identical to the
                    // interpreter's branch-free select).
                    self.a.mov_ri(RCX, 0);
                    self.a.test_rr(R14, R14);
                    self.a.cmov(Cc::E, RAX, RCX);
                }
                self.a.mov_load(R10, R13, CTX_FOLDS);
                self.a.mov_load(RCX, R10, acc);
                self.a.add_rr(RCX, RAX);
                self.a.mov_store(R10, acc, RCX);
            }
            (FoldFn::Sum, LaneType::F64) => {
                self.load_f(f.src, 0);
                if f.masked {
                    // Failing lanes add +0.0 — NOT a skipped add: the
                    // interpreter always adds, which rewrites -0.0 sums.
                    let keep = self.a.new_label();
                    self.a.test_rr(R14, R14);
                    self.a.jcc(Cc::Ne, keep);
                    self.a.xorpd(0, 0);
                    self.a.bind(keep);
                }
                self.a.mov_load(R10, R13, CTX_FOLDS);
                self.a.movsd_load(1, R10, acc);
                self.a.sse_arith(0x58, 1, 0); // addsd xmm1, xmm0
                self.a.movsd_store(R10, acc, 1);
            }
            (FoldFn::Min | FoldFn::Max, LaneType::I64) => {
                let skip = self.a.new_label();
                if f.masked {
                    self.a.test_rr(R14, R14);
                    self.a.jcc(Cc::E, skip);
                }
                self.load_i(f.src, RAX);
                self.a.mov_load(R10, R13, CTX_FOLDS);
                self.a.mov_load(RCX, R10, acc);
                self.a.cmp_rr(RAX, RCX);
                let cc = if f.f == FoldFn::Min { Cc::Ge } else { Cc::Le };
                self.a.jcc(cc, skip);
                self.a.mov_store(R10, acc, RAX);
                self.a.bind(skip);
            }
            (FoldFn::Min | FoldFn::Max, LaneType::F64) => {
                let skip = self.a.new_label();
                if f.masked {
                    self.a.test_rr(R14, R14);
                    self.a.jcc(Cc::E, skip);
                }
                self.load_f(f.src, 0);
                self.a.mov_load(R10, R13, CTX_FOLDS);
                self.a.movsd_load(1, R10, acc);
                // Replace only on a strict ordered win — NaN never
                // replaces the accumulator (plain `<`/`>`, not fmin).
                if f.f == FoldFn::Min {
                    self.a.ucomisd(1, 0); // acc > v ⇔ v < acc
                } else {
                    self.a.ucomisd(0, 1); // v > acc
                }
                self.a.jcc(Cc::Be, skip);
                self.a.movsd_store(R10, acc, 0);
                self.a.bind(skip);
            }
            (FoldFn::Count, _) => {
                self.a.mov_load(R10, R13, CTX_FOLDS);
                self.a.mov_load(RCX, R10, cnt);
                if f.masked {
                    self.a.add_rr(RCX, R14);
                } else {
                    self.a.add_imm(RCX, 1);
                }
                self.a.mov_store(R10, cnt, RCX);
            }
            _ => unreachable!("fold kinds validated by ssa::build"),
        }
    }
}

/// Emit the whole trace loop; returns the raw machine code.
pub(crate) fn emit_trace(p: &SsaProgram, alloc: &Allocation, h: &Helpers) -> Vec<u8> {
    let mut a = Asm::new();
    let slots = alloc.stack_slots as i32;
    // 6 pushes leave rsp ≡ 8 (mod 16); pad the frame so helper-call
    // sites see a 16-aligned stack.
    let frame = if slots % 2 == 0 {
        8 * slots + 8
    } else {
        8 * slots
    };

    for r in [RBP, RBX, R12, R13, R14, R15] {
        a.push(r);
    }
    a.sub_imm(RSP, frame);
    a.mov_rr(R13, RDI);
    a.mov_load(R12, R13, CTX_N);
    a.mov_load(R15, R13, CTX_BUDGET);
    a.mov_ri(RBX, 0);

    let loop_top = a.new_label();
    let done = a.new_label();
    let deopt_budget = a.new_label();
    let deopt_cap = a.new_label();
    let epilogue = a.new_label();

    a.bind(loop_top);
    a.cmp_rr(RBX, R12);
    a.jcc(Cc::Ae, done);
    a.sub_imm(R15, 1);
    a.jcc(Cc::S, deopt_budget);

    let mut g = Gen {
        a,
        p,
        locs: &alloc.locs,
        h,
        deopt_cap,
    };
    // Body order mirrors the interpreter's `run_blocks` exactly:
    // pre → filter → post (unconditional) → dense → guarded
    // compact/sel → folds.
    for op in &p.ops[..p.pre_len] {
        match p.lane {
            LaneType::I64 => g.op_i(op),
            LaneType::F64 => g.op_f(op),
        }
    }
    g.emit_filter();
    for op in &p.ops[p.pre_len..] {
        match p.lane {
            LaneType::I64 => g.op_i(op),
            LaneType::F64 => g.op_f(op),
        }
    }
    for &(slot, src) in &p.dense {
        g.emit_array(slot, src);
    }
    let guarded = !p.compact.is_empty() || p.sel_count > 0;
    let skip_guard = g.a.new_label();
    if p.filter.is_some() && guarded {
        g.a.test_rr(R14, R14);
        g.a.jcc(Cc::E, skip_guard);
    }
    for &(slot, src) in &p.compact {
        g.emit_array(slot, src);
    }
    for slot in 0..p.sel_count {
        g.emit_sel(slot);
    }
    if p.filter.is_some() && guarded {
        g.a.bind(skip_guard);
    }
    for f in &p.folds {
        g.emit_fold(f);
    }
    let mut a = g.a;

    a.add_imm(RBX, 1);
    a.jmp(loop_top);

    a.bind(done);
    a.mov_ri(RAX, 0);
    a.jmp(epilogue);
    a.bind(deopt_budget);
    a.mov_ri(RAX, 1);
    a.jmp(epilogue);
    a.bind(deopt_cap);
    a.mov_ri(RAX, 2);
    a.bind(epilogue);
    a.add_imm(RSP, frame);
    for r in [R15, R14, R13, R12, RBX, RBP] {
        a.pop(r);
    }
    a.ret();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn gpr_encodings_match_reference() {
        assert_eq!(bytes(|a| a.mov_rr(R13, RDI)), [0x49, 0x89, 0xFD]);
        assert_eq!(
            bytes(|a| a.mov_load(R12, R13, 8)),
            [0x4D, 0x8B, 0xA5, 0x08, 0x00, 0x00, 0x00]
        );
        assert_eq!(
            bytes(|a| a.mov_store(RSP, 8, RAX)),
            [0x48, 0x89, 0x84, 0x24, 0x08, 0x00, 0x00, 0x00]
        );
        assert_eq!(bytes(|a| a.cmp_rr(RBX, R12)), [0x4C, 0x39, 0xE3]);
        assert_eq!(bytes(|a| a.imul_rr(RAX, R10)), [0x49, 0x0F, 0xAF, 0xC2]);
        assert_eq!(bytes(|a| a.neg(RAX)), [0x48, 0xF7, 0xD8]);
        assert_eq!(bytes(|a| a.sar_imm(RCX, 63)), [0x48, 0xC1, 0xF9, 0x3F]);
        assert_eq!(bytes(|a| a.cmov(Cc::G, RAX, RCX)), [0x48, 0x0F, 0x4F, 0xC1]);
        assert_eq!(bytes(|a| a.setcc(Cc::Ne, 0)), [0x0F, 0x95, 0xC0]);
        assert_eq!(bytes(|a| a.movzx8(RAX, 0)), [0x48, 0x0F, 0xB6, 0xC0]);
        assert_eq!(bytes(|a| a.movsxd(RAX, RAX)), [0x48, 0x63, 0xC0]);
        assert_eq!(bytes(|a| a.push(R12)), [0x41, 0x54]);
        assert_eq!(bytes(|a| a.pop(R15)), [0x41, 0x5F]);
        assert_eq!(bytes(|a| a.call_r(RAX)), [0xFF, 0xD0]);
        assert_eq!(
            bytes(|a| a.mov_load_idx(RAX, R10, RBX, 3)),
            [0x49, 0x8B, 0x84, 0xDA, 0x00, 0x00, 0x00, 0x00]
        );
        assert_eq!(
            bytes(|a| a.mov_store32_idx(RAX, R11, 2, RBX)),
            [0x42, 0x89, 0x9C, 0x98, 0x00, 0x00, 0x00, 0x00]
        );
    }

    #[test]
    fn sse_encodings_match_reference() {
        assert_eq!(bytes(|a| a.sse_arith(0x58, 0, 1)), [0xF2, 0x0F, 0x58, 0xC1]);
        assert_eq!(bytes(|a| a.ucomisd(0, 1)), [0x66, 0x0F, 0x2E, 0xC1]);
        assert_eq!(bytes(|a| a.movq_rx(RAX, 0)), [0x66, 0x48, 0x0F, 0x7E, 0xC0]);
        assert_eq!(bytes(|a| a.movq_xr(1, RAX)), [0x66, 0x48, 0x0F, 0x6E, 0xC8]);
        assert_eq!(
            bytes(|a| a.cvtsi2sd(0, RAX)),
            [0xF2, 0x48, 0x0F, 0x2A, 0xC0]
        );
        assert_eq!(bytes(|a| a.movsd_rr(2, 0)), [0xF2, 0x0F, 0x10, 0xD0]);
        assert_eq!(
            bytes(|a| a.movsd_load(3, RSP, 16)),
            [0xF2, 0x0F, 0x10, 0x9C, 0x24, 0x10, 0x00, 0x00, 0x00]
        );
        // High xmm registers need REX.R after the mandatory prefix.
        assert_eq!(bytes(|a| a.movsd_rr(9, 0)), [0xF2, 0x44, 0x0F, 0x10, 0xC8]);
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.new_label();
        let end = a.new_label();
        a.bind(top);
        a.jcc(Cc::E, end); // forward: over the jmp (5 bytes)
        a.jmp(top); // backward: -11 (6 + 5 bytes back to 0)
        a.bind(end);
        a.ret();
        let code = a.finish();
        assert_eq!(&code[2..6], &5i32.to_le_bytes());
        assert_eq!(&code[7..11], &(-11i32).to_le_bytes());
    }

    #[test]
    fn emitted_trace_is_nonempty_and_returns() {
        use crate::ir::{LaneType as Lt, OutputSpec, Src, TraceIr, TraceOp};
        use crate::regalloc::allocate;
        use adaptvm_dsl::ast::ScalarOp;
        use adaptvm_storage::scalar::ScalarType;
        let ir = TraceIr {
            lane: Lt::I64,
            inputs: vec!["x".into()],
            n_regs: 1,
            pre_ops: vec![TraceOp {
                op: ScalarOp::Mul,
                dst: 0,
                args: vec![Src::Input(0), Src::ConstI(2)],
            }],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "out".into(),
                src: Src::Reg(0),
                compacted: false,
                out_ty: ScalarType::I64,
            }],
        };
        let p = crate::ssa::build(&ir).unwrap();
        let alloc = allocate(&p.intervals, GPR_POOL_SIZE);
        let h = Helpers {
            i64_div: 0,
            i64_rem: 0,
            f64_rem: 0,
            f64_min: 0,
            f64_max: 0,
            f64_cast_i8: 0,
            f64_cast_i16: 0,
            f64_cast_i32: 0,
        };
        let code = emit_trace(&p, &alloc, &h);
        assert!(code.len() > 40);
        assert_eq!(*code.last().unwrap(), 0xC3, "ends in ret");
        assert_eq!(code[0], 0x55, "starts with push rbp");
    }
}
