//! JIT error type.

use std::fmt;

/// Errors produced by fragment building and compilation.
///
/// A `JitError` is *not* fatal for the VM: every error path falls back to
/// vectorized interpretation of the affected region (the paper's "the
/// remaining nodes can either be compiled or interpreted").
#[derive(Debug, Clone, PartialEq)]
pub enum JitError {
    /// The region contains an operation the trace executor cannot fuse
    /// (e.g. merge, gather, string ops).
    Unsupported(String),
    /// The region's types cannot be mapped onto one lane type.
    LaneConflict(String),
    /// The region references a variable the builder cannot resolve.
    Unresolved(String),
    /// Register budget exceeded (fragments this wide should have been
    /// stopped by the TLB heuristic).
    TooWide {
        /// Registers required.
        needed: usize,
        /// Register budget.
        budget: usize,
    },
    /// The compile server was shut down.
    ServerDown,
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::Unsupported(m) => write!(f, "unsupported fragment: {m}"),
            JitError::LaneConflict(m) => write!(f, "lane type conflict: {m}"),
            JitError::Unresolved(m) => write!(f, "unresolved variable: {m}"),
            JitError::TooWide { needed, budget } => {
                write!(f, "fragment needs {needed} registers, budget is {budget}")
            }
            JitError::ServerDown => write!(f, "compile server is down"),
        }
    }
}

impl std::error::Error for JitError {}
