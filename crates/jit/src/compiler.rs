//! The compiler: optimization + calibrated compile-cost model + background
//! compile server.
//!
//! §III-B: "The purpose of our partial compilation is to minimize
//! compilation effort (optimizer passes tend to take longer with an
//! increasing amount of code)". The [`CostModel`] reproduces that
//! superlinear behaviour — `base + per_op·n + per_op²·n²` — so the VM's
//! compile-or-interpret decisions face the same trade-off an LLVM backend
//! would impose. The model's time is *real* (the compiler works, then pads
//! to the modeled duration), which keeps wall-clock benchmarks honest, and
//! is also recorded as `cost_ns` for deterministic policy decisions.
//!
//! [`CompileServer`] is the Fig. 1 background path: the interpreter keeps
//! running while a worker thread generates code; finished traces are
//! *injected* on the next poll.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::builder::{Fragment, ReadSpec, WriteSpec};
use crate::cache::{CodeCache, TraceKey};
use crate::error::JitError;
use crate::exec::{self, NativeTrace};
use crate::ir::{self, PackedProgram, TraceIr, TraceResult};
use crate::passes::{optimize, PassStats};

use adaptvm_storage::array::Array;
use adaptvm_storage::sel::SelVec;

/// Compile-cost model (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed overhead per compilation.
    pub base_ns: u64,
    /// Linear component per trace operation.
    pub per_op_ns: u64,
    /// Quadratic component per (operation)² — the "optimizer passes take
    /// longer with more code" term.
    pub per_op2_ns: u64,
    /// When false, no padding is performed (unit tests use this); the
    /// modeled cost is still reported.
    pub enforce: bool,
}

impl Default for CostModel {
    fn default() -> CostModel {
        // Calibrated to LLVM-ish magnitudes for small fragments: a 4-op
        // fragment costs ~0.4 ms, a 20-op pipeline ~3.2 ms.
        CostModel {
            base_ns: 100_000,
            per_op_ns: 50_000,
            per_op2_ns: 5_000,
            enforce: true,
        }
    }
}

impl CostModel {
    /// A model that reports costs but never sleeps (for tests).
    pub fn untimed() -> CostModel {
        CostModel {
            enforce: false,
            ..CostModel::default()
        }
    }

    /// Modeled cost for a fragment of `n_ops` operations.
    pub fn cost_ns(&self, n_ops: usize) -> u64 {
        let n = n_ops as u64;
        self.base_ns + self.per_op_ns * n + self.per_op2_ns * n * n
    }
}

/// A compiled, optimized, executable trace.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// The optimized trace IR.
    pub ir: TraceIr,
    /// Buffer reads the VM performs before invoking the trace.
    pub reads: Vec<ReadSpec>,
    /// Buffer writes the VM performs afterwards.
    pub writes: Vec<WriteSpec>,
    /// Optimization statistics.
    pub stats: PassStats,
    /// Modeled compilation cost in nanoseconds.
    pub cost_ns: u64,
    /// Structural fingerprint (pre-optimization).
    pub fingerprint: u64,
    /// The packed (validated, operand-resolved) program — built once here
    /// so execution never re-validates. A pack error is surfaced on the
    /// first run and triggers the VM's interpretation fallback.
    packed: Result<PackedProgram, JitError>,
    /// Native machine code for the trace, when the host supports it and
    /// the trace is eligible (see [`exec::compile_native`]). `None` means
    /// the interpreted-trace tier serves every run — never an error.
    native: Option<Arc<NativeTrace>>,
}

/// Which tier produced a trace result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTier {
    /// Generated x86-64 machine code.
    Native,
    /// The packed trace interpreter.
    Interpreted,
}

/// How one tiered trace execution went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierRun {
    /// The tier whose result was returned.
    pub tier: TraceTier,
    /// True when native code started the chunk but deopted, so the result
    /// came from the interpreter re-run.
    pub native_deopt: bool,
}

impl CompiledTrace {
    /// Execute over chunk inputs (see [`ir::execute`]).
    pub fn run(
        &self,
        inputs: &[&Array],
        candidates: Option<&SelVec>,
    ) -> Result<TraceResult, JitError> {
        match &self.packed {
            Ok(p) => ir::run_packed(&self.ir, p, inputs, candidates),
            Err(e) => Err(e.clone()),
        }
    }

    /// Whether native machine code was generated for this trace.
    pub fn has_native(&self) -> bool {
        self.native.is_some()
    }

    /// Emitted native code size in bytes, when a native body exists.
    pub fn native_code_len(&self) -> Option<usize> {
        self.native.as_ref().map(|n| n.code_len())
    }

    /// Execute preferring the native tier. Native code runs only for the
    /// packed (no pending selection) path it was compiled for; any guard
    /// deopt discards the native attempt and re-runs the interpreter over
    /// the same chunk, so the returned result is always bit-identical to
    /// [`CompiledTrace::run`]. `allow_native: false` pins the interpreted
    /// tier (engine config / non-x86-64 hosts).
    pub fn run_tiered(
        &self,
        inputs: &[&Array],
        candidates: Option<&SelVec>,
        allow_native: bool,
    ) -> Result<(TraceResult, TierRun), JitError> {
        if allow_native && candidates.is_none() && self.packed.is_ok() {
            if let Some(nt) = &self.native {
                match exec::run_native(&self.ir, nt, inputs) {
                    Ok(r) => {
                        return Ok((
                            r,
                            TierRun {
                                tier: TraceTier::Native,
                                native_deopt: false,
                            },
                        ));
                    }
                    Err(_) => {
                        let r = self.run(inputs, candidates)?;
                        return Ok((
                            r,
                            TierRun {
                                tier: TraceTier::Interpreted,
                                native_deopt: true,
                            },
                        ));
                    }
                }
            }
        }
        let r = self.run(inputs, candidates)?;
        Ok((
            r,
            TierRun {
                tier: TraceTier::Interpreted,
                native_deopt: false,
            },
        ))
    }
}

/// Compile a fragment synchronously.
pub fn compile(fragment: Fragment, model: &CostModel) -> CompiledTrace {
    let started = Instant::now();
    let fingerprint = fragment.ir.fingerprint();
    let n_ops = fragment.ir.op_count();
    let (ir, stats) = optimize(fragment.ir);
    let cost = Duration::from_nanos(model.cost_ns(n_ops));
    if model.enforce {
        // Pad real elapsed time up to the modeled cost so wall-clock
        // benchmarks see the LLVM-ish compile latency.
        while started.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
    let packed = ir.pack();
    // Lower to machine code only for traces the interpreter validated;
    // ineligible traces (or non-x86-64 hosts) keep `native: None` and are
    // served by the interpreted tier.
    let native = if packed.is_ok() {
        exec::compile_native(&ir).map(Arc::new)
    } else {
        None
    };
    CompiledTrace {
        ir,
        reads: fragment.reads,
        writes: fragment.writes,
        stats,
        cost_ns: model.cost_ns(n_ops),
        fingerprint,
        packed,
        native,
    }
}

/// A compile request tagged with an opaque ticket.
struct Job {
    ticket: u64,
    fragment: Fragment,
}

/// A finished compilation.
pub struct Finished {
    /// The ticket the job was submitted under.
    pub ticket: u64,
    /// The compiled trace.
    pub trace: Arc<CompiledTrace>,
}

/// Background compile server (Fig. 1: interpretation continues while code
/// is generated; finished functions are injected on poll).
///
/// The server is shareable across threads: `submit`/`poll`/`wait` take
/// `&self` (the ticket counter is atomic, the channels have interior
/// locking), so a morsel-parallel run can hand one `Arc<CompileServer>`
/// to every worker and let whichever worker polls first inject the trace.
///
/// ## Publishing mode
///
/// A server started with [`CompileServer::with_cache`] additionally
/// **publishes** every finished trace into a shared [`CodeCache`] (keyed by
/// fragment fingerprint + the configured situation) *before* reporting it
/// on the done channel. This decouples producers from consumers: a run can
/// submit a hot fragment, end before the compile lands, and a *later* run
/// over the same fragment — another morsel of the same query, or another
/// query on the same scheduler — picks the trace up from the cache.
/// [`CompileServer::submit_unique`] pairs with this mode: it deduplicates
/// by fingerprint so a fragment resubmitted by every morsel of a parallel
/// run compiles only once.
pub struct CompileServer {
    tx: Option<Sender<Job>>,
    rx_done: Receiver<Finished>,
    worker: Option<std::thread::JoinHandle<()>>,
    next_ticket: AtomicU64,
    /// Finishes drained from the channel but not yet claimed: lets
    /// concurrent `wait` calls complete in any ticket order.
    stash: parking_lot::Mutex<Vec<Finished>>,
    /// The publish target, when started with [`CompileServer::with_cache`].
    publish: Option<(Arc<CodeCache>, String)>,
    /// Fingerprints submitted via `submit_unique` and not yet published.
    inflight: Arc<parking_lot::Mutex<HashSet<u64>>>,
}

impl CompileServer {
    /// Start the worker thread.
    pub fn start(model: CostModel) -> CompileServer {
        CompileServer::spawn(model, None)
    }

    /// Start the worker thread in publishing mode: every finished trace is
    /// inserted into `cache` under `(fingerprint, situation)` before it is
    /// reported on the done channel.
    pub fn with_cache(
        model: CostModel,
        cache: Arc<CodeCache>,
        situation: impl Into<String>,
    ) -> CompileServer {
        CompileServer::spawn(model, Some((cache, situation.into())))
    }

    fn spawn(model: CostModel, publish: Option<(Arc<CodeCache>, String)>) -> CompileServer {
        let (tx, rx) = unbounded::<Job>();
        let (tx_done, rx_done) = unbounded::<Finished>();
        let publish_cache = publish.clone();
        let inflight = Arc::new(parking_lot::Mutex::new(HashSet::new()));
        let worker_inflight = inflight.clone();
        let worker = std::thread::Builder::new()
            .name("adaptvm-jit".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let trace = Arc::new(compile(job.fragment, &model));
                    if let Some((cache, situation)) = &publish {
                        cache.insert(
                            TraceKey {
                                fingerprint: trace.fingerprint,
                                situation: situation.clone(),
                            },
                            trace.clone(),
                        );
                    }
                    // Publish precedes the in-flight release: a concurrent
                    // `submit_unique` that misses the in-flight set is then
                    // guaranteed to see the trace in the cache.
                    worker_inflight.lock().remove(&trace.fingerprint);
                    if tx_done
                        .send(Finished {
                            ticket: job.ticket,
                            trace,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            })
            .expect("spawn jit worker");
        CompileServer {
            tx: Some(tx),
            rx_done,
            worker: Some(worker),
            next_ticket: AtomicU64::new(0),
            stash: parking_lot::Mutex::new(Vec::new()),
            publish: publish_cache,
            inflight,
        }
    }

    /// The publish cache, when the server was started with
    /// [`CompileServer::with_cache`].
    pub fn cache(&self) -> Option<&Arc<CodeCache>> {
        self.publish.as_ref().map(|(c, _)| c)
    }

    /// The situation string finished traces are published under (set by
    /// [`CompileServer::with_cache`]). Consumers key their cache lookups
    /// from this, so server and engine can never disagree on the key.
    pub fn situation(&self) -> Option<&str> {
        self.publish.as_ref().map(|(_, s)| s.as_str())
    }

    /// Submit a fragment; returns the ticket to match against
    /// [`CompileServer::poll`] results.
    pub fn submit(&self, fragment: Fragment) -> Result<u64, JitError> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .ok_or(JitError::ServerDown)?
            .send(Job { ticket, fragment })
            .map_err(|_| JitError::ServerDown)?;
        Ok(ticket)
    }

    /// Submit a fragment unless one with the same fingerprint is already in
    /// flight. Returns `Ok(Some(ticket))` when this call enqueued the
    /// compile, `Ok(None)` when another submitter beat it there (the trace
    /// will land in the publish cache either way). The in-flight window
    /// closes only after the trace is published, so callers that check the
    /// cache first and `submit_unique` on a miss compile each fragment at
    /// most once per window.
    pub fn submit_unique(&self, fragment: Fragment) -> Result<Option<u64>, JitError> {
        let fingerprint = fragment.ir.fingerprint();
        if !self.inflight.lock().insert(fingerprint) {
            return Ok(None);
        }
        match self.submit(fragment) {
            Ok(ticket) => Ok(Some(ticket)),
            Err(e) => {
                self.inflight.lock().remove(&fingerprint);
                Err(e)
            }
        }
    }

    /// Collect all traces finished since the last poll (non-blocking).
    pub fn poll(&self) -> Vec<Finished> {
        let mut out: Vec<Finished> = {
            let mut stash = self.stash.lock();
            stash.drain(..).collect()
        };
        out.extend(self.rx_done.try_iter());
        out
    }

    /// Block until the given ticket finishes. Finishes for other tickets
    /// seen along the way are stashed, not dropped, so concurrent waiters
    /// can claim their tickets in any order. Waiting blocks on the done
    /// channel (bounded wake-ups, not a spin): the short timeout only
    /// exists so a waiter notices when *another* waiter stashed its
    /// ticket while it was blocked.
    pub fn wait(&self, ticket: u64) -> Result<Arc<CompiledTrace>, JitError> {
        use crossbeam::channel::{RecvTimeoutError, TryRecvError};
        loop {
            let mut disconnected = false;
            {
                let mut stash = self.stash.lock();
                loop {
                    match self.rx_done.try_recv() {
                        Ok(f) => stash.push(f),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                if let Some(pos) = stash.iter().position(|f| f.ticket == ticket) {
                    return Ok(stash.swap_remove(pos).trace);
                }
            }
            if disconnected {
                return Err(JitError::ServerDown);
            }
            match self.rx_done.recv_timeout(Duration::from_millis(1)) {
                Ok(f) => self.stash.lock().push(f),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(JitError::ServerDown),
            }
        }
    }
}

impl std::fmt::Debug for CompileServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileServer")
            .field("publishing", &self.publish.is_some())
            .field("in_flight", &self.inflight.lock().len())
            .field("tickets_issued", &self.next_ticket.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for CompileServer {
    fn drop(&mut self) {
        self.tx.take(); // close the channel so the worker exits
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_dsl::depgraph::{scalar_uses, DepGraph};
    use adaptvm_dsl::partition::Region;
    use adaptvm_dsl::programs;
    use std::collections::HashMap;

    fn fig2_whole_fragment() -> Fragment {
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        crate::builder::build_fragment(&g, &region, &scalar_uses(body), &HashMap::new()).unwrap()
    }

    #[test]
    fn cost_model_is_superlinear() {
        let m = CostModel::default();
        let c1 = m.cost_ns(1);
        let c10 = m.cost_ns(10);
        let c100 = m.cost_ns(100);
        assert!(c10 > 10 * (c1 - m.base_ns));
        assert!(c100 - m.base_ns > 10 * (c10 - m.base_ns));
    }

    #[test]
    fn sync_compile_produces_runnable_trace() {
        let trace = compile(fig2_whole_fragment(), &CostModel::untimed());
        assert!(trace.cost_ns > 0);
        let x = Array::from(vec![1i64, -2, 3]);
        let r = trace.run(&[&x], None).unwrap();
        assert!(!r.arrays.is_empty());
    }

    #[test]
    fn enforced_cost_pads_wall_time() {
        let model = CostModel {
            base_ns: 2_000_000, // 2 ms: large enough to measure reliably
            per_op_ns: 0,
            per_op2_ns: 0,
            enforce: true,
        };
        let t0 = Instant::now();
        let _ = compile(fig2_whole_fragment(), &model);
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn server_compiles_in_background() {
        let server = CompileServer::start(CostModel::untimed());
        let t1 = server.submit(fig2_whole_fragment()).unwrap();
        let t2 = server.submit(fig2_whole_fragment()).unwrap();
        assert_ne!(t1, t2);
        let trace = server.wait(t1).unwrap();
        let x = Array::from(vec![4i64]);
        assert!(trace.run(&[&x], None).is_ok());
        // The second finishes too (poll or wait).
        let trace2 = server.wait(t2).unwrap();
        assert_eq!(trace2.fingerprint, trace.fingerprint);
    }

    #[test]
    fn tiered_run_matches_interpreted_run() {
        let _g = crate::exec::test_hook_guard();
        let trace = compile(fig2_whole_fragment(), &CostModel::untimed());
        let x = Array::from(vec![1i64, -2, 3, 40, -5, 6]);
        let reference = trace.run(&[&x], None).unwrap();
        let (tiered, tr) = trace.run_tiered(&[&x], None, true).unwrap();
        assert_eq!(format!("{reference:?}"), format!("{tiered:?}"));
        if crate::exec::native_available() {
            assert!(trace.has_native(), "fig2 fragment should lower natively");
            assert_eq!(tr.tier, TraceTier::Native);
            assert!(!tr.native_deopt);
            assert!(trace.native_code_len().unwrap() > 0);
        } else {
            assert_eq!(tr.tier, TraceTier::Interpreted);
        }
        // Pinning the interpreter always works.
        let (pinned, tr2) = trace.run_tiered(&[&x], None, false).unwrap();
        assert_eq!(format!("{reference:?}"), format!("{pinned:?}"));
        assert_eq!(tr2.tier, TraceTier::Interpreted);
        assert!(!tr2.native_deopt);
    }

    #[test]
    fn server_poll_is_nonblocking() {
        let server = CompileServer::start(CostModel::untimed());
        assert!(server.poll().is_empty());
    }

    #[test]
    fn publishing_server_lands_traces_in_the_cache() {
        let cache = Arc::new(CodeCache::new(8));
        let server = CompileServer::with_cache(CostModel::untimed(), cache.clone(), "generic");
        assert_eq!(server.situation(), Some("generic"));
        assert!(CompileServer::start(CostModel::untimed())
            .situation()
            .is_none());
        let frag = fig2_whole_fragment();
        let fp = frag.ir.fingerprint();
        let ticket = server.submit_unique(frag).unwrap().expect("first submit");
        let trace = server.wait(ticket).unwrap();
        assert_eq!(trace.fingerprint, fp);
        let key = TraceKey {
            fingerprint: fp,
            situation: "generic".to_string(),
        };
        // Published before the done channel reported it.
        assert!(cache.peek(&key).is_some());
        // After publication the fingerprint is no longer in flight; a new
        // unique submit compiles again (the cache check is the caller's).
        assert!(server
            .submit_unique(fig2_whole_fragment())
            .unwrap()
            .is_some());
    }

    #[test]
    fn submit_unique_deduplicates_in_flight_fragments() {
        // A slow-enough model keeps the first compile in flight while the
        // duplicates arrive.
        let model = CostModel {
            base_ns: 50_000_000, // 50 ms
            per_op_ns: 0,
            per_op2_ns: 0,
            enforce: true,
        };
        let cache = Arc::new(CodeCache::new(8));
        let server = CompileServer::with_cache(model, cache, "generic");
        let first = server.submit_unique(fig2_whole_fragment()).unwrap();
        assert!(first.is_some());
        let dup = server.submit_unique(fig2_whole_fragment()).unwrap();
        assert!(dup.is_none(), "same fingerprint must not enqueue twice");
        assert!(server.wait(first.unwrap()).is_ok());
    }

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileServer>();
        assert_send_sync::<CompiledTrace>();

        // Concurrent submits from many threads: every ticket is unique and
        // every job finishes.
        let server = std::sync::Arc::new(CompileServer::start(CostModel::untimed()));
        let tickets: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let srv = server.clone();
                    s.spawn(move || {
                        (0..4)
                            .map(|_| srv.submit(fig2_whole_fragment()).unwrap())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<u64> = tickets.iter().copied().collect();
        assert_eq!(unique.len(), 16, "tickets must be unique: {tickets:?}");
        for t in tickets {
            assert!(server.wait(t).is_ok());
        }
    }
}
