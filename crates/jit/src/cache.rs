//! Code cache: the VM's store of compiled traces, keyed by
//! (fragment fingerprint, situation).
//!
//! §III-B: "The repetition of this algorithm will eventually lead to many
//! of these traces, each optimized for a specific situation. The VM then
//! chooses — based on the current situation — a trace, if it already
//! learned about that situation, or falls back to interpretation."
//!
//! The *situation* is an opaque string the VM builds from whatever it
//! specialized on: compression schemes of the current blocks, selectivity
//! class, data types, target device. Different situations for the same
//! fragment coexist — that is the multi-trace store.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::compiler::CompiledTrace;

/// The situation key for unspecialized traces: what the engine uses when it
/// did not specialize on compression scheme, selectivity class or device,
/// and what a publishing [`crate::compiler::CompileServer`] inserts under.
/// Sharing the constant keeps every producer and consumer of generic traces
/// on the same cache entries.
pub const GENERIC_SITUATION: &str = "generic";

/// Cache key: fragment structure + specialization situation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Structural fingerprint of the fragment.
    pub fingerprint: u64,
    /// Situation string (e.g. `"scheme=rle;sel=low"`).
    pub situation: String,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Traces currently stored.
    pub entries: usize,
    /// Traces evicted.
    pub evictions: u64,
}

/// A bounded trace cache with FIFO eviction.
pub struct CodeCache {
    inner: RwLock<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<TraceKey, Arc<CompiledTrace>>,
    order: Vec<TraceKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CodeCache {
    /// A cache holding at most `capacity` traces.
    pub fn new(capacity: usize) -> CodeCache {
        CodeCache {
            inner: RwLock::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Look up a trace for (fingerprint, situation).
    pub fn get(&self, key: &TraceKey) -> Option<Arc<CompiledTrace>> {
        let mut inner = self.inner.write();
        match inner.map.get(key).cloned() {
            Some(t) => {
                inner.hits += 1;
                Some(t)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Look up a trace **without** touching hit/miss statistics. This is
    /// the polling path: an engine waiting for a background compile to land
    /// may peek every iteration, and those probes must not drown the
    /// stats that real dispatch decisions are based on.
    pub fn peek(&self, key: &TraceKey) -> Option<Arc<CompiledTrace>> {
        self.inner.read().map.get(key).cloned()
    }

    /// Insert a trace, evicting the oldest entry when full.
    pub fn insert(&self, key: TraceKey, trace: Arc<CompiledTrace>) {
        let mut inner = self.inner.write();
        if !inner.map.contains_key(&key) {
            if inner.order.len() >= self.capacity {
                let victim = inner.order.remove(0);
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
            inner.order.push(key.clone());
        }
        inner.map.insert(key, trace);
    }

    /// All situations cached for one fragment (the multi-trace view).
    pub fn situations(&self, fingerprint: u64) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner
            .map
            .keys()
            .filter(|k| k.fingerprint == fingerprint)
            .map(|k| k.situation.clone())
            .collect();
        v.sort();
        v
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
        }
    }

    /// Drop every cached trace (used on workload shifts that invalidate
    /// specializations wholesale).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.order.clear();
    }

    /// Look up a trace, compiling and inserting it on a miss.
    ///
    /// This is the shared-cache fast path for parallel execution: the first
    /// worker to reach a fragment pays the compile cost, every other worker
    /// reuses the trace. Note the compile runs *outside* the cache lock, so
    /// two workers racing on the same cold key may both compile; the cache
    /// stays consistent (last insert wins, both traces are equivalent) and
    /// no worker ever blocks behind another's compilation.
    pub fn get_or_compile(
        &self,
        key: TraceKey,
        compile: impl FnOnce() -> Arc<CompiledTrace>,
    ) -> (Arc<CompiledTrace>, bool) {
        if let Some(hit) = self.get(&key) {
            return (hit, true);
        }
        let trace = compile();
        self.insert(key, trace.clone());
        (trace, false)
    }
}

impl std::fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CodeCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CostModel};
    use adaptvm_dsl::depgraph::{scalar_uses, DepGraph};
    use adaptvm_dsl::partition::Region;
    use adaptvm_dsl::programs;
    use std::collections::HashMap as Map;

    fn a_trace() -> Arc<CompiledTrace> {
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let frag =
            crate::builder::build_fragment(&g, &region, &scalar_uses(body), &Map::new()).unwrap();
        Arc::new(compile(frag, &CostModel::untimed()))
    }

    fn key(fp: u64, sit: &str) -> TraceKey {
        TraceKey {
            fingerprint: fp,
            situation: sit.to_string(),
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = CodeCache::new(4);
        let t = a_trace();
        assert!(cache.get(&key(1, "a")).is_none());
        cache.insert(key(1, "a"), t.clone());
        assert!(cache.get(&key(1, "a")).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn multi_trace_per_fragment() {
        let cache = CodeCache::new(8);
        let t = a_trace();
        cache.insert(key(7, "scheme=rle"), t.clone());
        cache.insert(key(7, "scheme=dict"), t.clone());
        cache.insert(key(8, "scheme=rle"), t);
        assert_eq!(
            cache.situations(7),
            vec!["scheme=dict".to_string(), "scheme=rle".to_string()]
        );
        assert_eq!(cache.situations(9), Vec::<String>::new());
    }

    #[test]
    fn fifo_eviction() {
        let cache = CodeCache::new(2);
        let t = a_trace();
        cache.insert(key(1, "a"), t.clone());
        cache.insert(key(2, "a"), t.clone());
        cache.insert(key(3, "a"), t);
        assert!(cache.get(&key(1, "a")).is_none(), "oldest evicted");
        assert!(cache.get(&key(3, "a")).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let cache = CodeCache::new(2);
        let t = a_trace();
        cache.insert(key(1, "a"), t.clone());
        cache.insert(key(1, "a"), t);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_empties() {
        let cache = CodeCache::new(2);
        cache.insert(key(1, "a"), a_trace());
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(&key(1, "a")).is_none());
    }
}
