//! Whole-pipeline compilation: the HyPer-style baseline.
//!
//! §II / §IV target 1: "the same system \[should\] be able to either use
//! vectorized execution, or tuple-at-a-time JIT compilation, as such
//! mimicking the MonetDB/X100 and HyPer approaches inside the same
//! framework". This module provides the second half: it takes a normalized
//! chunked loop body, forms ONE region covering every node, and compiles it
//! into a single trace. Executed per chunk the trace already processes
//! tuples one at a time through the whole pipeline (the filter guard and
//! fold accumulators make each lane a complete tuple pass); executed at
//! chunk size 1 it is literally tuple-at-a-time.

use std::collections::HashMap;

use adaptvm_dsl::ast::Program;
use adaptvm_dsl::depgraph::{scalar_uses, DepGraph};
use adaptvm_dsl::normalize::normalize_program;
use adaptvm_dsl::partition::Region;
use adaptvm_dsl::programs::loop_body;
use adaptvm_storage::scalar::ScalarType;

use crate::builder::{build_fragment, Fragment};
use crate::error::JitError;

/// Compile the entire loop body of `program` into one fragment.
///
/// The program must be a chunked loop (Fig. 2 shape). Returns the fragment
/// plus the loop-control statements the VM still interprets (counter
/// updates and the break condition remain interpreter business — they are
/// scalar control flow, not data-parallel work).
pub fn whole_pipeline_fragment(
    program: &Program,
    type_hints: &HashMap<String, ScalarType>,
) -> Result<Fragment, JitError> {
    let normalized = normalize_program(program);
    let body = loop_body(&normalized)
        .ok_or_else(|| JitError::Unsupported("program has no chunk loop".into()))?;
    let graph = DepGraph::from_stmts(body);
    if graph.is_empty() {
        return Err(JitError::Unsupported("loop body has no operations".into()));
    }
    let region = Region {
        nodes: (0..graph.len()).collect(),
        seed: 0,
        cost: 0.0,
    };
    let uses = scalar_uses(body);
    build_fragment(&graph, &region, &uses, type_hints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CostModel};
    use adaptvm_dsl::programs;
    use adaptvm_storage::array::Array;
    use adaptvm_storage::scalar::Scalar;

    #[test]
    fn fig2_whole_pipeline() {
        let frag = whole_pipeline_fragment(&programs::fig2_example(), &HashMap::new()).unwrap();
        let trace = compile(frag, &CostModel::untimed());
        let x = Array::from(vec![1i64, -2, 3, -4]);
        let r = trace.run(&[&x], None).unwrap();
        let a = &r.arrays.iter().find(|(n, _)| n == "a").unwrap().1;
        let b = &r.arrays.iter().find(|(n, _)| n == "b").unwrap().1;
        assert_eq!(*a, Array::from(vec![2i64, -4, 6, -8]));
        assert_eq!(*b, Array::from(vec![2i64, 6]));
        assert_eq!(trace.reads.len(), 1);
        assert_eq!(trace.reads[0].var, "input");
        assert_eq!(trace.reads[0].buffer, "some_data");
        assert_eq!(trace.writes.len(), 2);
    }

    #[test]
    fn filter_sum_whole_pipeline() {
        let frag =
            whole_pipeline_fragment(&programs::filter_sum(10, 100), &HashMap::new()).unwrap();
        let trace = compile(frag, &CostModel::untimed());
        let x = Array::from(vec![5i64, 20, 11, 3]);
        let r = trace.run(&[&x], None).unwrap();
        let s = r.scalars.iter().find(|(n, _)| n == "s").unwrap();
        // 2*20 + 2*11 = 62.
        assert_eq!(s.1, Scalar::I64(62));
    }

    #[test]
    fn map_chain_pipeline_fuses_after_normalization() {
        let frag = whole_pipeline_fragment(&programs::map_chain(100), &HashMap::new()).unwrap();
        // 4 chained maps → 4 trace ops (read/write are wiring, not ops).
        assert_eq!(frag.ir.pre_ops.len(), 4);
        let trace = compile(frag, &CostModel::untimed());
        let x = Array::from(vec![1i64, 2]);
        let r = trace.run(&[&x], None).unwrap();
        let d = &r.arrays.iter().find(|(n, _)| n == "d").unwrap().1;
        assert_eq!(
            d.to_i64_vec().unwrap(),
            programs::map_chain_reference(&[1, 2], 2)
        );
    }

    #[test]
    fn hypot_normalizes_then_compiles() {
        // Whole-array program: vectorize first, then compile.
        let chunked =
            adaptvm_dsl::transform::vectorize(&programs::hypot_whole_array(), 1024).unwrap();
        let mut hints = HashMap::new();
        hints.insert("a".to_string(), ScalarType::F64);
        hints.insert("b".to_string(), ScalarType::F64);
        let frag = whole_pipeline_fragment(&chunked, &hints).unwrap();
        assert_eq!(frag.ir.lane, crate::ir::LaneType::F64);
        let trace = compile(frag, &CostModel::untimed());
        let p = Array::from(vec![3.0, 6.0]);
        let q = Array::from(vec![4.0, 8.0]);
        let r = trace.run(&[&p, &q], None).unwrap();
        let h = &r.arrays.iter().find(|(n, _)| n == "h").unwrap().1;
        assert_eq!(*h, Array::from(vec![5.0, 10.0]));
    }

    #[test]
    fn programs_without_loops_are_rejected() {
        let err =
            whole_pipeline_fragment(&programs::hypot_whole_array(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, JitError::Unsupported(_)));
    }
}
