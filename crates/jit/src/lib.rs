//! The template/fusion JIT (§III-B).
//!
//! This crate turns partitioned dependency-graph regions
//! ([`adaptvm_dsl::partition`]) into **compiled traces**: fused,
//! type-specialized single-pass loops with no per-operation dispatch and no
//! intermediate chunk materialization. A trace executes an entire fragment
//! — maps, an optional filter guard, compacted outputs, fold accumulators —
//! in one pass over the lanes, which is exactly what an LLVM backend would
//! emit for the same fragment (see DESIGN.md §2 for the substitution
//! rationale: the adaptive questions the paper studies are *when* to
//! compile, *what* to fuse and *which* trace to dispatch; the trace
//! executor reproduces the performance structure those decisions see).
//!
//! Pipeline:
//! 1. [`builder`] — region → [`ir::TraceIr`] (SSA over lanes),
//! 2. [`passes`] — constant folding, CSE, algebraic simplification, dead
//!    code elimination (real optimization work, iterated to a fixpoint),
//! 3. [`compiler`] — produces a [`CompiledTrace`] under a calibrated
//!    compile-cost model (superlinear in fragment size, mirroring "optimizer
//!    passes tend to take longer with an increasing amount of code"), either
//!    synchronously or on the [`compiler::CompileServer`] background worker
//!    (the Fig. 1 "generate code … inject functions" path),
//! 4. [`cache`] — code cache keyed by (fragment fingerprint, situation),
//!    the VM's multi-trace store ("each optimized for a specific
//!    situation").
//!
//! [`pipeline`] builds whole-pipeline traces directly from normalized loop
//! bodies — run at chunk size 1 this is HyPer-style tuple-at-a-time
//! compiled execution, the paper's second execution-strategy extreme.

pub mod builder;
pub mod cache;
pub mod compiler;
mod emit;
pub mod error;
pub mod exec;
pub mod ir;
pub mod passes;
pub mod pipeline;
pub mod regalloc;
mod ssa;

pub use builder::build_fragment;
pub use cache::CodeCache;
pub use compiler::{compile, CompileServer, CompiledTrace, CostModel, TierRun, TraceTier};
pub use error::JitError;
pub use exec::{native_available, set_native_capacity_limit, set_native_guard_budget, NativeDeopt};
pub use ir::{LaneType, TraceIr, TraceResult};
