//! Fragment builder: partitioned region → trace IR.
//!
//! Consumes a [`Region`] produced by the §III-B greedy partitioner and the
//! normalized expressions stored on the dependency-graph nodes, and emits a
//! [`Fragment`]: the trace plus the wiring the VM needs to splice it into
//! interpretation (which buffers to read before the trace, which to write
//! after — "directly plugged into the interpreter").
//!
//! Unsupported shapes (merges, gathers, gens, string ops, captured scalar
//! variables, multiple filters) return [`JitError::Unsupported`]; the VM
//! then interprets that region — the paper's "the remaining nodes can
//! either be compiled or interpreted".

use std::collections::HashMap;
use std::collections::HashSet;

use adaptvm_dsl::ast::{Expr, Lambda, OpClass, ScalarOp};
use adaptvm_dsl::depgraph::{DepGraph, NodeId};
use adaptvm_dsl::partition::Region;
use adaptvm_storage::scalar::{Scalar, ScalarType};

use crate::error::JitError;
use crate::ir::{FilterCheck, LaneType, OutputSpec, Src, TraceIr, TraceOp};

/// Register budget per fragment (fragments wider than this should have been
/// stopped by the TLB heuristic long before).
pub const REG_BUDGET: usize = 256;

/// A buffer read the VM performs before invoking a trace; the result is a
/// trace input.
#[derive(Debug, Clone)]
pub struct ReadSpec {
    /// Variable the read binds.
    pub var: String,
    /// Source buffer.
    pub buffer: String,
    /// Position expression (scalar; evaluated by the VM per iteration).
    pub pos: adaptvm_dsl::ast::Expr,
    /// Optional explicit length expression.
    pub len: Option<adaptvm_dsl::ast::Expr>,
}

/// A buffer write the VM performs after a trace.
#[derive(Debug, Clone)]
pub struct WriteSpec {
    /// Target buffer.
    pub buffer: String,
    /// Variable holding the values (a trace output or external binding).
    pub value_var: String,
    /// Position expression (scalar; evaluated by the VM per iteration).
    pub pos: adaptvm_dsl::ast::Expr,
}

/// A compiled-fragment description plus its VM wiring.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The (unoptimized) trace.
    pub ir: TraceIr,
    /// Buffer reads the VM performs before invoking the trace.
    pub reads: Vec<ReadSpec>,
    /// Buffer writes the VM performs after the trace.
    pub writes: Vec<WriteSpec>,
    /// The region's node ids (for bookkeeping/explain output).
    pub node_ids: Vec<NodeId>,
}

#[derive(Debug, Clone)]
struct VarRef {
    src: Src,
    guarded: bool,
}

/// Build a fragment from a region.
///
/// `scalar_uses` lists variables referenced by non-node statements (loop
/// counters, `len(x)` …) — any region binding in this set must escape.
/// `type_hints` supplies element types for inputs/outputs (from the type
/// checker); missing entries default to the lane type.
pub fn build_fragment(
    g: &DepGraph,
    region: &Region,
    scalar_uses: &HashSet<String>,
    type_hints: &HashMap<String, ScalarType>,
) -> Result<Fragment, JitError> {
    let order = topo_order(g, &region.nodes);
    let in_region = |id: NodeId| region.nodes.contains(&id);

    let mut var_map: HashMap<String, VarRef> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut reads: Vec<ReadSpec> = Vec::new();
    let mut writes: Vec<WriteSpec> = Vec::new();
    let mut pre_ops: Vec<TraceOp> = Vec::new();
    let mut post_ops: Vec<TraceOp> = Vec::new();
    let mut filter: Option<FilterCheck> = None;
    let mut filter_binding: Option<(String, String)> = None; // (bound var, flow var)
    let mut outputs: Vec<OutputSpec> = Vec::new();
    let mut next_reg = 0usize;
    let mut needed: Vec<String> = Vec::new(); // vars that must be outputs
    let mut fold_vars: HashSet<String> = HashSet::new();

    // Resolve an atom to a source; unknown vars become external inputs.
    let resolve = |atom: &Expr,
                   var_map: &mut HashMap<String, VarRef>,
                   inputs: &mut Vec<String>|
     -> Result<VarRef, JitError> {
        match atom {
            Expr::Const(Scalar::F64(v)) => Ok(VarRef {
                src: Src::ConstF(*v),
                guarded: false,
            }),
            Expr::Const(s) => match s.as_i64() {
                Some(v) => Ok(VarRef {
                    src: Src::ConstI(v),
                    guarded: false,
                }),
                None => match s {
                    Scalar::Bool(b) => Ok(VarRef {
                        src: Src::ConstI(*b as i64),
                        guarded: false,
                    }),
                    other => Err(JitError::Unsupported(format!("constant {other:?}"))),
                },
            },
            Expr::Var(v) => {
                if let Some(r) = var_map.get(v) {
                    return Ok(r.clone());
                }
                // External array input.
                let idx = inputs.len();
                inputs.push(v.clone());
                let r = VarRef {
                    src: Src::Input(idx),
                    guarded: false,
                };
                var_map.insert(v.clone(), r.clone());
                Ok(r)
            }
            other => Err(JitError::Unsupported(format!(
                "non-atomic operand {other:?} (normalize first)"
            ))),
        }
    };

    // Resolve one argument of a normalized single-op lambda body.
    let resolve_lambda_arg = |arg: &Expr,
                              f: &Lambda,
                              actuals: &[Expr],
                              var_map: &mut HashMap<String, VarRef>,
                              inputs: &mut Vec<String>|
     -> Result<VarRef, JitError> {
        match arg {
            Expr::Var(p) => match f.params.iter().position(|x| x == p) {
                Some(i) => resolve(&actuals[i], var_map, inputs),
                None => Err(JitError::Unsupported(format!(
                    "captured scalar {p} in lambda"
                ))),
            },
            Expr::Const(_) => resolve(arg, var_map, inputs),
            other => Err(JitError::Unsupported(format!(
                "non-normalized lambda arg {other:?}"
            ))),
        }
    };

    for &id in &order {
        let node = g.node(id);
        match node.class {
            OpClass::Read => {
                let expr = node
                    .expr
                    .as_ref()
                    .ok_or_else(|| JitError::Unresolved("read node without expression".into()))?;
                let (buffer, pos, len) = match expr {
                    Expr::Read { data, pos, len } => (
                        data.clone(),
                        pos.as_ref().clone(),
                        len.as_ref().map(|l| l.as_ref().clone()),
                    ),
                    _ => return Err(JitError::Unresolved("read node shape".into())),
                };
                let var = node
                    .output
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("read without binding".into()))?;
                let idx = inputs.len();
                inputs.push(var.clone());
                reads.push(ReadSpec {
                    var: var.clone(),
                    buffer,
                    pos,
                    len,
                });
                var_map.insert(
                    var,
                    VarRef {
                        src: Src::Input(idx),
                        guarded: false,
                    },
                );
            }
            OpClass::Map => {
                let (f, actuals) = match node.expr.as_ref() {
                    Some(Expr::Map { f, inputs }) => (f, inputs.as_slice()),
                    Some(Expr::Gen { .. }) => {
                        return Err(JitError::Unsupported("gen in fragment".into()))
                    }
                    _ => return Err(JitError::Unresolved("map node shape".into())),
                };
                let var = node
                    .output
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("map without binding".into()))?;
                let vr = match f.body.as_ref() {
                    // Identity / constant lambdas alias their operand.
                    Expr::Var(_) | Expr::Const(_) => {
                        resolve_lambda_arg(&f.body, f, actuals, &mut var_map, &mut inputs)?
                    }
                    Expr::Apply(op, args) => {
                        let mut srcs = Vec::with_capacity(args.len());
                        let mut guarded = false;
                        for a in args {
                            let r = resolve_lambda_arg(a, f, actuals, &mut var_map, &mut inputs)?;
                            guarded |= r.guarded;
                            srcs.push(r.src);
                        }
                        let dst = next_reg;
                        next_reg += 1;
                        if next_reg > REG_BUDGET {
                            return Err(JitError::TooWide {
                                needed: next_reg,
                                budget: REG_BUDGET,
                            });
                        }
                        let top = TraceOp {
                            op: *op,
                            dst,
                            args: srcs,
                        };
                        if guarded {
                            post_ops.push(top);
                        } else {
                            pre_ops.push(top);
                        }
                        VarRef {
                            src: Src::Reg(dst),
                            guarded,
                        }
                    }
                    other => {
                        return Err(JitError::Unsupported(format!(
                            "non-normalized lambda body {other:?}"
                        )))
                    }
                };
                var_map.insert(var, vr);
            }
            OpClass::Filter => {
                if filter.is_some() {
                    return Err(JitError::Unsupported("second filter in fragment".into()));
                }
                let (p, actuals) = match node.expr.as_ref() {
                    Some(Expr::Filter { p, inputs }) => (p, inputs.as_slice()),
                    _ => return Err(JitError::Unresolved("filter node shape".into())),
                };
                let flow_name = match actuals.first() {
                    Some(Expr::Var(v)) => v.clone(),
                    _ => {
                        return Err(JitError::Unsupported(
                            "filter flow must be a variable".into(),
                        ))
                    }
                };
                // Ensure the flow is resolvable (it may be an external input).
                let flow_ref = resolve(&Expr::Var(flow_name.clone()), &mut var_map, &mut inputs)?;
                let (op, lhs, rhs) = match p.body.as_ref() {
                    Expr::Apply(op, args) if op.is_comparison() && args.len() == 2 => {
                        let l =
                            resolve_lambda_arg(&args[0], p, actuals, &mut var_map, &mut inputs)?;
                        let r =
                            resolve_lambda_arg(&args[1], p, actuals, &mut var_map, &mut inputs)?;
                        (*op, l.src, r.src)
                    }
                    other => {
                        return Err(JitError::Unsupported(format!("filter predicate {other:?}")))
                    }
                };
                filter = Some(FilterCheck { op, lhs, rhs });
                let var = node
                    .output
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("filter without binding".into()))?;
                filter_binding = Some((var.clone(), flow_name));
                // The filtered flow: same physical lanes, guarded.
                var_map.insert(
                    var,
                    VarRef {
                        src: flow_ref.src,
                        guarded: true,
                    },
                );
            }
            OpClass::Condense => {
                let input = match node.expr.as_ref() {
                    Some(Expr::Condense(inner)) => inner.as_ref().clone(),
                    _ => return Err(JitError::Unresolved("condense node shape".into())),
                };
                let var = node
                    .output
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("condense without binding".into()))?;
                let r = resolve(&input, &mut var_map, &mut inputs)?;
                // Condensing an unguarded flow is the identity; a guarded
                // flow stays guarded (compaction happens at output time).
                var_map.insert(var, r);
            }
            OpClass::Fold => {
                let (ff, init, input) = match node.expr.as_ref() {
                    Some(Expr::Fold { r, init, input }) => (*r, init.as_ref(), input.as_ref()),
                    _ => return Err(JitError::Unresolved("fold node shape".into())),
                };
                let init = match init {
                    Expr::Const(s) => s.clone(),
                    _ => {
                        return Err(JitError::Unsupported(
                            "fold init must be a constant in fragments".into(),
                        ))
                    }
                };
                let var = node
                    .output
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("fold without binding".into()))?;
                let r = resolve(input, &mut var_map, &mut inputs)?;
                outputs.push(OutputSpec::Fold {
                    name: var.clone(),
                    f: ff,
                    init,
                    src: r.src,
                    guarded: r.guarded,
                });
                fold_vars.insert(var);
            }
            OpClass::Write => {
                let buffer = node
                    .buffer
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("write without buffer".into()))?;
                let value = node
                    .inputs
                    .first()
                    .cloned()
                    .ok_or_else(|| JitError::Unsupported("write of a constant".into()))?;
                let pos = node
                    .write_pos
                    .clone()
                    .ok_or_else(|| JitError::Unresolved("write without position".into()))?;
                writes.push(WriteSpec {
                    buffer,
                    value_var: value.clone(),
                    pos,
                });
                needed.push(value);
            }
            OpClass::Merge | OpClass::Random | OpClass::StringOp | OpClass::Scalar => {
                return Err(JitError::Unsupported(format!(
                    "{:?} node in fragment",
                    node.class
                )))
            }
        }
    }

    // Escaping bindings: consumed outside the region, used by scalar
    // statements, or needed by an in-region write.
    for &id in &region.nodes {
        let node = g.node(id);
        let Some(var) = node.output.clone() else {
            continue;
        };
        let escapes = g.consumers(id).iter().any(|&c| !in_region(c))
            || scalar_uses.contains(&var)
            || needed.contains(&var);
        if !escapes || fold_vars.contains(&var) {
            continue;
        }
        if let Some((fvar, flow)) = &filter_binding {
            if *fvar == var {
                outputs.push(OutputSpec::Sel {
                    name: var.clone(),
                    flow: flow.clone(),
                });
                continue;
            }
        }
        let r = var_map
            .get(&var)
            .ok_or_else(|| JitError::Unresolved(var.clone()))?
            .clone();
        outputs.push(OutputSpec::Array {
            name: var.clone(),
            src: r.src,
            compacted: r.guarded,
            out_ty: *type_hints.get(&var).unwrap_or(&ScalarType::I64),
        });
    }

    // Lane selection: floats anywhere force f64 lanes.
    let mut lane = LaneType::I64;
    let float_hint = |v: &String| type_hints.get(v) == Some(&ScalarType::F64);
    if inputs.iter().any(float_hint)
        || pre_ops
            .iter()
            .chain(post_ops.iter())
            .any(|o| o.op == ScalarOp::Sqrt || o.args.iter().any(|a| matches!(a, Src::ConstF(_))))
        || outputs.iter().any(|o| match o {
            OutputSpec::Array { out_ty, .. } => *out_ty == ScalarType::F64,
            OutputSpec::Fold { init, .. } => init.scalar_type() == ScalarType::F64,
            OutputSpec::Sel { .. } => false,
        })
    {
        lane = LaneType::F64;
    }
    if lane == LaneType::F64 {
        if let Some(bad) = pre_ops
            .iter()
            .chain(post_ops.iter())
            .find(|o| o.op == ScalarOp::Hash)
        {
            return Err(JitError::LaneConflict(format!(
                "{:?} requires integer lanes but fragment is float",
                bad.op
            )));
        }
    }
    // Patch array output types that defaulted to I64 in a float fragment.
    if lane == LaneType::F64 {
        for o in &mut outputs {
            if let OutputSpec::Array { name, out_ty, .. } = o {
                if !type_hints.contains_key(name) {
                    *out_ty = ScalarType::F64;
                }
            }
        }
    }

    if outputs.is_empty() {
        return Err(JitError::Unsupported("fragment produces no outputs".into()));
    }

    Ok(Fragment {
        ir: TraceIr {
            lane,
            inputs,
            n_regs: next_reg,
            pre_ops,
            filter,
            post_ops,
            outputs,
        },
        reads,
        writes,
        node_ids: region.nodes.clone(),
    })
}

/// Topologically order the region's nodes (producers before consumers).
fn topo_order(g: &DepGraph, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(nodes.len());
    let mut placed = vec![false; g.len()];
    let in_set = |id: NodeId, nodes: &[NodeId]| nodes.contains(&id);
    while order.len() < nodes.len() {
        let mut progressed = false;
        for &id in nodes {
            if placed[id] {
                continue;
            }
            let ready = g
                .producers(id)
                .iter()
                .all(|&p| !in_set(p, nodes) || placed[p]);
            if ready {
                placed[id] = true;
                order.push(id);
                progressed = true;
            }
        }
        if !progressed {
            // Cycle (cannot happen for well-formed programs); bail with the
            // remaining nodes in id order to keep the builder total.
            for &id in nodes {
                if !placed[id] {
                    placed[id] = true;
                    order.push(id);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::execute;
    use crate::passes::optimize;
    use adaptvm_dsl::depgraph::scalar_uses;
    use adaptvm_dsl::partition::{partition, PartitionConfig};
    use adaptvm_dsl::programs;
    use adaptvm_storage::array::Array;
    use adaptvm_storage::scalar::Scalar;

    fn fig2_fragments() -> (DepGraph, Vec<Fragment>) {
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let parts = partition(&g, &PartitionConfig::default());
        let uses = scalar_uses(body);
        let frags = parts
            .regions
            .iter()
            .map(|r| build_fragment(&g, r, &uses, &HashMap::new()).unwrap())
            .collect();
        (g, frags)
    }

    #[test]
    fn fig2_region1_compiles_to_map_trace() {
        let (_, frags) = fig2_fragments();
        // One fragment reads some_data and writes v; the other writes w.
        let map_frag = frags
            .iter()
            .find(|f| !f.reads.is_empty())
            .expect("read+map+write fragment");
        assert_eq!(map_frag.reads[0].buffer, "some_data");
        assert_eq!(map_frag.writes.len(), 1);
        assert_eq!(map_frag.writes[0].buffer, "v");
        assert_eq!(map_frag.writes[0].value_var, "a");
        // a escapes (filter consumes it + len(a) in the counter update).
        assert!(map_frag.ir.outputs.iter().any(|o| o.name() == "a"));
        // Executes: a = 2*x.
        let x = Array::from(vec![1i64, -2]);
        let r = execute(&map_frag.ir, &[&x], None).unwrap();
        assert_eq!(r.arrays[0].1, Array::from(vec![2i64, -4]));
    }

    #[test]
    fn fig2_region2_compiles_to_filter_trace() {
        let (_, frags) = fig2_fragments();
        let filter_frag = frags
            .iter()
            .find(|f| f.ir.filter.is_some())
            .expect("filter fragment");
        // Consumes the external `a`, writes w from b.
        assert_eq!(filter_frag.ir.inputs, vec!["a".to_string()]);
        assert_eq!(filter_frag.writes.len(), 1);
        assert_eq!(filter_frag.writes[0].buffer, "w");
        assert_eq!(filter_frag.writes[0].value_var, "b");
        // b is compacted.
        let b_out = filter_frag
            .ir
            .outputs
            .iter()
            .find(|o| o.name() == "b")
            .unwrap();
        assert!(matches!(
            b_out,
            OutputSpec::Array {
                compacted: true,
                ..
            }
        ));
        let a = Array::from(vec![2i64, -4, 6]);
        let r = execute(&filter_frag.ir, &[&a], None).unwrap();
        let (_, b) = r.arrays.iter().find(|(n, _)| n == "b").expect("b output");
        assert_eq!(*b, Array::from(vec![2i64, 6]));
    }

    #[test]
    fn whole_pipeline_region_fuses_everything() {
        // One region covering the entire Fig. 2 body (max_io high, no
        // barrier restrictions) → one trace: dense a, sel t, compacted b.
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let uses = scalar_uses(body);
        let frag = build_fragment(&g, &region, &uses, &HashMap::new()).unwrap();
        assert_eq!(frag.reads.len(), 1);
        assert_eq!(frag.writes.len(), 2);
        let x = Array::from(vec![1i64, -2, 3, -4]);
        let (ir, _) = optimize(frag.ir);
        let r = execute(&ir, &[&x], None).unwrap();
        let a = &r.arrays.iter().find(|(n, _)| n == "a").unwrap().1;
        let b = &r.arrays.iter().find(|(n, _)| n == "b").unwrap().1;
        assert_eq!(*a, Array::from(vec![2i64, -4, 6, -8]));
        assert_eq!(*b, Array::from(vec![2i64, 6]));
    }

    #[test]
    fn filter_sum_region_builds_guarded_fold() {
        let p = programs::filter_sum(0, 1000);
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let uses = scalar_uses(body);
        let frag = build_fragment(&g, &region, &uses, &HashMap::new()).unwrap();
        let fold = frag
            .ir
            .outputs
            .iter()
            .find(|o| matches!(o, OutputSpec::Fold { .. }))
            .expect("fold output");
        assert!(matches!(fold, OutputSpec::Fold { guarded: true, .. }));
        // Semantics: sum of 2*x for x>0.
        let x = Array::from(vec![5i64, -3, 2]);
        let r = execute(&frag.ir, &[&x], None).unwrap();
        let s = r.scalars.iter().find(|(n, _)| n == "s").unwrap();
        assert_eq!(s.1, Scalar::I64(14));
    }

    #[test]
    fn unsupported_shapes_error() {
        use adaptvm_dsl::parser::parse_program;
        // Merge in region.
        let p = parse_program(
            "let a = read 0 xs in { let b = read 0 ys in { let m = merge union a b in { write out 0 m } } }",
        )
        .unwrap();
        let g = DepGraph::from_stmts(&p.stmts);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let err = build_fragment(&g, &region, &HashSet::new(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, JitError::Unsupported(_)));
        // Captured scalar in lambda.
        let p = parse_program(
            "mut alpha\nalpha := 2\nlet a = read 0 xs in { let m = map (\\x -> alpha * x) a in { write out 0 m } }",
        )
        .unwrap();
        let g = DepGraph::from_stmts(&p.stmts);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let err = build_fragment(&g, &region, &HashSet::new(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, JitError::Unsupported(_)));
    }

    #[test]
    fn float_lane_inference() {
        use adaptvm_dsl::parser::parse_program;
        let p = parse_program(
            "let a = read 0 xs in { let h = map (\\x -> sqrt(x)) a in { write out 0 h } }",
        )
        .unwrap();
        let g = DepGraph::from_stmts(&p.stmts);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let frag = build_fragment(&g, &region, &HashSet::new(), &HashMap::new()).unwrap();
        assert_eq!(frag.ir.lane, LaneType::F64);
        // Output type defaults to f64 in float fragments.
        assert!(frag.ir.outputs.iter().any(|o| matches!(
            o,
            OutputSpec::Array {
                out_ty: ScalarType::F64,
                ..
            }
        )));
    }

    #[test]
    fn type_hints_narrow_outputs() {
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        let g = DepGraph::from_stmts(body);
        let region = Region {
            nodes: (0..g.len()).collect(),
            seed: 0,
            cost: 0.0,
        };
        let mut hints = HashMap::new();
        hints.insert("a".to_string(), ScalarType::I16);
        let uses = scalar_uses(body);
        let frag = build_fragment(&g, &region, &uses, &hints).unwrap();
        let x = Array::from(vec![3i64]);
        let r = execute(&frag.ir, &[&x], None).unwrap();
        let a = &r.arrays.iter().find(|(n, _)| n == "a").unwrap().1;
        assert_eq!(a.scalar_type(), ScalarType::I16);
    }
}
