//! Trace optimization passes.
//!
//! §III-B motivates *partial* compilation with "optimizer passes tend to
//! take longer with an increasing amount of code" — so this compiler has
//! real passes doing real work, iterated to a fixpoint:
//!
//! * **constant folding** — ops over immediates are evaluated at compile
//!   time,
//! * **algebraic simplification** — `x*1`, `x+0`, `x*0`, `x-0`, `x/1`,
//! * **common subexpression elimination** — structurally identical ops
//!   reuse one register,
//! * **dead code elimination** — ops whose result reaches no output,
//!   filter, or live op are dropped.

use adaptvm_dsl::ast::ScalarOp;

use crate::ir::{OutputSpec, Src, TraceIr, TraceOp};

/// Statistics of one optimization run (reported by the VM's explain output
/// and asserted in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Constants folded.
    pub folded: usize,
    /// Algebraic identities applied.
    pub simplified: usize,
    /// Subexpressions deduplicated.
    pub cse_hits: usize,
    /// Dead ops removed.
    pub dead_removed: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
}

/// Run all passes to a fixpoint (bounded) and return the optimized trace.
pub fn optimize(mut ir: TraceIr) -> (TraceIr, PassStats) {
    let mut stats = PassStats::default();
    for _ in 0..16 {
        stats.iterations += 1;
        let mut changed = false;
        changed |= const_fold(&mut ir, &mut stats);
        changed |= simplify(&mut ir, &mut stats);
        changed |= cse(&mut ir, &mut stats);
        changed |= dce(&mut ir, &mut stats);
        if !changed {
            break;
        }
    }
    (ir, stats)
}

fn subst_src(s: &mut Src, dst: usize, replacement: Src) {
    if let Src::Reg(r) = s {
        if *r == dst {
            *s = replacement;
        }
    }
}

/// Replace every use of register `dst` with `replacement` throughout.
fn substitute(ir: &mut TraceIr, dst: usize, replacement: Src) {
    for op in ir.pre_ops.iter_mut().chain(ir.post_ops.iter_mut()) {
        for a in &mut op.args {
            subst_src(a, dst, replacement);
        }
    }
    if let Some(fc) = &mut ir.filter {
        subst_src(&mut fc.lhs, dst, replacement);
        subst_src(&mut fc.rhs, dst, replacement);
    }
    for o in &mut ir.outputs {
        match o {
            OutputSpec::Array { src, .. } | OutputSpec::Fold { src, .. } => {
                subst_src(src, dst, replacement)
            }
            OutputSpec::Sel { .. } => {}
        }
    }
}

fn const_of(s: &Src) -> Option<f64> {
    match s {
        Src::ConstI(v) => Some(*v as f64),
        Src::ConstF(v) => Some(*v),
        _ => None,
    }
}

fn eval_const(op: ScalarOp, args: &[Src], is_float: bool) -> Option<Src> {
    if is_float {
        let a = const_of(args.first()?)?;
        let r = match op {
            ScalarOp::Add => a + const_of(&args[1])?,
            ScalarOp::Sub => a - const_of(&args[1])?,
            ScalarOp::Mul => a * const_of(&args[1])?,
            ScalarOp::Div => a / const_of(&args[1])?,
            ScalarOp::Neg => -a,
            ScalarOp::Abs => a.abs(),
            ScalarOp::Sqrt => a.sqrt(),
            ScalarOp::Min => a.min(const_of(&args[1])?),
            ScalarOp::Max => a.max(const_of(&args[1])?),
            _ => return None,
        };
        Some(Src::ConstF(r))
    } else {
        let get = |s: &Src| match s {
            Src::ConstI(v) => Some(*v),
            _ => None,
        };
        let a = get(args.first()?)?;
        let r = match op {
            ScalarOp::Add => a.wrapping_add(get(&args[1])?),
            ScalarOp::Sub => a.wrapping_sub(get(&args[1])?),
            ScalarOp::Mul => a.wrapping_mul(get(&args[1])?),
            ScalarOp::Div => {
                let b = get(&args[1])?;
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            ScalarOp::Rem => {
                let b = get(&args[1])?;
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            ScalarOp::Neg => a.wrapping_neg(),
            ScalarOp::Abs => a.wrapping_abs(),
            ScalarOp::Min => a.min(get(&args[1])?),
            ScalarOp::Max => a.max(get(&args[1])?),
            _ => return None,
        };
        Some(Src::ConstI(r))
    }
}

fn const_fold(ir: &mut TraceIr, stats: &mut PassStats) -> bool {
    let is_float = matches!(ir.lane, crate::ir::LaneType::F64);
    let mut changed = false;
    // Apply one replacement at a time: substitutions invalidate any other
    // replacement computed against the pre-substitution state.
    loop {
        let next = ir.pre_ops.iter().chain(ir.post_ops.iter()).find_map(|op| {
            if op.args.iter().all(|a| const_of(a).is_some()) {
                eval_const(op.op, &op.args, is_float).map(|r| (op.dst, r))
            } else {
                None
            }
        });
        match next {
            Some((dst, r)) => {
                remove_op(ir, dst);
                substitute(ir, dst, r);
                stats.folded += 1;
                changed = true;
            }
            None => return changed,
        }
    }
}

fn remove_op(ir: &mut TraceIr, dst: usize) {
    ir.pre_ops.retain(|o| o.dst != dst);
    ir.post_ops.retain(|o| o.dst != dst);
}

fn simplify(ir: &mut TraceIr, stats: &mut PassStats) -> bool {
    let mut changed = false;
    // One replacement per step (see const_fold for why).
    loop {
        let next = ir.pre_ops.iter().chain(ir.post_ops.iter()).find_map(|op| {
            let repl = match (op.op, op.args.as_slice()) {
                (ScalarOp::Add, [x, c]) if is_zero(c) => Some(*x),
                (ScalarOp::Add, [c, x]) if is_zero(c) => Some(*x),
                (ScalarOp::Sub, [x, c]) if is_zero(c) => Some(*x),
                (ScalarOp::Mul, [x, c]) if is_one(c) => Some(*x),
                (ScalarOp::Mul, [c, x]) if is_one(c) => Some(*x),
                (ScalarOp::Div, [x, c]) if is_one(c) => Some(*x),
                // Traces carry finite data, so x*0 = 0 holds in both
                // lane domains (NaN inputs are rejected upstream by
                // merge/compare preconditions).
                (ScalarOp::Mul, [_, c]) if is_zero(c) => Some(Src::ConstI(0)),
                (ScalarOp::Mul, [c, _]) if is_zero(c) => Some(Src::ConstI(0)),
                _ => None,
            };
            repl.map(|r| (op.dst, r))
        });
        match next {
            Some((dst, r)) => {
                remove_op(ir, dst);
                substitute(ir, dst, r);
                stats.simplified += 1;
                changed = true;
            }
            None => return changed,
        }
    }
}

fn is_zero(s: &Src) -> bool {
    matches!(s, Src::ConstI(0)) || matches!(s, Src::ConstF(v) if *v == 0.0)
}

fn is_one(s: &Src) -> bool {
    matches!(s, Src::ConstI(1)) || matches!(s, Src::ConstF(v) if *v == 1.0)
}

fn cse(ir: &mut TraceIr, stats: &mut PassStats) -> bool {
    let mut changed = false;
    // Only within the same phase — a post op must not be hoisted before the
    // filter.
    for phase in [true, false] {
        let ops: &Vec<TraceOp> = if phase { &ir.pre_ops } else { &ir.post_ops };
        let mut seen: Vec<(ScalarOp, Vec<Src>, usize)> = Vec::new();
        let mut dup: Option<(usize, usize)> = None;
        for op in ops {
            if let Some((_, _, canon)) = seen.iter().find(|(o, a, _)| *o == op.op && *a == op.args)
            {
                dup = Some((op.dst, *canon));
                break;
            }
            seen.push((op.op, op.args.clone(), op.dst));
        }
        if let Some((dst, canon)) = dup {
            remove_op(ir, dst);
            substitute(ir, dst, Src::Reg(canon));
            stats.cse_hits += 1;
            changed = true;
        }
    }
    changed
}

fn dce(ir: &mut TraceIr, stats: &mut PassStats) -> bool {
    let mut live = vec![false; ir.n_regs];
    let mark = |live: &mut Vec<bool>, s: &Src| {
        if let Src::Reg(r) = s {
            live[*r] = true;
        }
    };
    for o in &ir.outputs {
        match o {
            OutputSpec::Array { src, .. } | OutputSpec::Fold { src, .. } => mark(&mut live, src),
            OutputSpec::Sel { .. } => {}
        }
    }
    if let Some(fc) = &ir.filter {
        mark(&mut live, &fc.lhs);
        mark(&mut live, &fc.rhs);
    }
    loop {
        let mut grew = false;
        for op in ir.pre_ops.iter().chain(ir.post_ops.iter()) {
            if live[op.dst] {
                for a in &op.args {
                    if let Src::Reg(r) = a {
                        if !live[*r] {
                            live[*r] = true;
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let before = ir.pre_ops.len() + ir.post_ops.len();
    ir.pre_ops.retain(|o| live[o.dst]);
    ir.post_ops.retain(|o| live[o.dst]);
    let removed = before - (ir.pre_ops.len() + ir.post_ops.len());
    stats.dead_removed += removed;
    removed > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{execute, FilterCheck, LaneType, OutputSpec};
    use adaptvm_storage::array::Array;
    use adaptvm_storage::scalar::ScalarType;

    fn out(src: Src) -> Vec<OutputSpec> {
        vec![OutputSpec::Array {
            name: "out".into(),
            src,
            compacted: false,
            out_ty: ScalarType::I64,
        }]
    }

    fn op(op_: ScalarOp, dst: usize, args: Vec<Src>) -> TraceOp {
        TraceOp { op: op_, dst, args }
    }

    #[test]
    fn folds_constants() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                op(ScalarOp::Mul, 0, vec![Src::ConstI(2), Src::ConstI(3)]),
                op(ScalarOp::Add, 1, vec![Src::Input(0), Src::Reg(0)]),
            ],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(1)),
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.folded, 1);
        assert_eq!(opt.pre_ops.len(), 1);
        assert_eq!(opt.pre_ops[0].args[1], Src::ConstI(6));
        let x = Array::from(vec![10i64]);
        assert_eq!(
            execute(&opt, &[&x], None).unwrap().arrays[0].1,
            Array::from(vec![16i64])
        );
    }

    #[test]
    fn simplifies_identities() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                op(ScalarOp::Mul, 0, vec![Src::Input(0), Src::ConstI(1)]),
                op(ScalarOp::Add, 1, vec![Src::Reg(0), Src::ConstI(0)]),
            ],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(1)),
        };
        let (opt, stats) = optimize(ir);
        assert!(stats.simplified >= 2, "{stats:?}");
        assert!(opt.pre_ops.is_empty());
        assert_eq!(
            opt.outputs[0],
            OutputSpec::Array {
                name: "out".into(),
                src: Src::Input(0),
                compacted: false,
                out_ty: ScalarType::I64
            }
        );
    }

    #[test]
    fn mul_by_zero_collapses() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 1,
            pre_ops: vec![op(ScalarOp::Mul, 0, vec![Src::Input(0), Src::ConstI(0)])],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(0)),
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.simplified, 1);
        assert!(opt.pre_ops.is_empty());
    }

    #[test]
    fn cse_deduplicates() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 3,
            pre_ops: vec![
                op(ScalarOp::Mul, 0, vec![Src::Input(0), Src::Input(0)]),
                op(ScalarOp::Mul, 1, vec![Src::Input(0), Src::Input(0)]),
                op(ScalarOp::Add, 2, vec![Src::Reg(0), Src::Reg(1)]),
            ],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(2)),
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.cse_hits, 1);
        assert_eq!(opt.pre_ops.len(), 2);
        let x = Array::from(vec![3i64]);
        assert_eq!(
            execute(&opt, &[&x], None).unwrap().arrays[0].1,
            Array::from(vec![18i64])
        );
    }

    #[test]
    fn dce_removes_unreachable() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                op(ScalarOp::Add, 0, vec![Src::Input(0), Src::ConstI(1)]),
                op(ScalarOp::Mul, 1, vec![Src::Input(0), Src::ConstI(2)]),
            ],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(1)),
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.dead_removed, 1);
        assert_eq!(opt.pre_ops.len(), 1);
        assert_eq!(opt.pre_ops[0].dst, 1);
    }

    #[test]
    fn filter_keeps_its_operands_alive() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 1,
            pre_ops: vec![op(ScalarOp::Mul, 0, vec![Src::Input(0), Src::ConstI(2)])],
            filter: Some(FilterCheck {
                op: ScalarOp::Gt,
                lhs: Src::Reg(0),
                rhs: Src::ConstI(0),
            }),
            post_ops: vec![],
            outputs: vec![OutputSpec::Sel {
                name: "t".into(),
                flow: "x".into(),
            }],
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.dead_removed, 0);
        assert_eq!(opt.pre_ops.len(), 1);
    }

    #[test]
    fn optimization_preserves_semantics() {
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 6,
            pre_ops: vec![
                op(ScalarOp::Mul, 0, vec![Src::Input(0), Src::ConstI(1)]),
                op(ScalarOp::Add, 1, vec![Src::Reg(0), Src::ConstI(0)]),
                op(ScalarOp::Mul, 2, vec![Src::Reg(1), Src::ConstI(2)]),
                op(ScalarOp::Mul, 3, vec![Src::ConstI(3), Src::ConstI(4)]),
                op(ScalarOp::Add, 4, vec![Src::Reg(2), Src::Reg(3)]),
                op(ScalarOp::Sub, 5, vec![Src::Input(0), Src::ConstI(99)]), // dead
            ],
            filter: None,
            post_ops: vec![],
            outputs: out(Src::Reg(4)),
        };
        let x = Array::from(vec![5i64, -1]);
        let before = execute(&ir, &[&x], None).unwrap();
        let (opt, stats) = optimize(ir);
        let after = execute(&opt, &[&x], None).unwrap();
        assert_eq!(before, after);
        assert!(opt.op_count() < 6);
        assert!(stats.iterations >= 2);
        assert!(stats.dead_removed >= 1);
    }

    #[test]
    fn float_folding() {
        let ir = TraceIr {
            lane: LaneType::F64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                op(ScalarOp::Sqrt, 0, vec![Src::ConstF(16.0)]),
                op(ScalarOp::Mul, 1, vec![Src::Input(0), Src::Reg(0)]),
            ],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "out".into(),
                src: Src::Reg(1),
                compacted: false,
                out_ty: ScalarType::F64,
            }],
        };
        let (opt, stats) = optimize(ir);
        assert_eq!(stats.folded, 1);
        assert_eq!(opt.pre_ops[0].args[1], Src::ConstF(4.0));
    }
}
