//! Linear-scan register allocation for the native backend.
//!
//! The allocator is deliberately architecture-neutral: it maps **live
//! intervals** (produced by the crate's SSA pass from a trace's value
//! definitions and last uses) onto an abstract pool of `pool` registers
//! plus unbounded stack slots. The native emitter decides what the pool
//! registers physically are (caller-saved GPRs for integer lanes, XMM
//! registers for float lanes).
//!
//! Two rules keep the generated code correct:
//!
//! * two intervals that are **live at the same time never share a
//!   register** (the invariant `tests/jit_native.rs` proptests), and
//! * an interval whose live range **crosses a helper-call site** is
//!   forced onto the stack (`needs_stack`), because every pool register
//!   is caller-saved under the SysV ABI the helpers are called with.
//!
//! Intervals are half-open positions `[start, end)` in the linearized
//! trace: a value defined at position `p` and last used at position `q`
//! has `start = p`, `end = q`. A use at position `p` and a definition at
//! the same position do not conflict — the emitter routes every operand
//! through scratch registers, so the operand is consumed before the
//! destination is written.

/// The live range of one SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Definition position in the linearized trace.
    pub start: u32,
    /// Last-use position (inclusive as a use; the interval is treated as
    /// `[start, end)` for conflict purposes — see module docs).
    pub end: u32,
    /// Forced to a stack slot (the range crosses a call that clobbers
    /// every pool register).
    pub needs_stack: bool,
}

impl Interval {
    /// Whether two intervals are simultaneously live.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Where a value lives for its whole life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Abstract pool register `0..pool`.
    Reg(u8),
    /// 8-byte stack slot index (frame-relative).
    Stack(u32),
}

/// The result of an allocation pass.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location per interval, in input order.
    pub locs: Vec<Loc>,
    /// Number of stack slots used.
    pub stack_slots: u32,
}

/// Linear-scan allocation of `intervals` onto `pool` registers.
///
/// Intervals may arrive in any order; they are processed by increasing
/// `start` (stable on ties). Intervals with `needs_stack` — and any
/// interval arriving while all pool registers are occupied — get a stack
/// slot. Stack slots are never reused across intervals (trace value
/// counts are small; simplicity wins over frame size).
pub fn allocate(intervals: &[Interval], pool: u8) -> Allocation {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| intervals[i].start);

    let mut locs = vec![Loc::Stack(0); intervals.len()];
    let mut stack_slots = 0u32;
    // Free registers, lowest first for deterministic output.
    let mut free: Vec<u8> = (0..pool).rev().collect();
    // Currently register-resident intervals: (end, reg).
    let mut active: Vec<(u32, u8)> = Vec::new();

    for &i in &order {
        let iv = intervals[i];
        // Expire intervals whose range ended at or before this start
        // (half-open ranges: end == start does not conflict).
        let mut k = 0;
        while k < active.len() {
            if active[k].0 <= iv.start {
                let (_, reg) = active.swap_remove(k);
                free.push(reg);
                free.sort_unstable_by(|a, b| b.cmp(a));
            } else {
                k += 1;
            }
        }
        if iv.needs_stack || iv.start == iv.end {
            // Call-crossing values live on the stack; zero-length
            // intervals (defined, never read) still need a store target.
            locs[i] = Loc::Stack(stack_slots);
            stack_slots += 1;
            continue;
        }
        match free.pop() {
            Some(reg) => {
                locs[i] = Loc::Reg(reg);
                active.push((iv.end, reg));
            }
            None => {
                locs[i] = Loc::Stack(stack_slots);
                stack_slots += 1;
            }
        }
    }
    Allocation { locs, stack_slots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u32, end: u32) -> Interval {
        Interval {
            start,
            end,
            needs_stack: false,
        }
    }

    #[test]
    fn disjoint_intervals_reuse_the_first_register() {
        let a = allocate(&[iv(0, 2), iv(2, 4), iv(4, 6)], 4);
        assert_eq!(a.locs, vec![Loc::Reg(0), Loc::Reg(0), Loc::Reg(0)]);
        assert_eq!(a.stack_slots, 0);
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let a = allocate(&[iv(0, 10), iv(1, 9), iv(2, 8)], 4);
        let regs: Vec<_> = a.locs.iter().collect();
        assert_eq!(
            regs,
            vec![&Loc::Reg(0), &Loc::Reg(1), &Loc::Reg(2)],
            "{a:?}"
        );
    }

    #[test]
    fn pool_exhaustion_spills_to_stack() {
        let ivs: Vec<Interval> = (0..5).map(|k| iv(k, 100)).collect();
        let a = allocate(&ivs, 3);
        let spilled = a.locs.iter().filter(|l| matches!(l, Loc::Stack(_))).count();
        assert_eq!(spilled, 2);
        assert_eq!(a.stack_slots, 2);
    }

    #[test]
    fn call_crossing_intervals_are_stack_forced() {
        let ivs = [
            Interval {
                start: 0,
                end: 10,
                needs_stack: true,
            },
            iv(1, 3),
        ];
        let a = allocate(&ivs, 4);
        assert_eq!(a.locs[0], Loc::Stack(0));
        assert_eq!(a.locs[1], Loc::Reg(0));
    }

    #[test]
    fn no_overlapping_pair_shares_a_register() {
        // A deterministic mini-stress; the full property lives in
        // tests/jit_native.rs as a proptest.
        let mut ivs = Vec::new();
        let mut x = 7u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (x >> 33) as u32 % 64;
            let len = ((x >> 20) as u32 % 8) + 1;
            ivs.push(iv(start, start + len));
        }
        let a = allocate(&ivs, 5);
        for i in 0..ivs.len() {
            for j in i + 1..ivs.len() {
                if let (Loc::Reg(ri), Loc::Reg(rj)) = (a.locs[i], a.locs[j]) {
                    if ivs[i].overlaps(&ivs[j]) {
                        assert_ne!(ri, rj, "{:?} vs {:?}", ivs[i], ivs[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn unread_values_get_stack_slots() {
        let a = allocate(&[iv(3, 3)], 4);
        assert_eq!(a.locs[0], Loc::Stack(0));
    }
}
