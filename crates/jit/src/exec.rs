//! Native trace execution: W^X code buffers, the call-frame contract
//! with generated code, and guard-based deopt.
//!
//! ## W^X policy
//!
//! Generated code lives in an anonymous private mapping that is never
//! writable and executable at the same time: `mmap(PROT_READ|PROT_WRITE)`
//! → copy the code in → `mprotect(PROT_READ|PROT_EXEC)`. The mapping is
//! unmapped on drop. x86 keeps instruction caches coherent with stores,
//! so no explicit flush is needed after the protection flip.
//!
//! ## Deopt contract
//!
//! The generated function writes **only** into caller-owned buffers
//! described by the `NativeCtx` ABI struct and returns a status: `0`
//! ok, `1` guard
//! budget exhausted, `2` output capacity exceeded. On any non-zero
//! status the caller discards every buffer and re-runs the packed
//! interpreter over the whole chunk — deopt is trivially clean because
//! no partial native state is ever observable. Inputs the native code
//! cannot consume (non-numeric arrays) deopt before the call for the
//! same reason ([`NativeDeopt::Type`]).
//!
//! Everything architecture-specific is behind
//! `cfg(all(target_arch = "x86_64", target_os = "linux"))`; on other
//! hosts `compile_native` returns `None` and the engine stays on the
//! interpreted-trace tier.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// Why a native execution refused to produce a result. The caller falls
/// back to the packed interpreter, which either produces the
/// bit-identical answer or surfaces the same error the interpreted tier
/// always produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeDeopt {
    /// The per-lane guard budget hit zero (see
    /// [`set_native_guard_budget`]).
    GuardBudget,
    /// An output buffer reached its capacity guard.
    Capacity,
    /// Inputs not representable in the trace's lane domain.
    Type,
}

// ---------------------------------------------------------------------
// Test hooks (present on every target so test code is portable).

/// Armed guard budget; -1 = disarmed.
static GUARD_BUDGET: AtomicI64 = AtomicI64::new(-1);
/// Armed output-capacity limit; -1 = disarmed.
static CAP_LIMIT: AtomicI64 = AtomicI64::new(-1);

/// Test hook: native code decrements a per-lane budget and deopts when
/// it reaches zero ("fail after N lanes"). `None` disarms (the default:
/// an effectively unlimited budget).
pub fn set_native_guard_budget(lanes: Option<u64>) {
    GUARD_BUDGET.store(
        lanes.map_or(-1, |b| b.min(i64::MAX as u64) as i64),
        Ordering::SeqCst,
    );
}

/// Test hook: caps every native output buffer at `len` entries so
/// capacity guards fire deterministically. `None` disarms.
pub fn set_native_capacity_limit(len: Option<u64>) {
    CAP_LIMIT.store(
        len.map_or(-1, |b| b.min(i64::MAX as u64) as i64),
        Ordering::SeqCst,
    );
}

fn guard_budget() -> Option<u64> {
    let v = GUARD_BUDGET.load(Ordering::SeqCst);
    (v >= 0).then_some(v as u64)
}

fn capacity_limit() -> Option<u64> {
    let v = CAP_LIMIT.load(Ordering::SeqCst);
    (v >= 0).then_some(v as u64)
}

/// Whether the native tier can run here: x86-64 Linux, not force-disabled
/// via `ADAPTVM_NATIVE=0`. Cached after the first call.
pub fn native_available() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        cfg!(all(target_arch = "x86_64", target_os = "linux"))
            && !matches!(std::env::var("ADAPTVM_NATIVE"), Ok(v) if v == "0")
    })
}

pub use imp::NativeTrace;
pub(crate) use imp::{compile_native, run_native};

/// Serializes unit tests that arm the global hooks (or depend on them
/// being disarmed) so they cannot race under the parallel test runner.
#[cfg(test)]
pub(crate) fn test_hook_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use super::{capacity_limit, guard_budget, native_available, NativeDeopt};
    use crate::emit::{emit_trace, Helpers, GPR_POOL_SIZE, XMM_POOL_SIZE};
    use crate::ir::{assemble, LaneNum, LaneType, OutputSpec, TraceIr, TraceResult};
    use crate::regalloc::allocate;
    use crate::ssa;
    use adaptvm_storage::array::Array;
    use std::ffi::c_void;

    // ----------------------------------------------------------------
    // W^X executable buffer.

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    const MAP_ANONYMOUS: i32 = 0x20;
    const PAGE: usize = 4096;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    struct ExecBuf {
        ptr: *mut u8,
        len: usize,
    }

    impl ExecBuf {
        fn new(code: &[u8]) -> Option<ExecBuf> {
            let len = code.len().max(1).div_ceil(PAGE) * PAGE;
            unsafe {
                let p = mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if p as isize == -1 || p.is_null() {
                    return None;
                }
                std::ptr::copy_nonoverlapping(code.as_ptr(), p as *mut u8, code.len());
                if mprotect(p, len, PROT_READ | PROT_EXEC) != 0 {
                    munmap(p, len);
                    return None;
                }
                Some(ExecBuf {
                    ptr: p as *mut u8,
                    len,
                })
            }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    // SAFETY: the mapping is immutable (RX) after construction and owned
    // exclusively by this value; executing it from any thread is safe.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    // ----------------------------------------------------------------
    // The call-frame contract with generated code.

    /// Everything the generated loop touches, passed by pointer in rdi.
    /// Field offsets are pinned against the `CTX_*` constants the
    /// emitter uses (see the test below).
    #[repr(C)]
    pub(crate) struct NativeCtx {
        /// Widened input arrays (`*const T` each), one per trace input.
        inputs: *const *const u8,
        /// Lane count.
        n: u64,
        /// Output array buffers (`*mut T` each, capacity ≥ `n`).
        arr_ptrs: *const *mut u8,
        /// Elements written per array buffer.
        arr_counts: *mut u64,
        /// Capacity guard shared by all array buffers.
        arr_cap: u64,
        /// Selection-vector buffers (capacity ≥ `n`).
        sel_ptrs: *const *mut u32,
        sel_counts: *mut u64,
        /// Fold cells, stride 16: `[acc_bits, count]` per fold.
        folds: *mut u64,
        /// Remaining lanes before a forced guard deopt.
        guard_budget: i64,
    }

    /// A compiled native trace: executable machine code implementing the
    /// full fused loop of one [`TraceIr`].
    pub struct NativeTrace {
        buf: ExecBuf,
        code_len: usize,
    }

    impl NativeTrace {
        fn entry(&self) -> extern "C" fn(*mut NativeCtx) -> i64 {
            // SAFETY: buf holds a complete function emitted by
            // `emit_trace` with exactly this signature.
            unsafe { std::mem::transmute(self.buf.ptr) }
        }

        /// Emitted code size in bytes (for reporting/inspection).
        pub fn code_len(&self) -> usize {
            self.code_len
        }
    }

    impl std::fmt::Debug for NativeTrace {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("NativeTrace")
                .field("code_len", &self.code_len)
                .finish()
        }
    }

    // ----------------------------------------------------------------
    // Helpers the generated code calls (exact Rust semantics).

    extern "C" fn h_i64_div(a: i64, b: i64) -> i64 {
        if b == 0 {
            0
        } else {
            a.wrapping_div(b)
        }
    }
    extern "C" fn h_i64_rem(a: i64, b: i64) -> i64 {
        if b == 0 {
            0
        } else {
            a.wrapping_rem(b)
        }
    }
    extern "C" fn h_f64_rem(a: f64, b: f64) -> f64 {
        a % b
    }
    extern "C" fn h_f64_min(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    extern "C" fn h_f64_max(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    extern "C" fn h_f64_cast_i8(a: f64) -> f64 {
        a as i8 as f64
    }
    extern "C" fn h_f64_cast_i16(a: f64) -> f64 {
        a as i16 as f64
    }
    extern "C" fn h_f64_cast_i32(a: f64) -> f64 {
        a as i32 as f64
    }

    fn helpers() -> Helpers {
        Helpers {
            i64_div: h_i64_div as extern "C" fn(i64, i64) -> i64 as usize as u64,
            i64_rem: h_i64_rem as extern "C" fn(i64, i64) -> i64 as usize as u64,
            f64_rem: h_f64_rem as extern "C" fn(f64, f64) -> f64 as usize as u64,
            f64_min: h_f64_min as extern "C" fn(f64, f64) -> f64 as usize as u64,
            f64_max: h_f64_max as extern "C" fn(f64, f64) -> f64 as usize as u64,
            f64_cast_i8: h_f64_cast_i8 as extern "C" fn(f64) -> f64 as usize as u64,
            f64_cast_i16: h_f64_cast_i16 as extern "C" fn(f64) -> f64 as usize as u64,
            f64_cast_i32: h_f64_cast_i32 as extern "C" fn(f64) -> f64 as usize as u64,
        }
    }

    // ----------------------------------------------------------------
    // Compile + run.

    /// Lower a trace to native code, or `None` when it is not eligible
    /// (unsupported op, read-before-write registers, inconvertible fold
    /// init, tier disabled). `None` is never an error — the engine keeps
    /// the interpreted-trace tier.
    pub(crate) fn compile_native(ir: &TraceIr) -> Option<NativeTrace> {
        if !native_available() {
            return None;
        }
        let p = ssa::build(ir).ok()?;
        for o in &ir.outputs {
            if let OutputSpec::Fold { init, .. } = o {
                match ir.lane {
                    LaneType::I64 => {
                        <i64 as LaneNum>::from_scalar(init)?;
                    }
                    LaneType::F64 => {
                        <f64 as LaneNum>::from_scalar(init)?;
                    }
                }
            }
        }
        let pool = match ir.lane {
            LaneType::I64 => GPR_POOL_SIZE,
            LaneType::F64 => XMM_POOL_SIZE,
        };
        let alloc = allocate(&p.intervals, pool);
        let code = emit_trace(&p, &alloc, &helpers());
        let buf = ExecBuf::new(&code)?;
        Some(NativeTrace {
            code_len: code.len(),
            buf,
        })
    }

    /// Lane values as raw bits, for moving accumulators across the ABI.
    trait LaneBits: Copy {
        fn to_bits_u64(self) -> u64;
        fn from_bits_u64(b: u64) -> Self;
    }
    impl LaneBits for i64 {
        fn to_bits_u64(self) -> u64 {
            self as u64
        }
        fn from_bits_u64(b: u64) -> i64 {
            b as i64
        }
    }
    impl LaneBits for f64 {
        fn to_bits_u64(self) -> u64 {
            self.to_bits()
        }
        fn from_bits_u64(b: u64) -> f64 {
            f64::from_bits(b)
        }
    }

    /// Run the native trace over a chunk (no pending selection — the
    /// gathered path stays interpreted).
    pub(crate) fn run_native(
        ir: &TraceIr,
        nt: &NativeTrace,
        inputs: &[&Array],
    ) -> Result<TraceResult, NativeDeopt> {
        if inputs.len() != ir.inputs.len() {
            return Err(NativeDeopt::Type);
        }
        let n = inputs.first().map_or(0, |a| a.len());
        if inputs.iter().any(|a| a.len() != n) {
            return Err(NativeDeopt::Type);
        }
        match ir.lane {
            LaneType::I64 => run_typed::<i64>(ir, nt, inputs, n),
            LaneType::F64 => run_typed::<f64>(ir, nt, inputs, n),
        }
    }

    fn run_typed<T: LaneNum + LaneBits>(
        ir: &TraceIr,
        nt: &NativeTrace,
        inputs: &[&Array],
        n: usize,
    ) -> Result<TraceResult, NativeDeopt> {
        // Widen inputs to the lane type (borrow when already native).
        let mut owned: Vec<Vec<T>> = Vec::new();
        let mut in_ptrs: Vec<*const u8> = Vec::with_capacity(inputs.len());
        for a in inputs {
            match T::view(a) {
                Some(s) => in_ptrs.push(s.as_ptr() as *const u8),
                None => {
                    let w = T::widen(a).ok_or(NativeDeopt::Type)?;
                    in_ptrs.push(w.as_ptr() as *const u8);
                    owned.push(w);
                }
            }
        }
        // Output buffers, fixed capacity n (one push per lane maximum).
        let mut arr_bufs: Vec<Vec<T>> = Vec::new();
        let mut sel_bufs: Vec<Vec<u32>> = Vec::new();
        let mut fold_cells: Vec<u64> = Vec::new();
        for o in &ir.outputs {
            match o {
                OutputSpec::Array { .. } => arr_bufs.push(Vec::with_capacity(n)),
                OutputSpec::Sel { .. } => sel_bufs.push(Vec::with_capacity(n)),
                OutputSpec::Fold { init, .. } => {
                    let iv = T::from_scalar(init).ok_or(NativeDeopt::Type)?;
                    fold_cells.push(iv.to_bits_u64());
                    fold_cells.push(init.as_i64().unwrap_or(0) as u64);
                }
            }
        }
        let arr_ptrs: Vec<*mut u8> = arr_bufs
            .iter_mut()
            .map(|b| b.as_mut_ptr() as *mut u8)
            .collect();
        let mut arr_counts: Vec<u64> = vec![0; arr_bufs.len()];
        let sel_ptrs: Vec<*mut u32> = sel_bufs.iter_mut().map(|b| b.as_mut_ptr()).collect();
        let mut sel_counts: Vec<u64> = vec![0; sel_bufs.len()];
        let mut ctx = NativeCtx {
            inputs: in_ptrs.as_ptr(),
            n: n as u64,
            arr_ptrs: arr_ptrs.as_ptr(),
            arr_counts: arr_counts.as_mut_ptr(),
            arr_cap: capacity_limit().map_or(n as u64, |c| c.min(n as u64)),
            sel_ptrs: sel_ptrs.as_ptr(),
            sel_counts: sel_counts.as_mut_ptr(),
            folds: fold_cells.as_mut_ptr(),
            guard_budget: guard_budget().map_or(i64::MAX, |b| b.min(i64::MAX as u64) as i64),
        };
        let status = (nt.entry())(&mut ctx);
        match status {
            0 => {}
            1 => return Err(NativeDeopt::GuardBudget),
            2 => return Err(NativeDeopt::Capacity),
            _ => return Err(NativeDeopt::Type),
        }
        for (buf, &c) in arr_bufs.iter_mut().zip(&arr_counts) {
            if c as usize > n {
                return Err(NativeDeopt::Capacity);
            }
            // SAFETY: generated code wrote exactly `c ≤ capacity`
            // elements into this buffer.
            unsafe { buf.set_len(c as usize) };
        }
        for (buf, &c) in sel_bufs.iter_mut().zip(&sel_counts) {
            if c as usize > n {
                return Err(NativeDeopt::Capacity);
            }
            // SAFETY: as above; at most one index per lane.
            unsafe { buf.set_len(c as usize) };
        }
        let accs: Vec<(T, i64)> = fold_cells
            .chunks_exact(2)
            .map(|c| (T::from_bits_u64(c[0]), c[1] as i64))
            .collect();
        Ok(assemble(ir, arr_bufs, sel_bufs, accs))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::emit::{
            CTX_ARR_CAP, CTX_ARR_COUNTS, CTX_ARR_PTRS, CTX_BUDGET, CTX_FOLDS, CTX_INPUTS, CTX_N,
            CTX_SEL_COUNTS, CTX_SEL_PTRS,
        };
        use crate::ir::{execute, FilterCheck, LaneType, Src, TraceOp};
        use adaptvm_dsl::ast::{FoldFn, ScalarOp};
        use adaptvm_storage::scalar::{Scalar, ScalarType};
        use std::mem::offset_of;

        #[test]
        fn ctx_offsets_match_the_emitter() {
            assert_eq!(offset_of!(NativeCtx, inputs), CTX_INPUTS as usize);
            assert_eq!(offset_of!(NativeCtx, n), CTX_N as usize);
            assert_eq!(offset_of!(NativeCtx, arr_ptrs), CTX_ARR_PTRS as usize);
            assert_eq!(offset_of!(NativeCtx, arr_counts), CTX_ARR_COUNTS as usize);
            assert_eq!(offset_of!(NativeCtx, arr_cap), CTX_ARR_CAP as usize);
            assert_eq!(offset_of!(NativeCtx, sel_ptrs), CTX_SEL_PTRS as usize);
            assert_eq!(offset_of!(NativeCtx, sel_counts), CTX_SEL_COUNTS as usize);
            assert_eq!(offset_of!(NativeCtx, folds), CTX_FOLDS as usize);
            assert_eq!(offset_of!(NativeCtx, guard_budget), CTX_BUDGET as usize);
        }

        /// i64: y = x*3 + 1; filter y > 10; compacted out, sel, guarded
        /// sum, unguarded min, count.
        fn i64_pipeline_ir() -> TraceIr {
            TraceIr {
                lane: LaneType::I64,
                inputs: vec!["x".into()],
                n_regs: 2,
                pre_ops: vec![
                    TraceOp {
                        op: ScalarOp::Mul,
                        dst: 0,
                        args: vec![Src::Input(0), Src::ConstI(3)],
                    },
                    TraceOp {
                        op: ScalarOp::Add,
                        dst: 1,
                        args: vec![Src::Reg(0), Src::ConstI(1)],
                    },
                ],
                filter: Some(FilterCheck {
                    op: ScalarOp::Gt,
                    lhs: Src::Reg(1),
                    rhs: Src::ConstI(10),
                }),
                post_ops: vec![],
                outputs: vec![
                    OutputSpec::Array {
                        name: "y".into(),
                        src: Src::Reg(1),
                        compacted: true,
                        out_ty: ScalarType::I64,
                    },
                    OutputSpec::Sel {
                        name: "s".into(),
                        flow: "x".into(),
                    },
                    OutputSpec::Fold {
                        name: "total".into(),
                        f: FoldFn::Sum,
                        init: Scalar::I64(0),
                        src: Src::Reg(1),
                        guarded: true,
                    },
                    OutputSpec::Fold {
                        name: "lo".into(),
                        f: FoldFn::Min,
                        init: Scalar::I64(i64::MAX),
                        src: Src::Reg(0),
                        guarded: false,
                    },
                    OutputSpec::Fold {
                        name: "hits".into(),
                        f: FoldFn::Count,
                        init: Scalar::I64(0),
                        src: Src::Reg(1),
                        guarded: true,
                    },
                ],
            }
        }

        /// f64 with helper-call ops: y = sqrt(|x|) + x % 2.5, filtered,
        /// with guarded sum and unguarded max.
        fn f64_pipeline_ir() -> TraceIr {
            TraceIr {
                lane: LaneType::F64,
                inputs: vec!["x".into()],
                n_regs: 4,
                pre_ops: vec![
                    TraceOp {
                        op: ScalarOp::Abs,
                        dst: 0,
                        args: vec![Src::Input(0)],
                    },
                    TraceOp {
                        op: ScalarOp::Sqrt,
                        dst: 1,
                        args: vec![Src::Reg(0)],
                    },
                    TraceOp {
                        op: ScalarOp::Rem,
                        dst: 2,
                        args: vec![Src::Input(0), Src::ConstF(2.5)],
                    },
                    TraceOp {
                        op: ScalarOp::Add,
                        dst: 3,
                        args: vec![Src::Reg(1), Src::Reg(2)],
                    },
                ],
                filter: Some(FilterCheck {
                    op: ScalarOp::Lt,
                    lhs: Src::Input(0),
                    rhs: Src::ConstF(50.0),
                }),
                post_ops: vec![],
                outputs: vec![
                    OutputSpec::Array {
                        name: "y".into(),
                        src: Src::Reg(3),
                        compacted: true,
                        out_ty: ScalarType::F64,
                    },
                    OutputSpec::Fold {
                        name: "total".into(),
                        f: FoldFn::Sum,
                        init: Scalar::F64(0.0),
                        src: Src::Reg(3),
                        guarded: true,
                    },
                    OutputSpec::Fold {
                        name: "hi".into(),
                        f: FoldFn::Max,
                        init: Scalar::F64(f64::NEG_INFINITY),
                        src: Src::Reg(1),
                        guarded: false,
                    },
                ],
            }
        }

        fn assert_native_matches(ir: &TraceIr, inputs: &[&Array]) {
            let nt = compile_native(ir).expect("trace should lower natively");
            let native = run_native(ir, &nt, inputs).expect("clean native run");
            let interp = execute(ir, inputs, None).unwrap();
            assert_eq!(
                format!("{interp:?}"),
                format!("{native:?}"),
                "native result must be bit-identical to the interpreter"
            );
        }

        #[test]
        fn native_matches_interpreter_on_i64_pipeline() {
            let _g = super::super::test_hook_guard();
            let xs: Vec<i64> = (-20..80).map(|k| k * 7 % 23).collect();
            assert_native_matches(&i64_pipeline_ir(), &[&Array::from(xs)]);
        }

        #[test]
        fn native_matches_interpreter_on_f64_helper_ops() {
            let _g = super::super::test_hook_guard();
            let mut xs: Vec<f64> = (0..64).map(|k| (k as f64 - 17.0) * 1.375).collect();
            xs.push(f64::NAN);
            xs.push(-0.0);
            xs.push(f64::INFINITY);
            assert_native_matches(&f64_pipeline_ir(), &[&Array::from(xs)]);
        }

        #[test]
        fn empty_chunk_runs_clean() {
            let _g = super::super::test_hook_guard();
            assert_native_matches(&i64_pipeline_ir(), &[&Array::from(Vec::<i64>::new())]);
        }

        #[test]
        fn guard_budget_forces_deopt() {
            let _g = super::super::test_hook_guard();
            let ir = i64_pipeline_ir();
            let nt = compile_native(&ir).unwrap();
            let xs = Array::from((0..32).collect::<Vec<i64>>());
            super::super::set_native_guard_budget(Some(8));
            let r = run_native(&ir, &nt, &[&xs]);
            super::super::set_native_guard_budget(None);
            assert_eq!(r.unwrap_err(), NativeDeopt::GuardBudget);
            // Disarmed again: the same chunk runs clean.
            assert!(run_native(&ir, &nt, &[&xs]).is_ok());
        }

        #[test]
        fn capacity_limit_forces_deopt() {
            let _g = super::super::test_hook_guard();
            let ir = i64_pipeline_ir();
            let nt = compile_native(&ir).unwrap();
            // All 32 lanes pass the filter but only 4 slots are allowed.
            let xs = Array::from((100..132).collect::<Vec<i64>>());
            super::super::set_native_capacity_limit(Some(4));
            let r = run_native(&ir, &nt, &[&xs]);
            super::super::set_native_capacity_limit(None);
            assert_eq!(r.unwrap_err(), NativeDeopt::Capacity);
            assert!(run_native(&ir, &nt, &[&xs]).is_ok());
        }

        #[test]
        fn non_numeric_inputs_type_deopt() {
            let _g = super::super::test_hook_guard();
            let ir = i64_pipeline_ir();
            let nt = compile_native(&ir).unwrap();
            let xs = Array::from(vec!["a".to_string(), "b".to_string()]);
            assert_eq!(run_native(&ir, &nt, &[&xs]), Err(NativeDeopt::Type));
        }

        #[test]
        fn mismatched_input_arity_type_deopts() {
            let _g = super::super::test_hook_guard();
            let ir = i64_pipeline_ir();
            let nt = compile_native(&ir).unwrap();
            let a = Array::from(vec![1i64, 2]);
            let b = Array::from(vec![3i64]);
            assert_eq!(run_native(&ir, &nt, &[]), Err(NativeDeopt::Type));
            assert_eq!(run_native(&ir, &nt, &[&a, &b]), Err(NativeDeopt::Type));
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod imp {
    use super::NativeDeopt;
    use crate::ir::{TraceIr, TraceResult};
    use adaptvm_storage::array::Array;

    /// Placeholder on hosts without a native backend (never constructed).
    #[derive(Debug)]
    pub struct NativeTrace {
        _private: std::convert::Infallible,
    }

    impl NativeTrace {
        /// Emitted code size in bytes (uninhabited — never called).
        pub fn code_len(&self) -> usize {
            match self._private {}
        }
    }

    pub(crate) fn compile_native(_ir: &TraceIr) -> Option<NativeTrace> {
        None
    }

    pub(crate) fn run_native(
        _ir: &TraceIr,
        _nt: &NativeTrace,
        _inputs: &[&Array],
    ) -> Result<TraceResult, NativeDeopt> {
        Err(NativeDeopt::Type)
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;

    #[test]
    fn hooks_arm_and_disarm() {
        let _g = test_hook_guard();
        set_native_guard_budget(Some(3));
        assert_eq!(super::guard_budget(), Some(3));
        set_native_guard_budget(None);
        assert_eq!(super::guard_budget(), None);
        set_native_capacity_limit(Some(0));
        assert_eq!(super::capacity_limit(), Some(0));
        set_native_capacity_limit(None);
        assert_eq!(super::capacity_limit(), None);
    }
}
