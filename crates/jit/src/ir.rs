//! Trace IR: the SSA-over-lanes representation of a compiled fragment, and
//! its fused single-pass executor.
//!
//! A trace models what generated machine code for a fragment does:
//!
//! ```text
//! for each lane i (or each selected lane):
//!     r… = pre_ops(inputs[i])          // unguarded computation
//!     if filter(r…) {                  // at most one filter guard
//!         r… = post_ops(r…)            // guarded computation
//!         emit compacted outputs, bump fold accumulators, record i
//!     }
//!     emit dense outputs
//! ```
//!
//! No intermediate chunk ever touches memory — the paper's deforestation
//! payoff — and the filter guard turns the trace into a tuple-at-a-time
//! pipeline when it spans the whole loop body.
//!
//! Lanes are `i64` or `f64` ([`LaneType`]); narrower integer inputs are
//! widened once per chunk on entry, and outputs are narrowed back to their
//! declared type (which is how compact-data-type traces keep their narrow
//! types at the boundaries). Booleans travel as 0/1 in lane domain.

use adaptvm_dsl::ast::{FoldFn, ScalarOp};
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::{Scalar, ScalarType};
use adaptvm_storage::sel::SelVec;

use crate::error::JitError;

/// Numeric lane domain of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneType {
    /// Exact integer lanes.
    I64,
    /// Floating-point lanes.
    F64,
}

/// An operand of a trace operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Src {
    /// The `i`-th trace input (widened to the lane type).
    Input(usize),
    /// An SSA register written by an earlier op.
    Reg(usize),
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
}

/// One lane-wise operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOp {
    /// The scalar operation.
    pub op: ScalarOp,
    /// Destination register.
    pub dst: usize,
    /// Operands (arity matches `op`).
    pub args: Vec<Src>,
}

/// The (single) filter guard of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCheck {
    /// Comparison operation.
    pub op: ScalarOp,
    /// Left operand.
    pub lhs: Src,
    /// Right operand.
    pub rhs: Src,
}

/// One declared output of a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputSpec {
    /// A computed array, bound to `name` in the VM environment.
    Array {
        /// Binding name.
        name: String,
        /// Value source.
        src: Src,
        /// When true, emit only lanes passing the filter (pre-condensed).
        compacted: bool,
        /// Declared element type (lanes are narrowed to it).
        out_ty: ScalarType,
    },
    /// The filter's selection vector, bound to `name`; the selection
    /// applies to the flow variable `flow`.
    Sel {
        /// Binding name of the filtered flow.
        name: String,
        /// The variable carrying the physical data being selected.
        flow: String,
    },
    /// A fold accumulated over lanes.
    Fold {
        /// Binding name.
        name: String,
        /// Reduction function (sum/min/max/count).
        f: FoldFn,
        /// Initial value.
        init: Scalar,
        /// Value source per lane.
        src: Src,
        /// When true, accumulate only lanes passing the filter (the fold's
        /// input is downstream of the filter); when false, every lane.
        guarded: bool,
    },
}

impl OutputSpec {
    /// The binding name this output produces.
    pub fn name(&self) -> &str {
        match self {
            OutputSpec::Array { name, .. }
            | OutputSpec::Sel { name, .. }
            | OutputSpec::Fold { name, .. } => name,
        }
    }
}

/// A complete trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceIr {
    /// Lane domain.
    pub lane: LaneType,
    /// Input variable names (`Src::Input(i)` refers to `inputs[i]`).
    pub inputs: Vec<String>,
    /// Number of SSA registers.
    pub n_regs: usize,
    /// Unguarded operations.
    pub pre_ops: Vec<TraceOp>,
    /// Optional filter guard.
    pub filter: Option<FilterCheck>,
    /// Operations guarded by the filter.
    pub post_ops: Vec<TraceOp>,
    /// Declared outputs.
    pub outputs: Vec<OutputSpec>,
}

impl TraceIr {
    /// Total operation count (used by the compile-cost model).
    pub fn op_count(&self) -> usize {
        self.pre_ops.len() + self.post_ops.len() + usize::from(self.filter.is_some())
    }

    /// A stable fingerprint of the trace structure (FNV-1a).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(match self.lane {
            LaneType::I64 => 1,
            LaneType::F64 => 2,
        });
        eat(self.inputs.len() as u64);
        let eat_src = |eat: &mut dyn FnMut(u64), s: &Src| match s {
            Src::Input(i) => {
                eat(3);
                eat(*i as u64);
            }
            Src::Reg(r) => {
                eat(4);
                eat(*r as u64);
            }
            Src::ConstI(v) => {
                eat(5);
                eat(*v as u64);
            }
            Src::ConstF(v) => {
                eat(6);
                eat(v.to_bits());
            }
        };
        for ops in [&self.pre_ops, &self.post_ops] {
            for op in ops {
                eat(op.op.name().len() as u64);
                eat(op.op.name().as_bytes()[0] as u64);
                eat(op.dst as u64);
                for a in &op.args {
                    eat_src(&mut eat, a);
                }
            }
        }
        if let Some(fc) = &self.filter {
            eat(99);
            eat(fc.op.name().as_bytes()[0] as u64);
            eat_src(&mut eat, &fc.lhs);
            eat_src(&mut eat, &fc.rhs);
        }
        for o in &self.outputs {
            eat(o.name().len() as u64);
        }
        h
    }
}

/// The results of one trace execution over a chunk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceResult {
    /// Computed arrays (dense or compacted).
    pub arrays: Vec<(String, Array)>,
    /// Selections: (binding name, flow variable, selection).
    pub sels: Vec<(String, String, SelVec)>,
    /// Fold results.
    pub scalars: Vec<(String, Scalar)>,
}

// ---------------------------------------------------------------------
// Execution.
//
// A trace is **packed once at compile time** — operands resolved to input
// indices / register indices / lane-domain constants, opcodes validated —
// and then executed with a **block-vectorized fused loop**: lanes are
// processed in L1-resident blocks of [`BLK`] elements, each operation
// runs as one tight (auto-vectorizable) loop over the block's register
// file, and filter masks / compacted outputs / fold accumulators are
// applied blockwise. This keeps the SIMD friendliness of vectorized
// execution *and* the no-materialization property of compiled code — the
// combination the paper is after (§I: HyPer-style static code "lacks the
// ability to fully take advantage of hardware parallelism such as SIMD").
//
// A pending-selection (`candidates`) execution falls back to a per-lane
// loop, which is exactly the selective regime where gather-style access
// defeats SIMD anyway.

/// Lanes per execution block (fits the register file of any realistic
/// fragment in L1).
const BLK: usize = 256;

/// Dense internal opcode (validated at pack time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum K {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Neg,
    Abs,
    Sqrt,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    Hash,
    CastI8,
    CastI16,
    CastI32,
    CastBool,
    Ident,
}

/// A packed operand: pre-resolved input index, register index, or constant
/// in the lane domain.
#[derive(Debug, Clone, Copy)]
enum PSrc<T> {
    In(u32),
    Reg(u32),
    Const(T),
}

/// A packed lane operation.
#[derive(Debug, Clone, Copy)]
struct LOp<T> {
    k: K,
    a: PSrc<T>,
    b: PSrc<T>,
    dst: u32,
}

/// A fully packed, validated trace program over one lane type.
#[derive(Debug, Clone)]
/// A packed, validated program over one lane type (opaque).
pub struct Packed<T> {
    pre: Vec<LOp<T>>,
    post: Vec<LOp<T>>,
    filter: Option<(K, PSrc<T>, PSrc<T>)>,
    dense: Vec<(usize, PSrc<T>)>,
    compact: Vec<(usize, PSrc<T>)>,
    sel_slots: Vec<usize>,
    folds: Vec<(usize, FoldFn, PSrc<T>, bool)>,
    inits: Vec<(T, i64)>,
    n_regs: usize,
    arr_count: usize,
    sel_count: usize,
}

/// The packed program, tagged by lane type.
#[derive(Debug, Clone)]
pub enum PackedProgram {
    /// Integer lanes.
    I64(Packed<i64>),
    /// Float lanes.
    F64(Packed<f64>),
}

/// Lane-domain arithmetic, monomorphized per lane type.
pub(crate) trait LaneNum: Copy + Default + PartialOrd + 'static {
    fn from_scalar(s: &Scalar) -> Option<Self>;
    fn from_i64c(v: i64) -> Self;
    fn from_f64c(v: f64) -> Self;
    /// True when this lane domain implements the opcode.
    fn supports(k: K) -> bool;
    /// Apply a (validated) opcode.
    fn apply(k: K, a: Self, b: Self) -> Self;
    fn fold_add(a: Self, b: Self) -> Self;
    fn to_scalar(self, init: &Scalar) -> Scalar;
    fn narrow(v: Vec<Self>, ty: ScalarType) -> Array;
    /// Borrow the payload when the array already has the lane type.
    fn view(a: &Array) -> Option<&[Self]>;
    /// Widen any compatible array to owned lanes.
    fn widen(a: &Array) -> Option<Vec<Self>>;
}

impl LaneNum for i64 {
    #[inline(always)]
    fn from_scalar(s: &Scalar) -> Option<i64> {
        s.as_i64()
    }
    #[inline(always)]
    fn from_i64c(v: i64) -> i64 {
        v
    }
    #[inline(always)]
    fn from_f64c(v: f64) -> i64 {
        v as i64
    }
    fn supports(k: K) -> bool {
        k != K::Sqrt
    }
    #[inline(always)]
    fn apply(k: K, a: i64, b: i64) -> i64 {
        match k {
            K::Add => a.wrapping_add(b),
            K::Sub => a.wrapping_sub(b),
            K::Mul => a.wrapping_mul(b),
            K::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            K::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            K::Min => a.min(b),
            K::Max => a.max(b),
            K::Neg => a.wrapping_neg(),
            K::Abs => a.wrapping_abs(),
            K::Sqrt => unreachable!("validated at pack time"),
            K::Eq => (a == b) as i64,
            K::Ne => (a != b) as i64,
            K::Lt => (a < b) as i64,
            K::Le => (a <= b) as i64,
            K::Gt => (a > b) as i64,
            K::Ge => (a >= b) as i64,
            K::And => ((a != 0) && (b != 0)) as i64,
            K::Or => ((a != 0) || (b != 0)) as i64,
            K::Not => (a == 0) as i64,
            K::Hash => adaptvm_kernels::map::hash_i64(a),
            K::CastI8 => a as i8 as i64,
            K::CastI16 => a as i16 as i64,
            K::CastI32 => a as i32 as i64,
            K::CastBool => (a != 0) as i64,
            K::Ident => a,
        }
    }
    #[inline(always)]
    fn fold_add(a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }
    fn to_scalar(self, init: &Scalar) -> Scalar {
        Scalar::int_of_type(
            self,
            init.scalar_type()
                .promote(ScalarType::I64)
                .unwrap_or(ScalarType::I64),
        )
    }
    fn narrow(v: Vec<i64>, ty: ScalarType) -> Array {
        match ty {
            ScalarType::I8 => Array::I8(v.iter().map(|&x| x as i8).collect()),
            ScalarType::I16 => Array::I16(v.iter().map(|&x| x as i16).collect()),
            ScalarType::I32 => Array::I32(v.iter().map(|&x| x as i32).collect()),
            ScalarType::F64 => Array::F64(v.iter().map(|&x| x as f64).collect()),
            ScalarType::Bool => Array::Bool(v.iter().map(|&x| x != 0).collect()),
            _ => Array::I64(v),
        }
    }
    fn view(a: &Array) -> Option<&[i64]> {
        a.as_i64()
    }
    fn widen(a: &Array) -> Option<Vec<i64>> {
        match a {
            Array::Bool(v) => Some(v.iter().map(|&b| b as i64).collect()),
            other => other.to_i64_vec(),
        }
    }
}

impl LaneNum for f64 {
    #[inline(always)]
    fn from_scalar(s: &Scalar) -> Option<f64> {
        s.as_f64()
    }
    #[inline(always)]
    fn from_i64c(v: i64) -> f64 {
        v as f64
    }
    #[inline(always)]
    fn from_f64c(v: f64) -> f64 {
        v
    }
    fn supports(k: K) -> bool {
        k != K::Hash
    }
    #[inline(always)]
    fn apply(k: K, a: f64, b: f64) -> f64 {
        match k {
            K::Add => a + b,
            K::Sub => a - b,
            K::Mul => a * b,
            K::Div => a / b,
            K::Rem => a % b,
            K::Min => a.min(b),
            K::Max => a.max(b),
            K::Neg => -a,
            K::Abs => a.abs(),
            K::Sqrt => a.sqrt(),
            K::Eq => (a == b) as i64 as f64,
            K::Ne => (a != b) as i64 as f64,
            K::Lt => (a < b) as i64 as f64,
            K::Le => (a <= b) as i64 as f64,
            K::Gt => (a > b) as i64 as f64,
            K::Ge => (a >= b) as i64 as f64,
            K::And => (((a != 0.0) && (b != 0.0)) as i64) as f64,
            K::Or => (((a != 0.0) || (b != 0.0)) as i64) as f64,
            K::Not => ((a == 0.0) as i64) as f64,
            K::Hash => unreachable!("validated at pack time"),
            K::CastI8 => a as i8 as f64,
            K::CastI16 => a as i16 as f64,
            K::CastI32 => a as i32 as f64,
            K::CastBool => ((a != 0.0) as i64) as f64,
            K::Ident => a,
        }
    }
    #[inline(always)]
    fn fold_add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn to_scalar(self, _init: &Scalar) -> Scalar {
        Scalar::F64(self)
    }
    fn narrow(v: Vec<f64>, ty: ScalarType) -> Array {
        match ty {
            ScalarType::I8 => Array::I8(v.iter().map(|&x| x as i8).collect()),
            ScalarType::I16 => Array::I16(v.iter().map(|&x| x as i16).collect()),
            ScalarType::I32 => Array::I32(v.iter().map(|&x| x as i32).collect()),
            ScalarType::I64 => Array::I64(v.iter().map(|&x| x as i64).collect()),
            ScalarType::Bool => Array::Bool(v.iter().map(|&x| x != 0.0).collect()),
            _ => Array::F64(v),
        }
    }
    fn view(a: &Array) -> Option<&[f64]> {
        a.as_f64()
    }
    fn widen(a: &Array) -> Option<Vec<f64>> {
        match a {
            Array::Bool(v) => Some(v.iter().map(|&b| b as i64 as f64).collect()),
            other => other.to_f64_vec(),
        }
    }
}

pub(crate) fn kind_of(op: ScalarOp) -> Result<K, JitError> {
    Ok(match op {
        ScalarOp::Add => K::Add,
        ScalarOp::Sub => K::Sub,
        ScalarOp::Mul => K::Mul,
        ScalarOp::Div => K::Div,
        ScalarOp::Rem => K::Rem,
        ScalarOp::Min => K::Min,
        ScalarOp::Max => K::Max,
        ScalarOp::Neg => K::Neg,
        ScalarOp::Abs => K::Abs,
        ScalarOp::Sqrt => K::Sqrt,
        ScalarOp::Eq => K::Eq,
        ScalarOp::Ne => K::Ne,
        ScalarOp::Lt => K::Lt,
        ScalarOp::Le => K::Le,
        ScalarOp::Gt => K::Gt,
        ScalarOp::Ge => K::Ge,
        ScalarOp::And => K::And,
        ScalarOp::Or => K::Or,
        ScalarOp::Not => K::Not,
        ScalarOp::Hash => K::Hash,
        ScalarOp::Cast(ScalarType::I8) => K::CastI8,
        ScalarOp::Cast(ScalarType::I16) => K::CastI16,
        ScalarOp::Cast(ScalarType::I32) => K::CastI32,
        ScalarOp::Cast(ScalarType::I64) | ScalarOp::Cast(ScalarType::F64) => K::Ident,
        ScalarOp::Cast(ScalarType::Bool) => K::CastBool,
        other => return Err(JitError::Unsupported(format!("{other:?} in trace"))),
    })
}

fn pack_src<T: LaneNum>(s: &Src, n_inputs: usize, n_regs: usize) -> Result<PSrc<T>, JitError> {
    Ok(match s {
        Src::Input(k) => {
            if *k >= n_inputs {
                return Err(JitError::Unresolved(format!("input #{k} out of range")));
            }
            PSrc::In(*k as u32)
        }
        Src::Reg(r) => {
            if *r >= n_regs {
                return Err(JitError::Unresolved(format!("register #{r} out of range")));
            }
            PSrc::Reg(*r as u32)
        }
        Src::ConstI(v) => PSrc::Const(T::from_i64c(*v)),
        Src::ConstF(v) => PSrc::Const(T::from_f64c(*v)),
    })
}

fn pack_ops<T: LaneNum>(
    ops: &[TraceOp],
    n_inputs: usize,
    n_regs: usize,
) -> Result<Vec<LOp<T>>, JitError> {
    ops.iter()
        .map(|op| {
            let k = kind_of(op.op)?;
            if !T::supports(k) {
                return Err(JitError::Unsupported(format!(
                    "{:?} in this lane domain",
                    op.op
                )));
            }
            if op.dst >= n_regs {
                return Err(JitError::Unresolved(format!(
                    "destination register #{} out of range",
                    op.dst
                )));
            }
            let a = pack_src(&op.args[0], n_inputs, n_regs)?;
            let b = match op.args.get(1) {
                Some(s) => pack_src(s, n_inputs, n_regs)?,
                None => PSrc::Const(T::default()),
            };
            Ok(LOp {
                k,
                a,
                b,
                dst: op.dst as u32,
            })
        })
        .collect()
}

fn pack_typed<T: LaneNum>(ir: &TraceIr) -> Result<Packed<T>, JitError> {
    let n_regs = ir.n_regs.max(1);
    let n_inputs = ir.inputs.len();
    let pre = pack_ops::<T>(&ir.pre_ops, n_inputs, n_regs)?;
    let post = pack_ops::<T>(&ir.post_ops, n_inputs, n_regs)?;
    let filter = match &ir.filter {
        None => None,
        Some(fc) => {
            let k = kind_of(fc.op)?;
            if !matches!(k, K::Eq | K::Ne | K::Lt | K::Le | K::Gt | K::Ge) {
                return Err(JitError::Unsupported(format!("filter op {:?}", fc.op)));
            }
            Some((
                k,
                pack_src::<T>(&fc.lhs, n_inputs, n_regs)?,
                pack_src::<T>(&fc.rhs, n_inputs, n_regs)?,
            ))
        }
    };
    let mut packed = Packed {
        pre,
        post,
        filter,
        dense: Vec::new(),
        compact: Vec::new(),
        sel_slots: Vec::new(),
        folds: Vec::new(),
        inits: Vec::new(),
        n_regs,
        arr_count: 0,
        sel_count: 0,
    };
    let mut fold_count = 0usize;
    for o in &ir.outputs {
        match o {
            OutputSpec::Array { src, compacted, .. } => {
                let slot = packed.arr_count;
                packed.arr_count += 1;
                let ps = pack_src(src, n_inputs, n_regs)?;
                if *compacted {
                    packed.compact.push((slot, ps));
                } else {
                    packed.dense.push((slot, ps));
                }
            }
            OutputSpec::Sel { .. } => {
                packed.sel_slots.push(packed.sel_count);
                packed.sel_count += 1;
            }
            OutputSpec::Fold {
                f,
                src,
                guarded,
                init,
                ..
            } => {
                if !matches!(f, FoldFn::Sum | FoldFn::Min | FoldFn::Max | FoldFn::Count) {
                    return Err(JitError::Unsupported(format!("fold {f:?} in trace")));
                }
                let iv = T::from_scalar(init)
                    .ok_or_else(|| JitError::Unsupported(format!("fold init {init:?}")))?;
                packed
                    .folds
                    .push((fold_count, *f, pack_src(src, n_inputs, n_regs)?, *guarded));
                packed.inits.push((iv, init.as_i64().unwrap_or(0)));
                fold_count += 1;
            }
        }
    }
    Ok(packed)
}

impl TraceIr {
    /// Pack and validate the trace for execution (done once at compile
    /// time; [`execute`] packs on the fly for ad-hoc runs).
    pub fn pack(&self) -> Result<PackedProgram, JitError> {
        Ok(match self.lane {
            LaneType::I64 => PackedProgram::I64(pack_typed::<i64>(self)?),
            LaneType::F64 => PackedProgram::F64(pack_typed::<f64>(self)?),
        })
    }
}

/// Read one operand (lane loop).
///
/// # Safety contract (upheld by `pack_typed` + `run_packed`)
/// * every `PSrc::In(k)` has `k < views.len()`, and all views are at least
///   the common chunk length (checked on entry),
/// * every `PSrc::Reg(r)` has `r < regs.len()`.
#[inline(always)]
fn rd<T: LaneNum>(views: &[&[T]], regs: &[T], i: usize, s: PSrc<T>) -> T {
    match s {
        // SAFETY: see contract above.
        PSrc::In(k) => unsafe { *views.get_unchecked(k as usize).get_unchecked(i) },
        PSrc::Reg(r) => unsafe { *regs.get_unchecked(r as usize) },
        PSrc::Const(c) => c,
    }
}

/// Owned-or-borrowed lane storage for one input.
enum LaneStore<'a, T> {
    Borrowed(&'a [T]),
    Owned(Vec<T>),
}

/// Resolve a block operand to a slice (registers/inputs) or a constant.
#[inline(always)]
fn block_operand<'b, T: LaneNum>(
    s: PSrc<T>,
    views: &[&'b [T]],
    regs: &'b [Vec<T>],
    base: usize,
    len: usize,
) -> Result<&'b [T], T> {
    match s {
        PSrc::In(k) => Ok(&views[k as usize][base..base + len]),
        PSrc::Reg(r) => Ok(&regs[r as usize][..len]),
        PSrc::Const(c) => Err(c),
    }
}

/// Apply one op over a block: each arm is a tight, auto-vectorizable loop.
fn apply_block<T: LaneNum>(
    op: &LOp<T>,
    views: &[&[T]],
    regs: &mut [Vec<T>],
    base: usize,
    len: usize,
) {
    // Copy operands into small stack blocks first — this keeps every
    // compute arm a simple slice-to-slice loop the compiler vectorizes,
    // and sidesteps aliasing between the register file entries.
    let mut ab = [T::default(); BLK];
    let mut bb = [T::default(); BLK];
    match block_operand(op.a, views, regs, base, len) {
        Ok(s) => ab[..len].copy_from_slice(s),
        Err(c) => ab[..len].fill(c),
    }
    match block_operand(op.b, views, regs, base, len) {
        Ok(s) => bb[..len].copy_from_slice(s),
        Err(c) => bb[..len].fill(c),
    }
    let dst = &mut regs[op.dst as usize][..len];
    let k = op.k;
    for j in 0..len {
        dst[j] = T::apply(k, ab[j], bb[j]);
    }
}

/// Block-vectorized execution over all lanes (no pending selection).
fn run_blocks<T: LaneNum>(ir: &TraceIr, p: &Packed<T>, views: &[&[T]], n: usize) -> TraceResult {
    let mut regs: Vec<Vec<T>> = vec![vec![T::default(); BLK]; p.n_regs];
    let mut mask = [true; BLK];
    let mut arr_bufs: Vec<Vec<T>> = (0..p.arr_count).map(|_| Vec::with_capacity(n)).collect();
    let mut sel_bufs: Vec<Vec<u32>> = (0..p.sel_count).map(|_| Vec::new()).collect();
    let mut accs: Vec<(T, i64)> = p.inits.clone();

    let mut base = 0;
    while base < n {
        let len = BLK.min(n - base);
        for op in &p.pre {
            apply_block(op, views, &mut regs, base, len);
        }
        let all_pass = match p.filter {
            None => true,
            Some((k, lhs, rhs)) => {
                // Evaluate the mask blockwise (branch-free comparison arm).
                let mut la = [T::default(); BLK];
                let mut lb = [T::default(); BLK];
                match block_operand(lhs, views, &regs, base, len) {
                    Ok(s) => la[..len].copy_from_slice(s),
                    Err(c) => la[..len].fill(c),
                }
                match block_operand(rhs, views, &regs, base, len) {
                    Ok(s) => lb[..len].copy_from_slice(s),
                    Err(c) => lb[..len].fill(c),
                }
                match k {
                    K::Eq => {
                        for j in 0..len {
                            mask[j] = la[j] == lb[j];
                        }
                    }
                    K::Ne => {
                        for j in 0..len {
                            mask[j] = la[j] != lb[j];
                        }
                    }
                    K::Lt => {
                        for j in 0..len {
                            mask[j] = la[j] < lb[j];
                        }
                    }
                    K::Le => {
                        for j in 0..len {
                            mask[j] = la[j] <= lb[j];
                        }
                    }
                    K::Gt => {
                        for j in 0..len {
                            mask[j] = la[j] > lb[j];
                        }
                    }
                    K::Ge => {
                        for j in 0..len {
                            mask[j] = la[j] >= lb[j];
                        }
                    }
                    _ => unreachable!("validated at pack time"),
                }
                false
            }
        };
        // Guarded ops run on the whole block branch-free: non-passing
        // lanes compute unused values (division is total, so this is safe).
        for op in &p.post {
            apply_block(op, views, &mut regs, base, len);
        }
        // Dense outputs: straight block append.
        for &(slot, src) in &p.dense {
            match block_operand(src, views, &regs, base, len) {
                Ok(s) => arr_bufs[slot].extend_from_slice(s),
                Err(c) => arr_bufs[slot].extend(std::iter::repeat_n(c, len)),
            }
        }
        if p.filter.is_none() || all_pass {
            for &(slot, src) in &p.compact {
                match block_operand(src, views, &regs, base, len) {
                    Ok(s) => arr_bufs[slot].extend_from_slice(s),
                    Err(c) => arr_bufs[slot].extend(std::iter::repeat_n(c, len)),
                }
            }
            for &slot in &p.sel_slots {
                sel_bufs[slot].extend((base..base + len).map(|i| i as u32));
            }
            for (fi, &(slot, f, src, _)) in p.folds.iter().enumerate() {
                let _ = fi;
                fold_block(f, src, views, &regs, base, len, None, &mut accs[slot]);
            }
        } else {
            for &(slot, src) in &p.compact {
                match block_operand(src, views, &regs, base, len) {
                    Ok(s) => {
                        let buf = &mut arr_bufs[slot];
                        for j in 0..len {
                            if mask[j] {
                                buf.push(s[j]);
                            }
                        }
                    }
                    Err(c) => {
                        let buf = &mut arr_bufs[slot];
                        for &m in &mask[..len] {
                            if m {
                                buf.push(c);
                            }
                        }
                    }
                }
            }
            for &slot in &p.sel_slots {
                let buf = &mut sel_bufs[slot];
                for (j, &m) in mask[..len].iter().enumerate() {
                    if m {
                        buf.push((base + j) as u32);
                    }
                }
            }
            for &(slot, f, src, guarded) in &p.folds {
                let m = if guarded { Some(&mask[..len]) } else { None };
                fold_block(f, src, views, &regs, base, len, m, &mut accs[slot]);
            }
        }
        base += len;
    }
    assemble(ir, arr_bufs, sel_bufs, accs)
}

/// Blockwise fold update; masked sums use a branch-free select.
#[allow(clippy::too_many_arguments)]
fn fold_block<T: LaneNum>(
    f: FoldFn,
    src: PSrc<T>,
    views: &[&[T]],
    regs: &[Vec<T>],
    base: usize,
    len: usize,
    mask: Option<&[bool]>,
    acc: &mut (T, i64),
) {
    let mut sb = [T::default(); BLK];
    match block_operand(src, views, regs, base, len) {
        Ok(s) => sb[..len].copy_from_slice(s),
        Err(c) => sb[..len].fill(c),
    }
    match (f, mask) {
        (FoldFn::Sum, None) => {
            let mut a = acc.0;
            for &v in &sb[..len] {
                a = T::fold_add(a, v);
            }
            acc.0 = a;
        }
        (FoldFn::Sum, Some(m)) => {
            let mut a = acc.0;
            for j in 0..len {
                let v = if m[j] { sb[j] } else { T::default() };
                a = T::fold_add(a, v);
            }
            acc.0 = a;
        }
        (FoldFn::Min, m) => {
            for j in 0..len {
                if m.is_none_or(|m| m[j]) && sb[j] < acc.0 {
                    acc.0 = sb[j];
                }
            }
        }
        (FoldFn::Max, m) => {
            for j in 0..len {
                if m.is_none_or(|m| m[j]) && sb[j] > acc.0 {
                    acc.0 = sb[j];
                }
            }
        }
        (FoldFn::Count, None) => acc.1 += len as i64,
        (FoldFn::Count, Some(m)) => {
            acc.1 += m[..len].iter().map(|&b| b as i64).sum::<i64>();
        }
        _ => unreachable!("validated at pack time"),
    }
}

/// Per-lane execution over a pending selection (gathered access pattern).
fn run_selected<T: LaneNum>(
    ir: &TraceIr,
    p: &Packed<T>,
    views: &[&[T]],
    candidates: &SelVec,
) -> TraceResult {
    let mut regs: Vec<T> = vec![T::default(); p.n_regs];
    let mut arr_bufs: Vec<Vec<T>> = (0..p.arr_count)
        .map(|_| Vec::with_capacity(candidates.len()))
        .collect();
    let mut sel_bufs: Vec<Vec<u32>> = (0..p.sel_count).map(|_| Vec::new()).collect();
    let mut accs: Vec<(T, i64)> = p.inits.clone();

    for &iu in candidates.indices() {
        let i = iu as usize;
        for op in &p.pre {
            let a = rd(views, &regs, i, op.a);
            let b = rd(views, &regs, i, op.b);
            // SAFETY: dst validated against n_regs at pack time.
            unsafe { *regs.get_unchecked_mut(op.dst as usize) = T::apply(op.k, a, b) };
        }
        let passes = match p.filter {
            None => true,
            Some((k, lhs, rhs)) => {
                let a = rd(views, &regs, i, lhs);
                let b = rd(views, &regs, i, rhs);
                match k {
                    K::Eq => a == b,
                    K::Ne => a != b,
                    K::Lt => a < b,
                    K::Le => a <= b,
                    K::Gt => a > b,
                    K::Ge => a >= b,
                    _ => unreachable!("validated at pack time"),
                }
            }
        };
        if passes {
            for op in &p.post {
                let a = rd(views, &regs, i, op.a);
                let b = rd(views, &regs, i, op.b);
                // SAFETY: dst validated against n_regs at pack time.
                unsafe { *regs.get_unchecked_mut(op.dst as usize) = T::apply(op.k, a, b) };
            }
            for &(slot, src) in &p.compact {
                let v = rd(views, &regs, i, src);
                arr_bufs[slot].push(v);
            }
            for &slot in &p.sel_slots {
                sel_bufs[slot].push(iu);
            }
        }
        for &(slot, src) in &p.dense {
            let v = rd(views, &regs, i, src);
            arr_bufs[slot].push(v);
        }
        for &(slot, f, src, guarded) in &p.folds {
            if passes || !guarded {
                let v = rd(views, &regs, i, src);
                let acc = &mut accs[slot];
                match f {
                    FoldFn::Sum => acc.0 = T::fold_add(acc.0, v),
                    FoldFn::Min => {
                        if v < acc.0 {
                            acc.0 = v;
                        }
                    }
                    FoldFn::Max => {
                        if v > acc.0 {
                            acc.0 = v;
                        }
                    }
                    FoldFn::Count => acc.1 += 1,
                    _ => unreachable!("validated at pack time"),
                }
            }
        }
    }
    assemble(ir, arr_bufs, sel_bufs, accs)
}

/// Assemble a [`TraceResult`] in output declaration order.
pub(crate) fn assemble<T: LaneNum>(
    ir: &TraceIr,
    mut arr_bufs: Vec<Vec<T>>,
    mut sel_bufs: Vec<Vec<u32>>,
    accs: Vec<(T, i64)>,
) -> TraceResult {
    let mut result = TraceResult::default();
    let (mut ai, mut si, mut fi) = (0usize, 0usize, 0usize);
    for o in &ir.outputs {
        match o {
            OutputSpec::Array { name, out_ty, .. } => {
                let lanes = std::mem::take(&mut arr_bufs[ai]);
                result
                    .arrays
                    .push((name.clone(), T::narrow(lanes, *out_ty)));
                ai += 1;
            }
            OutputSpec::Sel { name, flow } => {
                result.sels.push((
                    name.clone(),
                    flow.clone(),
                    SelVec::new(std::mem::take(&mut sel_bufs[si])),
                ));
                si += 1;
            }
            OutputSpec::Fold { name, f, init, .. } => {
                let (acc, count) = accs[fi];
                let scalar = match f {
                    FoldFn::Count => Scalar::I64(count),
                    _ => acc.to_scalar(init),
                };
                result.scalars.push((name.clone(), scalar));
                fi += 1;
            }
        }
    }
    result
}

/// Run a packed program over chunk inputs.
pub(crate) fn run_packed_typed<T: LaneNum>(
    ir: &TraceIr,
    p: &Packed<T>,
    inputs: &[&Array],
    n: usize,
    candidates: Option<&SelVec>,
) -> Result<TraceResult, JitError> {
    // Widen inputs once per chunk; borrowed views when types already match.
    let stores: Vec<LaneStore<'_, T>> = inputs
        .iter()
        .map(|a| match T::view(a) {
            Some(s) => Ok(LaneStore::Borrowed(s)),
            None => T::widen(a).map(LaneStore::Owned).ok_or_else(|| {
                JitError::LaneConflict(format!("{} in trace lanes", a.scalar_type()))
            }),
        })
        .collect::<Result<_, _>>()?;
    let views: Vec<&[T]> = stores
        .iter()
        .map(|s| match s {
            LaneStore::Borrowed(v) => *v,
            LaneStore::Owned(v) => v.as_slice(),
        })
        .collect();
    Ok(match candidates {
        None => run_blocks(ir, p, &views, n),
        Some(sel) => {
            // Candidate indices must be within the chunk.
            if let Some(&max) = sel.indices().last() {
                if max as usize >= n {
                    return Err(JitError::Unresolved(format!(
                        "candidate index {max} out of chunk of {n}"
                    )));
                }
            }
            run_selected(ir, p, &views, sel)
        }
    })
}

/// Run a packed program (dispatching on the lane tag).
pub fn run_packed(
    ir: &TraceIr,
    packed: &PackedProgram,
    inputs: &[&Array],
    candidates: Option<&SelVec>,
) -> Result<TraceResult, JitError> {
    if inputs.len() != ir.inputs.len() {
        return Err(JitError::Unresolved(format!(
            "trace expects {} inputs, got {}",
            ir.inputs.len(),
            inputs.len()
        )));
    }
    let n = inputs.first().map_or(0, |a| a.len());
    for a in inputs {
        if a.len() != n {
            return Err(JitError::Unresolved("trace input length mismatch".into()));
        }
    }
    match packed {
        PackedProgram::I64(p) => run_packed_typed(ir, p, inputs, n, candidates),
        PackedProgram::F64(p) => run_packed_typed(ir, p, inputs, n, candidates),
    }
}

/// Execute a trace over chunk `inputs` (equal-length arrays matching
/// `ir.inputs`). `candidates` restricts execution to already-selected lanes
/// (a pending selection on the incoming flow).
pub fn execute(
    ir: &TraceIr,
    inputs: &[&Array],
    candidates: Option<&SelVec>,
) -> Result<TraceResult, JitError> {
    let packed = ir.pack()?;
    run_packed(ir, &packed, inputs, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// out = (x * 2) + 3, dense.
    fn simple_map_ir() -> TraceIr {
        TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 2,
            pre_ops: vec![
                TraceOp {
                    op: ScalarOp::Mul,
                    dst: 0,
                    args: vec![Src::Input(0), Src::ConstI(2)],
                },
                TraceOp {
                    op: ScalarOp::Add,
                    dst: 1,
                    args: vec![Src::Reg(0), Src::ConstI(3)],
                },
            ],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "out".into(),
                src: Src::Reg(1),
                compacted: false,
                out_ty: ScalarType::I64,
            }],
        }
    }

    #[test]
    fn dense_map_trace() {
        let ir = simple_map_ir();
        let x = Array::from(vec![1i64, 2, 3]);
        let r = execute(&ir, &[&x], None).unwrap();
        assert_eq!(r.arrays[0].1, Array::from(vec![5i64, 7, 9]));
    }

    /// Fig. 2-like: a = 2*x, sel = a > 0, b = condense(a), plus sum(b).
    fn filter_pipeline_ir() -> TraceIr {
        TraceIr {
            lane: LaneType::I64,
            inputs: vec!["input".into()],
            n_regs: 1,
            pre_ops: vec![TraceOp {
                op: ScalarOp::Mul,
                dst: 0,
                args: vec![Src::ConstI(2), Src::Input(0)],
            }],
            filter: Some(FilterCheck {
                op: ScalarOp::Gt,
                lhs: Src::Reg(0),
                rhs: Src::ConstI(0),
            }),
            post_ops: vec![],
            outputs: vec![
                OutputSpec::Array {
                    name: "a".into(),
                    src: Src::Reg(0),
                    compacted: false,
                    out_ty: ScalarType::I64,
                },
                OutputSpec::Sel {
                    name: "t".into(),
                    flow: "a".into(),
                },
                OutputSpec::Array {
                    name: "b".into(),
                    src: Src::Reg(0),
                    compacted: true,
                    out_ty: ScalarType::I64,
                },
                OutputSpec::Fold {
                    name: "s".into(),
                    f: FoldFn::Sum,
                    init: Scalar::I64(0),
                    src: Src::Reg(0),
                    guarded: true,
                },
            ],
        }
    }

    #[test]
    fn fused_filter_pipeline() {
        let ir = filter_pipeline_ir();
        let x = Array::from(vec![1i64, -2, 3, -4]);
        let r = execute(&ir, &[&x], None).unwrap();
        // Dense output a.
        assert_eq!(r.arrays[0].1, Array::from(vec![2i64, -4, 6, -8]));
        // Compacted output b.
        assert_eq!(r.arrays[1].1, Array::from(vec![2i64, 6]));
        // Selection on a.
        assert_eq!(r.sels[0].2.indices(), &[0, 2]);
        assert_eq!(r.sels[0].1, "a");
        // Fold accumulates passing lanes only.
        assert_eq!(r.scalars[0].1, Scalar::I64(8));
    }

    #[test]
    fn candidates_restrict_lanes() {
        let ir = filter_pipeline_ir();
        let x = Array::from(vec![1i64, -2, 3, -4]);
        let sel = SelVec::new(vec![0, 1]);
        let r = execute(&ir, &[&x], Some(&sel)).unwrap();
        // Only lanes 0,1 processed: dense output shrinks accordingly.
        assert_eq!(r.arrays[0].1, Array::from(vec![2i64, -4]));
        assert_eq!(r.arrays[1].1, Array::from(vec![2i64]));
        assert_eq!(r.sels[0].2.indices(), &[0]);
        assert_eq!(r.scalars[0].1, Scalar::I64(2));
    }

    #[test]
    fn f64_lanes_and_sqrt() {
        let ir = TraceIr {
            lane: LaneType::F64,
            inputs: vec!["p".into(), "q".into()],
            n_regs: 4,
            pre_ops: vec![
                TraceOp {
                    op: ScalarOp::Mul,
                    dst: 0,
                    args: vec![Src::Input(0), Src::Input(0)],
                },
                TraceOp {
                    op: ScalarOp::Mul,
                    dst: 1,
                    args: vec![Src::Input(1), Src::Input(1)],
                },
                TraceOp {
                    op: ScalarOp::Add,
                    dst: 2,
                    args: vec![Src::Reg(0), Src::Reg(1)],
                },
                TraceOp {
                    op: ScalarOp::Sqrt,
                    dst: 3,
                    args: vec![Src::Reg(2)],
                },
            ],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Array {
                name: "h".into(),
                src: Src::Reg(3),
                compacted: false,
                out_ty: ScalarType::F64,
            }],
        };
        let p = Array::from(vec![3.0, 5.0]);
        let q = Array::from(vec![4.0, 12.0]);
        let r = execute(&ir, &[&p, &q], None).unwrap();
        assert_eq!(r.arrays[0].1, Array::from(vec![5.0, 13.0]));
        // Integer inputs widen automatically.
        let pi = Array::from(vec![3i64, 5]);
        let qi = Array::from(vec![4i64, 12]);
        let r = execute(&ir, &[&pi, &qi], None).unwrap();
        assert_eq!(r.arrays[0].1, Array::from(vec![5.0, 13.0]));
    }

    #[test]
    fn narrow_output_types() {
        let mut ir = simple_map_ir();
        if let OutputSpec::Array { out_ty, .. } = &mut ir.outputs[0] {
            *out_ty = ScalarType::I16;
        }
        let x = Array::from(vec![1i64, 2]);
        let r = execute(&ir, &[&x], None).unwrap();
        assert_eq!(r.arrays[0].1, Array::I16(vec![5, 7]));
    }

    #[test]
    fn post_ops_guarded_by_filter() {
        // y = x; if x > 0 { z = x * 100 }; fold sum z (passing only).
        let ir = TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 1,
            pre_ops: vec![],
            filter: Some(FilterCheck {
                op: ScalarOp::Gt,
                lhs: Src::Input(0),
                rhs: Src::ConstI(0),
            }),
            post_ops: vec![TraceOp {
                op: ScalarOp::Mul,
                dst: 0,
                args: vec![Src::Input(0), Src::ConstI(100)],
            }],
            outputs: vec![OutputSpec::Fold {
                name: "s".into(),
                f: FoldFn::Sum,
                init: Scalar::I64(0),
                src: Src::Reg(0),
                guarded: true,
            }],
        };
        let x = Array::from(vec![1i64, -5, 2]);
        let r = execute(&ir, &[&x], None).unwrap();
        assert_eq!(r.scalars[0].1, Scalar::I64(300));
    }

    #[test]
    fn fold_kinds() {
        let mk = |f: FoldFn, init: Scalar| TraceIr {
            lane: LaneType::I64,
            inputs: vec!["x".into()],
            n_regs: 0,
            pre_ops: vec![],
            filter: None,
            post_ops: vec![],
            outputs: vec![OutputSpec::Fold {
                name: "r".into(),
                f,
                init,
                src: Src::Input(0),
                guarded: false,
            }],
        };
        let x = Array::from(vec![4i64, -1, 7]);
        let r = execute(&mk(FoldFn::Min, Scalar::I64(i64::MAX)), &[&x], None).unwrap();
        assert_eq!(r.scalars[0].1, Scalar::I64(-1));
        let r = execute(&mk(FoldFn::Max, Scalar::I64(i64::MIN)), &[&x], None).unwrap();
        assert_eq!(r.scalars[0].1, Scalar::I64(7));
        let r = execute(&mk(FoldFn::Count, Scalar::I64(0)), &[&x], None).unwrap();
        assert_eq!(r.scalars[0].1, Scalar::I64(3));
    }

    #[test]
    fn error_paths() {
        let ir = simple_map_ir();
        let x = Array::from(vec![1i64]);
        let y = Array::from(vec![1i64]);
        // Wrong input count.
        assert!(execute(&ir, &[&x, &y], None).is_err());
        // Length mismatch.
        let mut ir2 = simple_map_ir();
        ir2.inputs.push("y".into());
        let short = Array::from(vec![1i64, 2]);
        assert!(execute(&ir2, &[&x, &short], None).is_err());
        // String input cannot widen.
        let s = Array::from(vec!["a".to_string()]);
        assert!(execute(&ir, &[&s], None).is_err());
        // Sqrt in i64 lanes unsupported.
        let mut ir3 = simple_map_ir();
        ir3.pre_ops[0].op = ScalarOp::Sqrt;
        ir3.pre_ops[0].args = vec![Src::Input(0)];
        assert!(matches!(
            execute(&ir3, &[&x], None),
            Err(JitError::Unsupported(_))
        ));
    }

    #[test]
    fn fingerprints_distinguish_structure() {
        let a = simple_map_ir();
        let mut b = simple_map_ir();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.pre_ops[1].args[1] = Src::ConstI(4);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = filter_pipeline_ir();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn empty_input_runs() {
        let ir = filter_pipeline_ir();
        let x = Array::from(Vec::<i64>::new());
        let r = execute(&ir, &[&x], None).unwrap();
        assert_eq!(r.arrays[0].1.len(), 0);
        assert_eq!(r.scalars[0].1, Scalar::I64(0));
    }
}
