//! Kernel operands: array columns or broadcast scalar constants.

use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::{Scalar, ScalarType};

use crate::error::KernelError;

/// One operand of a vectorized kernel.
#[derive(Debug, Clone)]
pub enum Operand<'a> {
    /// A column of values.
    Col(&'a Array),
    /// A scalar broadcast to every lane.
    Const(Scalar),
}

impl<'a> Operand<'a> {
    /// Element type of this operand.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Operand::Col(a) => a.scalar_type(),
            Operand::Const(s) => s.scalar_type(),
        }
    }

    /// Length when this is a column.
    pub fn len(&self) -> Option<usize> {
        match self {
            Operand::Col(a) => Some(a.len()),
            Operand::Const(_) => None,
        }
    }

    /// True when this is an empty column (constants are never empty).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// True for the scalar variant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

/// The common lane count of a set of operands. Errors when two columns
/// disagree or no column exists.
pub fn common_len(operands: &[Operand<'_>]) -> Result<usize, KernelError> {
    let mut len = None;
    for o in operands {
        if let Some(n) = o.len() {
            match len {
                None => len = Some(n),
                Some(m) if m != n => return Err(KernelError::LengthMismatch { left: m, right: n }),
                _ => {}
            }
        }
    }
    len.ok_or(KernelError::NoArrayOperand)
}

/// A typed view of an operand, after coercion to a common type `T`.
/// `Owned` holds widened copies of narrower inputs.
pub enum Typed<'a, T> {
    /// Borrowed slice (operand already had type `T`).
    Slice(&'a [T]),
    /// Owned widened copy.
    Owned(Vec<T>),
    /// Broadcast constant.
    Const(T),
}

impl<T: Copy> Typed<'_, T> {
    /// Value at lane `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        match self {
            Typed::Slice(s) => s[i],
            Typed::Owned(v) => v[i],
            Typed::Const(c) => *c,
        }
    }
}

macro_rules! coerce_int {
    ($name:ident, $t:ty, $variant:ident) => {
        /// Coerce an operand to this integer width (widening only).
        pub fn $name<'a>(o: &Operand<'a>) -> Result<Typed<'a, $t>, KernelError> {
            match o {
                Operand::Col(Array::$variant(v)) => Ok(Typed::Slice(v)),
                Operand::Col(a) => match a.to_i64_vec() {
                    Some(wide) => Ok(Typed::Owned(wide.into_iter().map(|x| x as $t).collect())),
                    None => Err(KernelError::NoKernel {
                        op: "coerce".into(),
                        types: vec![a.scalar_type()],
                    }),
                },
                Operand::Const(s) => match s.as_i64() {
                    Some(v) => Ok(Typed::Const(v as $t)),
                    None => Err(KernelError::NoKernel {
                        op: "coerce".into(),
                        types: vec![s.scalar_type()],
                    }),
                },
            }
        }
    };
}

coerce_int!(as_i8, i8, I8);
coerce_int!(as_i16, i16, I16);
coerce_int!(as_i32, i32, I32);
coerce_int!(as_i64, i64, I64);

/// Coerce an operand to `f64` lanes.
pub fn as_f64<'a>(o: &Operand<'a>) -> Result<Typed<'a, f64>, KernelError> {
    match o {
        Operand::Col(Array::F64(v)) => Ok(Typed::Slice(v)),
        Operand::Col(a) => match a.to_f64_vec() {
            Some(wide) => Ok(Typed::Owned(wide)),
            None => Err(KernelError::NoKernel {
                op: "coerce".into(),
                types: vec![a.scalar_type()],
            }),
        },
        Operand::Const(s) => match s.as_f64() {
            Some(v) => Ok(Typed::Const(v)),
            None => Err(KernelError::NoKernel {
                op: "coerce".into(),
                types: vec![s.scalar_type()],
            }),
        },
    }
}

/// Coerce an operand to boolean lanes.
pub fn as_bool<'a>(o: &Operand<'a>) -> Result<Typed<'a, bool>, KernelError> {
    match o {
        Operand::Col(Array::Bool(v)) => Ok(Typed::Slice(v)),
        Operand::Const(Scalar::Bool(b)) => Ok(Typed::Const(*b)),
        other => Err(KernelError::NoKernel {
            op: "coerce-bool".into(),
            types: vec![other.scalar_type()],
        }),
    }
}

/// A string-typed operand view (strings stay borrowed; no widening).
pub enum TypedStr<'a> {
    /// Borrowed column.
    Slice(&'a [String]),
    /// Broadcast constant.
    Const(&'a str),
}

impl TypedStr<'_> {
    /// Value at lane `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> &str {
        match self {
            TypedStr::Slice(s) => &s[i],
            TypedStr::Const(c) => c,
        }
    }
}

/// Coerce an operand to string lanes.
pub fn as_str<'a>(o: &'a Operand<'a>) -> Result<TypedStr<'a>, KernelError> {
    match o {
        Operand::Col(Array::Str(v)) => Ok(TypedStr::Slice(v)),
        Operand::Const(Scalar::Str(s)) => Ok(TypedStr::Const(s)),
        other => Err(KernelError::NoKernel {
            op: "coerce-str".into(),
            types: vec![other.scalar_type()],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_len_rules() {
        let a = Array::from(vec![1i64, 2]);
        let b = Array::from(vec![3i64, 4]);
        let c = Array::from(vec![5i64]);
        assert_eq!(
            common_len(&[Operand::Col(&a), Operand::Col(&b)]).unwrap(),
            2
        );
        assert_eq!(
            common_len(&[Operand::Const(Scalar::I64(1)), Operand::Col(&b)]).unwrap(),
            2
        );
        assert!(common_len(&[Operand::Col(&a), Operand::Col(&c)]).is_err());
        assert!(common_len(&[Operand::Const(Scalar::I64(1))]).is_err());
    }

    #[test]
    fn widening_coercion() {
        let narrow = Array::I16(vec![1, 2, 3]);
        let t = as_i64(&Operand::Col(&narrow)).unwrap();
        assert_eq!(t.get(2), 3i64);
        let t = as_f64(&Operand::Col(&narrow)).unwrap();
        assert_eq!(t.get(0), 1.0);
        // Constants broadcast.
        let t = as_i32(&Operand::Const(Scalar::I64(7))).unwrap();
        assert_eq!(t.get(99), 7);
        // Bool cannot coerce to ints.
        let b = Array::from(vec![true]);
        assert!(as_i64(&Operand::Col(&b)).is_err());
    }

    #[test]
    fn string_and_bool_views() {
        let s = Array::from(vec!["a".to_string(), "b".to_string()]);
        let op = Operand::Col(&s);
        let t = as_str(&op).unwrap();
        assert_eq!(t.get(1), "b");
        let c = Operand::Const(Scalar::Str("k".into()));
        assert_eq!(as_str(&c).unwrap().get(5), "k");
        let b = Array::from(vec![true, false]);
        assert!(as_bool(&Operand::Col(&b)).is_ok());
        assert!(as_bool(&Operand::Col(&s)).is_err());
    }
}
