//! Pre-compiled vectorized primitives (§III-A).
//!
//! The paper's efficient interpreter needs "specialized functions that
//! operate on a chunk of data in a tight loop … generate and compile these
//! functions during startup through our compilation infrastructure, such
//! that they will be available during runtime with near to zero compilation
//! effort". In Rust, "generate at startup" becomes *monomorphize at build
//! time*: every (operation × type × flavor) combination in this crate is a
//! statically compiled tight loop, dispatched once per chunk.
//!
//! Flavors are the micro-adaptivity axis (§III-C):
//! * maps run **full** (compute every lane — branch-free, SIMD-friendly) or
//!   **selective** (compute only selected lanes — wins at low selectivity);
//! * filters produce selections via a **selection-vector** loop, a
//!   **bitmap** pass, or a **compute-all-then-scan** pass.
//!
//! The [`registry`] module enumerates the combinations so the VM can report
//! and bandit-select among them.

pub mod compressed;
pub mod error;
pub mod filter;
pub mod fold;
pub mod map;
pub mod merge;
pub mod movement;
pub mod operand;
pub mod registry;

pub use error::KernelError;
pub use filter::{filter_cmp, FilterFlavor};
pub use fold::fold_apply;
pub use map::{map_apply, MapMode};
pub use operand::Operand;
