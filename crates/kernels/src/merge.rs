//! `merge` kernels: the abstract merge of Table I, on sorted inputs.
//!
//! The paper keeps `merge` abstract ("Abstract merge for MergeJoin,
//! MergeDiff, MergeUnion …"); the concrete flavors here are sorted union,
//! intersection, difference, and merge-join index generation. All verify
//! the sortedness precondition — an unsorted input is a programming error
//! the kernel reports rather than silently mis-merging.

use adaptvm_dsl::ast::MergeKind;
use adaptvm_storage::array::Array;

use crate::error::KernelError;

/// Run a merge of the given kind over two sorted arrays.
pub fn merge_apply(kind: MergeKind, left: &Array, right: &Array) -> Result<Array, KernelError> {
    if left.scalar_type() != right.scalar_type() {
        return Err(KernelError::NoKernel {
            op: format!("merge {}", kind.name()),
            types: vec![left.scalar_type(), right.scalar_type()],
        });
    }
    match (left, right) {
        (Array::I64(l), Array::I64(r)) => merge_typed(kind, l, r, Array::I64),
        (Array::I32(l), Array::I32(r)) => merge_typed(kind, l, r, Array::I32),
        (Array::I16(l), Array::I16(r)) => merge_typed(kind, l, r, Array::I16),
        (Array::I8(l), Array::I8(r)) => merge_typed(kind, l, r, Array::I8),
        (Array::Str(l), Array::Str(r)) => merge_typed(kind, l, r, Array::Str),
        (Array::F64(l), Array::F64(r)) => {
            // Total order via partial_cmp; NaN is a precondition violation.
            if l.iter().chain(r.iter()).any(|v| v.is_nan()) {
                return Err(KernelError::Precondition("merge input contains NaN".into()));
            }
            merge_typed_by(kind, l, r, Array::F64, |a, b| {
                a.partial_cmp(b).expect("NaN excluded")
            })
        }
        other => Err(KernelError::NoKernel {
            op: format!("merge {}", kind.name()),
            types: vec![other.0.scalar_type()],
        }),
    }
}

fn merge_typed<T: Ord + Clone>(
    kind: MergeKind,
    l: &[T],
    r: &[T],
    mk: impl Fn(Vec<T>) -> Array,
) -> Result<Array, KernelError> {
    merge_typed_by(kind, l, r, mk, |a, b| a.cmp(b))
}

fn merge_typed_by<T: Clone>(
    kind: MergeKind,
    l: &[T],
    r: &[T],
    mk: impl Fn(Vec<T>) -> Array,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Result<Array, KernelError> {
    use std::cmp::Ordering::*;
    for (name, side) in [("left", l), ("right", r)] {
        if side.windows(2).any(|w| cmp(&w[0], &w[1]) == Greater) {
            return Err(KernelError::Precondition(format!(
                "merge {name} input is not sorted"
            )));
        }
    }
    Ok(match kind {
        MergeKind::Union => {
            let mut out = Vec::with_capacity(l.len() + r.len());
            let (mut i, mut j) = (0, 0);
            while i < l.len() && j < r.len() {
                if cmp(&l[i], &r[j]) != Greater {
                    out.push(l[i].clone());
                    i += 1;
                } else {
                    out.push(r[j].clone());
                    j += 1;
                }
            }
            out.extend_from_slice(&l[i..]);
            out.extend_from_slice(&r[j..]);
            mk(out)
        }
        MergeKind::Intersect => {
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < l.len() && j < r.len() {
                match cmp(&l[i], &r[j]) {
                    Less => i += 1,
                    Greater => j += 1,
                    Equal => {
                        out.push(l[i].clone());
                        i += 1;
                        j += 1;
                    }
                }
            }
            mk(out)
        }
        MergeKind::Diff => {
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < l.len() {
                if j >= r.len() {
                    out.push(l[i].clone());
                    i += 1;
                    continue;
                }
                match cmp(&l[i], &r[j]) {
                    Less => {
                        out.push(l[i].clone());
                        i += 1;
                    }
                    Greater => j += 1,
                    Equal => i += 1,
                }
            }
            mk(out)
        }
        MergeKind::JoinLeftIdx | MergeKind::JoinRightIdx => {
            let (li, ri) = join_pairs(l, r, &cmp);
            let picked = if kind == MergeKind::JoinLeftIdx {
                li
            } else {
                ri
            };
            Array::I64(picked)
        }
    })
}

/// Enumerate matching (left, right) index pairs of a sort-merge join,
/// including duplicate cross products, in deterministic order.
fn join_pairs<T>(
    l: &[T],
    r: &[T],
    cmp: &impl Fn(&T, &T) -> std::cmp::Ordering,
) -> (Vec<i64>, Vec<i64>) {
    use std::cmp::Ordering::*;
    let mut li = Vec::new();
    let mut ri = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match cmp(&l[i], &r[j]) {
            Less => i += 1,
            Greater => j += 1,
            Equal => {
                // Find the run of equal keys on both sides.
                let i_end = (i..l.len())
                    .take_while(|&x| cmp(&l[x], &l[i]) == Equal)
                    .last()
                    .expect("run includes i")
                    + 1;
                let j_end = (j..r.len())
                    .take_while(|&x| cmp(&r[x], &r[j]) == Equal)
                    .last()
                    .expect("run includes j")
                    + 1;
                for a in i..i_end {
                    for b in j..j_end {
                        li.push(a as i64);
                        ri.push(b as i64);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    (li, ri)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: Vec<i64>) -> Array {
        Array::from(v)
    }

    #[test]
    fn union_keeps_duplicates_sorted() {
        let r = merge_apply(
            MergeKind::Union,
            &ints(vec![1, 3, 3, 5]),
            &ints(vec![2, 3, 6]),
        )
        .unwrap();
        assert_eq!(r, ints(vec![1, 2, 3, 3, 3, 5, 6]));
    }

    #[test]
    fn intersect_and_diff() {
        let l = ints(vec![1, 2, 4, 6, 8]);
        let r = ints(vec![2, 3, 4, 9]);
        assert_eq!(
            merge_apply(MergeKind::Intersect, &l, &r).unwrap(),
            ints(vec![2, 4])
        );
        assert_eq!(
            merge_apply(MergeKind::Diff, &l, &r).unwrap(),
            ints(vec![1, 6, 8])
        );
        // Diff with empty right = left.
        assert_eq!(merge_apply(MergeKind::Diff, &l, &ints(vec![])).unwrap(), l);
    }

    #[test]
    fn join_indices_with_duplicates() {
        let l = ints(vec![1, 2, 2, 5]);
        let r = ints(vec![2, 2, 5, 7]);
        let li = merge_apply(MergeKind::JoinLeftIdx, &l, &r).unwrap();
        let ri = merge_apply(MergeKind::JoinRightIdx, &l, &r).unwrap();
        // 2×2 cross product on key 2, plus (3,2) for key 5.
        assert_eq!(li, ints(vec![1, 1, 2, 2, 3]));
        assert_eq!(ri, ints(vec![0, 1, 0, 1, 2]));
    }

    #[test]
    fn join_indices_line_up() {
        let l = ints(vec![1, 3, 5]);
        let r = ints(vec![3, 4, 5]);
        let li = merge_apply(MergeKind::JoinLeftIdx, &l, &r).unwrap();
        let ri = merge_apply(MergeKind::JoinRightIdx, &l, &r).unwrap();
        let lv = li.as_i64().unwrap();
        let rv = ri.as_i64().unwrap();
        assert_eq!(lv.len(), rv.len());
        for (a, b) in lv.iter().zip(rv) {
            assert_eq!(
                l.get(*a as usize).unwrap(),
                r.get(*b as usize).unwrap(),
                "join pair must match keys"
            );
        }
    }

    #[test]
    fn string_merges() {
        let l = Array::from(vec!["a".to_string(), "c".to_string()]);
        let r = Array::from(vec!["b".to_string(), "c".to_string()]);
        assert_eq!(
            merge_apply(MergeKind::Intersect, &l, &r).unwrap(),
            Array::from(vec!["c".to_string()])
        );
    }

    #[test]
    fn float_merge_and_nan_rejection() {
        let l = Array::from(vec![1.0, 2.0]);
        let r = Array::from(vec![2.0, 3.0]);
        assert_eq!(
            merge_apply(MergeKind::Union, &l, &r).unwrap(),
            Array::from(vec![1.0, 2.0, 2.0, 3.0])
        );
        let bad = Array::from(vec![f64::NAN]);
        assert!(matches!(
            merge_apply(MergeKind::Union, &l, &bad),
            Err(KernelError::Precondition(_))
        ));
    }

    #[test]
    fn unsorted_inputs_rejected() {
        let l = ints(vec![3, 1]);
        let r = ints(vec![1, 2]);
        assert!(matches!(
            merge_apply(MergeKind::Union, &l, &r),
            Err(KernelError::Precondition(_))
        ));
        assert!(matches!(
            merge_apply(MergeKind::Union, &r, &l),
            Err(KernelError::Precondition(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(merge_apply(MergeKind::Union, &ints(vec![1]), &Array::from(vec![1.0f64])).is_err());
        assert!(merge_apply(
            MergeKind::Union,
            &Array::from(vec![true]),
            &Array::from(vec![false])
        )
        .is_err());
    }

    #[test]
    fn empty_inputs() {
        let e = ints(vec![]);
        let l = ints(vec![1, 2]);
        assert_eq!(merge_apply(MergeKind::Union, &e, &l).unwrap(), l);
        assert_eq!(merge_apply(MergeKind::Intersect, &e, &l).unwrap(), e);
        assert_eq!(
            merge_apply(MergeKind::JoinLeftIdx, &e, &l).unwrap().len(),
            0
        );
    }
}
