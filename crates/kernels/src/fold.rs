//! `fold` kernels: reductions over (optionally selected) arrays.
//!
//! Folds carry named reduction functions (sum/min/max/count/all/any) so the
//! kernels can use reassociation-friendly tight loops. Integer sums
//! accumulate in `i64` and narrow to the promoted result type, mirroring
//! the type checker's rule `result = promote(elem, init)`.

use adaptvm_dsl::ast::FoldFn;
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::{Scalar, ScalarType};
use adaptvm_storage::sel::SelVec;

use crate::error::KernelError;

/// Reduce `input` (restricted to `sel` when present) with `f`, starting
/// from `init`.
pub fn fold_apply(
    f: FoldFn,
    init: &Scalar,
    input: &Array,
    sel: Option<&SelVec>,
) -> Result<Scalar, KernelError> {
    let elem_ty = input.scalar_type();
    match f {
        FoldFn::Count => {
            let base = init.as_i64().unwrap_or(0);
            let n = sel.map_or(input.len(), SelVec::len) as i64;
            Ok(Scalar::I64(base + n))
        }
        FoldFn::All | FoldFn::Any => {
            let bools = input.as_bool().ok_or_else(|| KernelError::NoKernel {
                op: f.name().into(),
                types: vec![elem_ty],
            })?;
            let init_b = init.as_bool().unwrap_or(f == FoldFn::All);
            let result = match (f, sel) {
                (FoldFn::All, Some(s)) => init_b && s.indices().iter().all(|&i| bools[i as usize]),
                (FoldFn::All, None) => init_b && bools.iter().all(|&b| b),
                (FoldFn::Any, Some(s)) => init_b || s.indices().iter().any(|&i| bools[i as usize]),
                (FoldFn::Any, None) => init_b || bools.iter().any(|&b| b),
                _ => unreachable!(),
            };
            Ok(Scalar::Bool(result))
        }
        FoldFn::Sum | FoldFn::Min | FoldFn::Max => {
            if elem_ty == ScalarType::F64 {
                fold_f64(f, init, input.as_f64().expect("checked"), sel)
            } else {
                let result_ty = elem_ty
                    .promote(init.scalar_type())
                    .filter(|t| t.is_numeric())
                    .ok_or_else(|| KernelError::NoKernel {
                        op: f.name().into(),
                        types: vec![elem_ty, init.scalar_type()],
                    })?;
                if result_ty == ScalarType::F64 {
                    let wide = input.to_f64_vec().ok_or_else(|| KernelError::NoKernel {
                        op: f.name().into(),
                        types: vec![elem_ty],
                    })?;
                    return fold_f64(f, init, &wide, sel);
                }
                let wide = input.to_i64_vec().ok_or_else(|| KernelError::NoKernel {
                    op: f.name().into(),
                    types: vec![elem_ty],
                })?;
                fold_i64(f, init, &wide, sel, result_ty)
            }
        }
    }
}

fn fold_i64(
    f: FoldFn,
    init: &Scalar,
    values: &[i64],
    sel: Option<&SelVec>,
    result_ty: ScalarType,
) -> Result<Scalar, KernelError> {
    let init_v = init.as_i64().ok_or_else(|| KernelError::NoKernel {
        op: f.name().into(),
        types: vec![init.scalar_type()],
    })?;
    macro_rules! reduce {
        ($op:expr) => {
            match sel {
                Some(s) => s
                    .indices()
                    .iter()
                    .map(|&i| values[i as usize])
                    .fold(init_v, $op),
                None => values.iter().copied().fold(init_v, $op),
            }
        };
    }
    let acc = match f {
        FoldFn::Sum => reduce!(|a: i64, b| a.wrapping_add(b)),
        FoldFn::Min => reduce!(|a: i64, b| a.min(b)),
        FoldFn::Max => reduce!(|a: i64, b| a.max(b)),
        _ => unreachable!("numeric folds only"),
    };
    Ok(Scalar::int_of_type(acc, result_ty))
}

fn fold_f64(
    f: FoldFn,
    init: &Scalar,
    values: &[f64],
    sel: Option<&SelVec>,
) -> Result<Scalar, KernelError> {
    let init_v = init.as_f64().ok_or_else(|| KernelError::NoKernel {
        op: f.name().into(),
        types: vec![init.scalar_type()],
    })?;
    macro_rules! reduce {
        ($op:expr) => {
            match sel {
                Some(s) => s
                    .indices()
                    .iter()
                    .map(|&i| values[i as usize])
                    .fold(init_v, $op),
                None => values.iter().copied().fold(init_v, $op),
            }
        };
    }
    let acc = match f {
        FoldFn::Sum => reduce!(|a, b| a + b),
        FoldFn::Min => reduce!(f64::min),
        FoldFn::Max => reduce!(f64::max),
        _ => unreachable!("numeric folds only"),
    };
    Ok(Scalar::F64(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let a = Array::from(vec![1i64, 2, 3]);
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::I64(10), &a, None).unwrap(),
            Scalar::I64(16)
        );
        let f = Array::from(vec![1.5, 2.5]);
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::F64(0.0), &f, None).unwrap(),
            Scalar::F64(4.0)
        );
        // Narrow elements + narrow init stay narrow.
        let narrow = Array::I8(vec![1, 2, 3]);
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::I8(0), &narrow, None).unwrap(),
            Scalar::I8(6)
        );
        // Narrow elements + wide init promote.
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::I64(0), &narrow, None).unwrap(),
            Scalar::I64(6)
        );
        // Int elements + float init promote to f64.
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::F64(0.5), &a, None).unwrap(),
            Scalar::F64(6.5)
        );
    }

    #[test]
    fn min_max() {
        let a = Array::from(vec![5i64, -2, 9]);
        assert_eq!(
            fold_apply(FoldFn::Min, &Scalar::I64(i64::MAX), &a, None).unwrap(),
            Scalar::I64(-2)
        );
        assert_eq!(
            fold_apply(FoldFn::Max, &Scalar::I64(i64::MIN), &a, None).unwrap(),
            Scalar::I64(9)
        );
        // Init participates.
        assert_eq!(
            fold_apply(FoldFn::Min, &Scalar::I64(-100), &a, None).unwrap(),
            Scalar::I64(-100)
        );
    }

    #[test]
    fn count() {
        let a = Array::from(vec![1i64, 2, 3, 4]);
        assert_eq!(
            fold_apply(FoldFn::Count, &Scalar::I64(0), &a, None).unwrap(),
            Scalar::I64(4)
        );
        let sel = SelVec::new(vec![0, 2]);
        assert_eq!(
            fold_apply(FoldFn::Count, &Scalar::I64(5), &a, Some(&sel)).unwrap(),
            Scalar::I64(7)
        );
    }

    #[test]
    fn selection_restricts_folds() {
        let a = Array::from(vec![10i64, 20, 30, 40]);
        let sel = SelVec::new(vec![1, 3]);
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::I64(0), &a, Some(&sel)).unwrap(),
            Scalar::I64(60)
        );
        assert_eq!(
            fold_apply(FoldFn::Min, &Scalar::I64(i64::MAX), &a, Some(&sel)).unwrap(),
            Scalar::I64(20)
        );
    }

    #[test]
    fn all_any() {
        let b = Array::from(vec![true, true, false]);
        assert_eq!(
            fold_apply(FoldFn::All, &Scalar::Bool(true), &b, None).unwrap(),
            Scalar::Bool(false)
        );
        assert_eq!(
            fold_apply(FoldFn::Any, &Scalar::Bool(false), &b, None).unwrap(),
            Scalar::Bool(true)
        );
        // Selection that excludes the false lane.
        let sel = SelVec::new(vec![0, 1]);
        assert_eq!(
            fold_apply(FoldFn::All, &Scalar::Bool(true), &b, Some(&sel)).unwrap(),
            Scalar::Bool(true)
        );
        // Non-bool input rejected.
        let a = Array::from(vec![1i64]);
        assert!(fold_apply(FoldFn::All, &Scalar::Bool(true), &a, None).is_err());
    }

    #[test]
    fn empty_input_returns_init() {
        let a = Array::empty(ScalarType::I64);
        assert_eq!(
            fold_apply(FoldFn::Sum, &Scalar::I64(42), &a, None).unwrap(),
            Scalar::I64(42)
        );
        assert_eq!(
            fold_apply(FoldFn::Count, &Scalar::I64(0), &a, None).unwrap(),
            Scalar::I64(0)
        );
    }

    #[test]
    fn type_errors() {
        let s = Array::from(vec!["x".to_string()]);
        assert!(fold_apply(FoldFn::Sum, &Scalar::I64(0), &s, None).is_err());
        let b = Array::from(vec![true]);
        assert!(fold_apply(FoldFn::Sum, &Scalar::I64(0), &b, None).is_err());
        let a = Array::from(vec![1i64]);
        assert!(fold_apply(FoldFn::Sum, &Scalar::Str("x".into()), &a, None).is_err());
    }
}
