//! The kernel registry: an enumerable catalog of every pre-compiled
//! primitive, with per-kernel call statistics.
//!
//! §III-A: the interpreter "looks up" pre-compiled functions. Dispatch
//! itself is static (the `match`es in [`crate::map`] etc. — zero lookup
//! cost); the registry exists for the two things a lookup table would also
//! provide: *discoverability* (the VM can report which kernels exist, the
//! Table I conformance test walks it) and *statistics* (per-kernel call and
//! tuple counts feeding the profiler).

use std::collections::HashMap;

use adaptvm_dsl::ast::{FoldFn, MergeKind, ScalarOp};
use adaptvm_storage::scalar::ScalarType;
use parking_lot::Mutex;

use crate::filter::FilterFlavor;
use crate::map::MapMode;

/// Identity of one pre-compiled kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId {
    /// Skeleton family (`map`, `filter`, `fold`, `merge`, …).
    pub family: &'static str,
    /// Operation name within the family.
    pub op: String,
    /// Element type.
    pub ty: ScalarType,
    /// Flavor name (micro-adaptivity arm), when the family has flavors.
    pub flavor: Option<&'static str>,
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}_{}_{}", self.family, self.op, self.ty)?;
        if let Some(fl) = self.flavor {
            write!(f, "_{fl}")?;
        }
        Ok(())
    }
}

/// The numeric types the arithmetic kernels are monomorphized for.
pub const NUMERIC_TYPES: [ScalarType; 5] = [
    ScalarType::I8,
    ScalarType::I16,
    ScalarType::I32,
    ScalarType::I64,
    ScalarType::F64,
];

/// Enumerate every kernel this crate pre-compiles, mirroring Table I.
pub fn all_kernels() -> Vec<KernelId> {
    let mut out = Vec::new();
    let arith = [
        ScalarOp::Add,
        ScalarOp::Sub,
        ScalarOp::Mul,
        ScalarOp::Div,
        ScalarOp::Rem,
        ScalarOp::Min,
        ScalarOp::Max,
        ScalarOp::Neg,
        ScalarOp::Abs,
        ScalarOp::Sqrt,
        ScalarOp::Hash,
    ];
    let modes: [(&MapMode, &str); 2] =
        [(&MapMode::Full, "full"), (&MapMode::Selective, "selective")];
    for op in arith {
        for ty in NUMERIC_TYPES {
            for (_, mode_name) in modes {
                out.push(KernelId {
                    family: "map",
                    op: op.name().to_string(),
                    ty,
                    flavor: Some(mode_name),
                });
            }
        }
    }
    let cmps = [
        ScalarOp::Eq,
        ScalarOp::Ne,
        ScalarOp::Lt,
        ScalarOp::Le,
        ScalarOp::Gt,
        ScalarOp::Ge,
    ];
    for op in cmps {
        for ty in NUMERIC_TYPES.iter().chain([&ScalarType::Str]) {
            out.push(KernelId {
                family: "map",
                op: op.name().to_string(),
                ty: *ty,
                flavor: None,
            });
            for flavor in FilterFlavor::ALL {
                out.push(KernelId {
                    family: "filter",
                    op: op.name().to_string(),
                    ty: *ty,
                    flavor: Some(flavor.name()),
                });
            }
        }
    }
    for op in [ScalarOp::And, ScalarOp::Or, ScalarOp::Not] {
        out.push(KernelId {
            family: "map",
            op: op.name().to_string(),
            ty: ScalarType::Bool,
            flavor: None,
        });
    }
    for op in [ScalarOp::StrLen, ScalarOp::Concat] {
        out.push(KernelId {
            family: "map",
            op: op.name().to_string(),
            ty: ScalarType::Str,
            flavor: None,
        });
    }
    for f in [FoldFn::Sum, FoldFn::Min, FoldFn::Max, FoldFn::Count] {
        for ty in NUMERIC_TYPES {
            out.push(KernelId {
                family: "fold",
                op: f.name().to_string(),
                ty,
                flavor: None,
            });
        }
    }
    for f in [FoldFn::All, FoldFn::Any] {
        out.push(KernelId {
            family: "fold",
            op: f.name().to_string(),
            ty: ScalarType::Bool,
            flavor: None,
        });
    }
    for kind in [
        MergeKind::Union,
        MergeKind::Intersect,
        MergeKind::Diff,
        MergeKind::JoinLeftIdx,
        MergeKind::JoinRightIdx,
    ] {
        for ty in [
            ScalarType::I64,
            ScalarType::I32,
            ScalarType::F64,
            ScalarType::Str,
        ] {
            out.push(KernelId {
                family: "merge",
                op: kind.name().to_string(),
                ty,
                flavor: None,
            });
        }
    }
    for fam in ["read", "write", "gather", "scatter", "gen", "condense"] {
        for ty in NUMERIC_TYPES {
            out.push(KernelId {
                family: "move",
                op: fam.to_string(),
                ty,
                flavor: None,
            });
        }
    }
    out
}

/// Per-kernel call statistics, shared between interpreter threads.
#[derive(Debug, Default)]
pub struct KernelStats {
    counts: Mutex<HashMap<KernelId, KernelCounters>>,
}

/// Counters for one kernel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Number of invocations (chunks).
    pub calls: u64,
    /// Total tuples processed.
    pub tuples: u64,
}

impl KernelStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> KernelStats {
        KernelStats::default()
    }

    /// Record one call over `tuples` tuples.
    pub fn record(&self, id: KernelId, tuples: usize) {
        let mut map = self.counts.lock();
        let c = map.entry(id).or_default();
        c.calls += 1;
        c.tuples += tuples as u64;
    }

    /// Counters for one kernel.
    pub fn get(&self, id: &KernelId) -> KernelCounters {
        self.counts.lock().get(id).copied().unwrap_or_default()
    }

    /// Snapshot of all non-zero counters, sorted by kernel id.
    pub fn snapshot(&self) -> Vec<(KernelId, KernelCounters)> {
        let mut v: Vec<_> = self
            .counts
            .lock()
            .iter()
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Total calls across all kernels.
    pub fn total_calls(&self) -> u64 {
        self.counts.lock().values().map(|c| c.calls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I conformance: every skeleton family is represented.
    #[test]
    fn table1_families_present() {
        let all = all_kernels();
        for family in ["map", "filter", "fold", "merge", "move"] {
            assert!(
                all.iter().any(|k| k.family == family),
                "family {family} missing"
            );
        }
        for op in ["read", "write", "gather", "scatter", "gen", "condense"] {
            assert!(
                all.iter().any(|k| k.op == op),
                "Table I skeleton {op} missing"
            );
        }
    }

    #[test]
    fn registry_is_large_and_unique() {
        let all = all_kernels();
        assert!(
            all.len() > 200,
            "expected hundreds of kernels, got {}",
            all.len()
        );
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "kernel ids must be unique");
    }

    #[test]
    fn flavors_enumerated() {
        let all = all_kernels();
        let filter_flavors: std::collections::HashSet<_> = all
            .iter()
            .filter(|k| k.family == "filter")
            .filter_map(|k| k.flavor)
            .collect();
        assert_eq!(filter_flavors.len(), 3);
        let map_modes: std::collections::HashSet<_> = all
            .iter()
            .filter(|k| k.family == "map" && k.op == "add")
            .filter_map(|k| k.flavor)
            .collect();
        assert_eq!(map_modes.len(), 2);
    }

    #[test]
    fn stats_record_and_snapshot() {
        let stats = KernelStats::new();
        let id = KernelId {
            family: "map",
            op: "add".into(),
            ty: ScalarType::I64,
            flavor: Some("full"),
        };
        stats.record(id.clone(), 1024);
        stats.record(id.clone(), 512);
        let c = stats.get(&id);
        assert_eq!(c.calls, 2);
        assert_eq!(c.tuples, 1536);
        assert_eq!(stats.total_calls(), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0.to_string(), "map_add_i64_full");
    }
}
