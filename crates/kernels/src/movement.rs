//! Data-movement kernels: `gen`, `gather`, `scatter`, `condense`.
//!
//! `read`/`write` are thin wrappers over [`Array::slice`] /
//! [`Array::write_at`] and live with the interpreter's buffer handling;
//! the kernels here are the ones with per-element work.

use adaptvm_dsl::ast::ConflictFn;
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::sel::SelVec;

use crate::error::KernelError;

/// `gen (\i -> i) n` — the identity index array `[0, n)`, the seed of every
/// normalized `gen` chain.
pub fn gen_index(n: usize) -> Array {
    Array::I64((0..n as i64).collect())
}

/// `condense` — materialize the selected lanes of `data` densely.
pub fn condense(data: &Array, sel: Option<&SelVec>) -> Result<Array, KernelError> {
    match sel {
        None => Ok(data.clone()),
        Some(s) => Ok(data.take(s.indices())?),
    }
}

/// `gather` — `data[indices[i]]` for each lane (bounds-checked).
pub fn gather(data: &Array, indices: &Array) -> Result<Array, KernelError> {
    let idx = indices.to_i64_vec().ok_or_else(|| KernelError::NoKernel {
        op: "gather".into(),
        types: vec![indices.scalar_type()],
    })?;
    let n = data.len();
    let mut u32s = Vec::with_capacity(idx.len());
    for i in idx {
        if i < 0 || i as usize >= n {
            return Err(KernelError::Storage(
                adaptvm_storage::StorageError::OutOfBounds {
                    index: i.max(0) as usize,
                    len: n,
                },
            ));
        }
        u32s.push(i as u32);
    }
    Ok(data.take(&u32s)?)
}

/// `scatter` — write `values[i]` to `target[indices[i]]`, resolving
/// conflicting lanes with `conflict` (Table I: "using function f to handle
/// conflicts"). The target grows as needed.
pub fn scatter(
    target: &mut Array,
    indices: &Array,
    values: &Array,
    conflict: ConflictFn,
) -> Result<(), KernelError> {
    let idx = indices.to_i64_vec().ok_or_else(|| KernelError::NoKernel {
        op: "scatter".into(),
        types: vec![indices.scalar_type()],
    })?;
    if idx.len() != values.len() {
        return Err(KernelError::LengthMismatch {
            left: idx.len(),
            right: values.len(),
        });
    }
    if values.scalar_type() != target.scalar_type() {
        return Err(KernelError::Storage(
            adaptvm_storage::StorageError::TypeMismatch {
                expected: target.scalar_type(),
                found: values.scalar_type(),
            },
        ));
    }
    // Grow the target to cover the maximum index.
    if let Some(&max) = idx.iter().max() {
        // Every index must be validated, not just the maximum: a mixed
        // vector like [5, -1] passes a max-only check and then wraps to a
        // huge usize at write time.
        if idx.iter().any(|&i| i < 0) {
            return Err(KernelError::Precondition("negative scatter index".into()));
        }
        let needed = max as usize + 1;
        if target.len() < needed {
            let pad = default_array(target, needed - target.len());
            target.extend(&pad)?;
        }
    }

    macro_rules! scatter_impl {
        ($t:expr, $v:expr, $merge:expr) => {{
            for (i, val) in idx.iter().zip($v.iter()) {
                let slot = &mut $t[*i as usize];
                *slot = $merge(slot.clone(), val.clone());
            }
        }};
    }
    macro_rules! dispatch_numeric {
        ($t:expr, $v:expr) => {{
            match conflict {
                ConflictFn::LastWins => scatter_impl!($t, $v, |_old, new| new),
                ConflictFn::Add => scatter_impl!($t, $v, |old, new| old + new),
                ConflictFn::Min => {
                    scatter_impl!($t, $v, |old: _, new: _| if new < old { new } else { old })
                }
                ConflictFn::Max => {
                    scatter_impl!($t, $v, |old: _, new: _| if new > old { new } else { old })
                }
            }
        }};
    }
    match (target, values) {
        (Array::I8(t), Array::I8(v)) => dispatch_numeric!(t, v),
        (Array::I16(t), Array::I16(v)) => dispatch_numeric!(t, v),
        (Array::I32(t), Array::I32(v)) => dispatch_numeric!(t, v),
        (Array::I64(t), Array::I64(v)) => dispatch_numeric!(t, v),
        (Array::F64(t), Array::F64(v)) => dispatch_numeric!(t, v),
        (Array::Bool(t), Array::Bool(v)) => match conflict {
            ConflictFn::LastWins => scatter_impl!(t, v, |_old, new| new),
            ConflictFn::Add | ConflictFn::Max => scatter_impl!(t, v, |old, new| old | new),
            ConflictFn::Min => scatter_impl!(t, v, |old, new| old & new),
        },
        (Array::Str(t), Array::Str(v)) => match conflict {
            ConflictFn::LastWins => scatter_impl!(t, v, |_old, new: String| new),
            other => {
                return Err(KernelError::Precondition(format!(
                    "scatter conflict {other:?} not defined for strings"
                )))
            }
        },
        _ => unreachable!("type equality checked above"),
    }
    Ok(())
}

fn default_array(like: &Array, n: usize) -> Array {
    let default = match like.scalar_type() {
        t if t.is_integer() => Scalar::int_of_type(0, t),
        adaptvm_storage::scalar::ScalarType::F64 => Scalar::F64(0.0),
        adaptvm_storage::scalar::ScalarType::Bool => Scalar::Bool(false),
        adaptvm_storage::scalar::ScalarType::Str => Scalar::Str(String::new()),
        _ => unreachable!(),
    };
    Array::splat(&default, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_identity() {
        assert_eq!(gen_index(4), Array::from(vec![0i64, 1, 2, 3]));
        assert_eq!(gen_index(0).len(), 0);
    }

    #[test]
    fn condense_with_and_without_sel() {
        let a = Array::from(vec![9i64, 8, 7]);
        assert_eq!(condense(&a, None).unwrap(), a);
        let sel = SelVec::new(vec![0, 2]);
        assert_eq!(
            condense(&a, Some(&sel)).unwrap(),
            Array::from(vec![9i64, 7])
        );
    }

    #[test]
    fn gather_bounds() {
        let a = Array::from(vec![10i64, 20, 30]);
        let idx = Array::from(vec![2i64, 0]);
        assert_eq!(gather(&a, &idx).unwrap(), Array::from(vec![30i64, 10]));
        assert!(gather(&a, &Array::from(vec![3i64])).is_err());
        assert!(gather(&a, &Array::from(vec![-1i64])).is_err());
        assert!(gather(&a, &Array::from(vec![1.5f64])).is_err());
    }

    #[test]
    fn scatter_last_wins_and_grows() {
        let mut t = Array::from(vec![0i64; 2]);
        scatter(
            &mut t,
            &Array::from(vec![0i64, 4, 0]),
            &Array::from(vec![1i64, 2, 3]),
            ConflictFn::LastWins,
        )
        .unwrap();
        assert_eq!(t, Array::from(vec![3i64, 0, 0, 0, 2]));
    }

    #[test]
    fn scatter_add_aggregates() {
        // Scatter-add is the aggregation primitive.
        let mut t = Array::from(vec![0i64; 3]);
        scatter(
            &mut t,
            &Array::from(vec![1i64, 1, 2, 1]),
            &Array::from(vec![5i64, 7, 9, 1]),
            ConflictFn::Add,
        )
        .unwrap();
        assert_eq!(t, Array::from(vec![0i64, 13, 9]));
    }

    #[test]
    fn scatter_min_max() {
        let mut t = Array::from(vec![100i64, 100]);
        scatter(
            &mut t,
            &Array::from(vec![0i64, 0, 1]),
            &Array::from(vec![5i64, 9, 200]),
            ConflictFn::Min,
        )
        .unwrap();
        assert_eq!(t, Array::from(vec![5i64, 100]));
        let mut t = Array::from(vec![0i64, 0]);
        scatter(
            &mut t,
            &Array::from(vec![0i64, 0]),
            &Array::from(vec![5i64, 9]),
            ConflictFn::Max,
        )
        .unwrap();
        assert_eq!(t, Array::from(vec![9i64, 0]));
    }

    #[test]
    fn scatter_errors() {
        let mut t = Array::from(vec![0i64]);
        // Length mismatch.
        assert!(scatter(
            &mut t,
            &Array::from(vec![0i64, 1]),
            &Array::from(vec![1i64]),
            ConflictFn::Add
        )
        .is_err());
        // Type mismatch.
        assert!(scatter(
            &mut t,
            &Array::from(vec![0i64]),
            &Array::from(vec![1.0f64]),
            ConflictFn::Add
        )
        .is_err());
        // Negative index.
        assert!(scatter(
            &mut t,
            &Array::from(vec![-1i64]),
            &Array::from(vec![1i64]),
            ConflictFn::Add
        )
        .is_err());
        // Mixed-sign indices: a positive maximum must not mask a negative
        // entry (regression — this used to wrap to a huge usize and panic).
        assert!(scatter(
            &mut t,
            &Array::from(vec![5i64, -1]),
            &Array::from(vec![1i64, 2]),
            ConflictFn::LastWins
        )
        .is_err());
        // String min undefined.
        let mut s = Array::from(vec!["".to_string()]);
        assert!(scatter(
            &mut s,
            &Array::from(vec![0i64]),
            &Array::from(vec!["x".to_string()]),
            ConflictFn::Min
        )
        .is_err());
    }

    #[test]
    fn scatter_bool_semantics() {
        let mut t = Array::from(vec![false, true]);
        scatter(
            &mut t,
            &Array::from(vec![0i64, 0, 1]),
            &Array::from(vec![true, false, false]),
            ConflictFn::Max, // OR
        )
        .unwrap();
        assert_eq!(t, Array::from(vec![true, true]));
    }
}
