//! Kernel error type.

use std::fmt;

use adaptvm_storage::scalar::ScalarType;
use adaptvm_storage::StorageError;

/// Errors produced by kernel dispatch and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// No kernel exists for the requested (op, types) combination.
    NoKernel {
        /// Operation name.
        op: String,
        /// Operand types.
        types: Vec<ScalarType>,
    },
    /// Operand lengths disagree.
    LengthMismatch {
        /// First length.
        left: usize,
        /// Second length.
        right: usize,
    },
    /// All operands were constants (a map needs at least one array).
    NoArrayOperand,
    /// Underlying storage error.
    Storage(StorageError),
    /// Input violates a kernel precondition (e.g. unsorted merge input).
    Precondition(String),
    /// The pipeline did not complete on its executor: cancelled via a
    /// cancel token, past its deadline, or refused admission by a
    /// shut-down / draining scheduler or service.
    Cancelled,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoKernel { op, types } => {
                write!(f, "no kernel for {op} over {types:?}")
            }
            KernelError::LengthMismatch { left, right } => {
                write!(f, "operand length mismatch: {left} vs {right}")
            }
            KernelError::NoArrayOperand => write!(f, "map needs at least one array operand"),
            KernelError::Storage(e) => write!(f, "storage error: {e}"),
            KernelError::Precondition(m) => write!(f, "kernel precondition violated: {m}"),
            KernelError::Cancelled => {
                write!(f, "pipeline cancelled (token, deadline, or admission)")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<StorageError> for KernelError {
    fn from(e: StorageError) -> KernelError {
        KernelError::Storage(e)
    }
}
