//! `filter` kernels: compute selections without moving data (Table I).
//!
//! Three flavors implement the §III-C micro-adaptivity choice:
//! * [`FilterFlavor::SelVecLoop`] — branchy loop appending matching indices
//!   to a selection vector; cheapest at low-to-medium selectivity.
//! * [`FilterFlavor::Bitmap`] — branch-free predicate pass building a
//!   bitmap, then word-at-a-time conversion; wins at high selectivity and
//!   composes with bitmap logic.
//! * [`FilterFlavor::ComputeAll`] — materialize the full boolean column
//!   with the `map` kernel, then scan; the "fully evaluate expressions"
//!   strategy the paper suggests for (close to) non-selective flows.
//!
//! All flavors compose with an existing pending selection and produce
//! identical results — a property-tested invariant.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_storage::array::Array;
use adaptvm_storage::sel::{Bitmap, SelVec};

use crate::error::KernelError;
use crate::map::{map_apply, MapMode};
use crate::operand::{as_bool, as_f64, as_i64, as_str, common_len, Operand};

/// The filter implementation flavors (micro-adaptivity arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterFlavor {
    /// Branchy selection-vector loop.
    SelVecLoop,
    /// Branch-free bitmap pass + conversion.
    Bitmap,
    /// Materialize all booleans, then scan.
    ComputeAll,
}

impl FilterFlavor {
    /// All flavors, for sweeps and equivalence tests.
    pub const ALL: [FilterFlavor; 3] = [
        FilterFlavor::SelVecLoop,
        FilterFlavor::Bitmap,
        FilterFlavor::ComputeAll,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FilterFlavor::SelVecLoop => "selvec",
            FilterFlavor::Bitmap => "bitmap",
            FilterFlavor::ComputeAll => "compute_all",
        }
    }
}

/// Evaluate a comparison predicate and return the selection it induces.
///
/// `op` must be a comparison (or `Eq` against a boolean for normalized
/// conjunction predicates). `existing` composes: only already-selected
/// lanes are candidates, and returned indices are positions in the
/// underlying (physical) chunk.
pub fn filter_cmp(
    op: ScalarOp,
    operands: &[Operand<'_>],
    existing: Option<&SelVec>,
    flavor: FilterFlavor,
) -> Result<SelVec, KernelError> {
    if !(op.is_comparison()) {
        return Err(KernelError::NoKernel {
            op: op.name().into(),
            types: operands.iter().map(Operand::scalar_type).collect(),
        });
    }
    let n = common_len(operands)?;
    check_existing(existing, n)?;
    match flavor {
        FilterFlavor::ComputeAll => {
            let bools = map_apply(op, operands, None, MapMode::Full)?;
            filter_bools(&bools, existing, FilterFlavor::SelVecLoop)
        }
        FilterFlavor::Bitmap => {
            let bools = map_apply(op, operands, None, MapMode::Full)?;
            let bm = Bitmap::from_bools(bools.as_bool().expect("comparison yields bools"));
            let bm = match existing {
                Some(sel) => bm.and(&sel.to_bitmap(n))?,
                None => bm,
            };
            Ok(bm.to_selvec())
        }
        FilterFlavor::SelVecLoop => selvec_loop(op, operands, existing, n),
    }
}

/// Selection from an already-computed boolean column.
pub fn filter_bools(
    bools: &Array,
    existing: Option<&SelVec>,
    flavor: FilterFlavor,
) -> Result<SelVec, KernelError> {
    let b = bools.as_bool().ok_or_else(|| KernelError::NoKernel {
        op: "filter-bools".into(),
        types: vec![bools.scalar_type()],
    })?;
    check_existing(existing, b.len())?;
    match flavor {
        FilterFlavor::Bitmap => {
            let bm = Bitmap::from_bools(b);
            let bm = match existing {
                Some(sel) => bm.and(&sel.to_bitmap(b.len()))?,
                None => bm,
            };
            Ok(bm.to_selvec())
        }
        _ => {
            let mut out = Vec::new();
            match existing {
                Some(sel) => {
                    for &i in sel.indices() {
                        if b[i as usize] {
                            out.push(i);
                        }
                    }
                }
                None => {
                    for (i, &v) in b.iter().enumerate() {
                        if v {
                            out.push(i as u32);
                        }
                    }
                }
            }
            Ok(SelVec::new(out))
        }
    }
}

/// Every index of a pending selection must address a lane of the filter
/// input. Out-of-range indices (a predicate column shorter than the flow
/// carrier) would otherwise index past the column — and the three flavors
/// would disagree on how. One typed error keeps them identical.
fn check_existing(existing: Option<&SelVec>, n: usize) -> Result<(), KernelError> {
    if let Some(sel) = existing {
        for &i in sel.indices() {
            if (i as usize) >= n {
                return Err(KernelError::Precondition(format!(
                    "selection index {i} out of range of {n}-lane filter input"
                )));
            }
        }
    }
    Ok(())
}

fn selvec_loop(
    op: ScalarOp,
    operands: &[Operand<'_>],
    existing: Option<&SelVec>,
    n: usize,
) -> Result<SelVec, KernelError> {
    macro_rules! run {
        ($a:expr, $b:expr, $pred:expr) => {{
            let (a, b) = ($a, $b);
            let mut out = Vec::new();
            match existing {
                Some(sel) => {
                    for &i in sel.indices() {
                        let i = i as usize;
                        if $pred(&a.get(i), &b.get(i)) {
                            out.push(i as u32);
                        }
                    }
                }
                None => {
                    for i in 0..n {
                        if $pred(&a.get(i), &b.get(i)) {
                            out.push(i as u32);
                        }
                    }
                }
            }
            Ok(SelVec::new(out))
        }};
    }
    macro_rules! typed {
        ($pred:expr) => {{
            let ty0 = operands[0].scalar_type();
            let ty1 = operands[1].scalar_type();
            use adaptvm_storage::scalar::ScalarType as T;
            match (ty0, ty1) {
                (T::F64, _) | (_, T::F64) => {
                    run!(as_f64(&operands[0])?, as_f64(&operands[1])?, $pred)
                }
                (T::Str, T::Str) => {
                    let a = as_str(&operands[0])?;
                    let b = as_str(&operands[1])?;
                    let mut out = Vec::new();
                    match existing {
                        Some(sel) => {
                            for &i in sel.indices() {
                                if $pred(&a.get(i as usize), &b.get(i as usize)) {
                                    out.push(i);
                                }
                            }
                        }
                        None => {
                            for i in 0..n {
                                if $pred(&a.get(i), &b.get(i)) {
                                    out.push(i as u32);
                                }
                            }
                        }
                    }
                    Ok(SelVec::new(out))
                }
                (T::Bool, T::Bool) => {
                    run!(as_bool(&operands[0])?, as_bool(&operands[1])?, $pred)
                }
                _ => run!(as_i64(&operands[0])?, as_i64(&operands[1])?, $pred),
            }
        }};
    }
    match op {
        ScalarOp::Eq => typed!(|a, b| a == b),
        ScalarOp::Ne => typed!(|a, b| a != b),
        ScalarOp::Lt => typed!(|a, b| a < b),
        ScalarOp::Le => typed!(|a, b| a <= b),
        ScalarOp::Gt => typed!(|a, b| a > b),
        ScalarOp::Ge => typed!(|a, b| a >= b),
        other => Err(KernelError::NoKernel {
            op: other.name().into(),
            types: operands.iter().map(Operand::scalar_type).collect(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::scalar::Scalar;

    fn data() -> Array {
        Array::from(vec![5i64, -3, 0, 7, -1, 2])
    }

    #[test]
    fn flavors_agree_dense() {
        let d = data();
        let ops = [Operand::Col(&d), Operand::Const(Scalar::I64(0))];
        let expected: Vec<u32> = vec![0, 3, 5];
        for flavor in FilterFlavor::ALL {
            let sel = filter_cmp(ScalarOp::Gt, &ops, None, flavor).unwrap();
            assert_eq!(sel.indices(), &expected[..], "flavor {flavor:?}");
        }
    }

    #[test]
    fn flavors_agree_with_existing_selection() {
        let d = data();
        let ops = [Operand::Col(&d), Operand::Const(Scalar::I64(0))];
        let existing = SelVec::new(vec![1, 2, 3, 5]);
        for flavor in FilterFlavor::ALL {
            let sel = filter_cmp(ScalarOp::Gt, &ops, Some(&existing), flavor).unwrap();
            assert_eq!(sel.indices(), &[3, 5], "flavor {flavor:?}");
        }
    }

    #[test]
    fn all_comparison_ops() {
        let d = data();
        let c = Operand::Const(Scalar::I64(0));
        let cases = [
            (ScalarOp::Eq, vec![2u32]),
            (ScalarOp::Ne, vec![0, 1, 3, 4, 5]),
            (ScalarOp::Lt, vec![1, 4]),
            (ScalarOp::Le, vec![1, 2, 4]),
            (ScalarOp::Gt, vec![0, 3, 5]),
            (ScalarOp::Ge, vec![0, 2, 3, 5]),
        ];
        for (op, expected) in cases {
            let sel = filter_cmp(
                op,
                &[Operand::Col(&d), c.clone()],
                None,
                FilterFlavor::SelVecLoop,
            )
            .unwrap();
            assert_eq!(sel.indices(), &expected[..], "{op:?}");
        }
    }

    #[test]
    fn float_and_string_predicates() {
        let f = Array::from(vec![1.5, -0.5, 3.0]);
        let sel = filter_cmp(
            ScalarOp::Gt,
            &[Operand::Col(&f), Operand::Const(Scalar::F64(0.0))],
            None,
            FilterFlavor::SelVecLoop,
        )
        .unwrap();
        assert_eq!(sel.indices(), &[0, 2]);
        let s = Array::from(vec!["b".to_string(), "a".to_string(), "c".to_string()]);
        for flavor in FilterFlavor::ALL {
            let sel = filter_cmp(
                ScalarOp::Ge,
                &[Operand::Col(&s), Operand::Const(Scalar::Str("b".into()))],
                None,
                flavor,
            )
            .unwrap();
            assert_eq!(sel.indices(), &[0, 2], "{flavor:?}");
        }
    }

    #[test]
    fn bool_eq_predicate_for_normalized_conjunctions() {
        let b = Array::from(vec![true, false, true]);
        let sel = filter_cmp(
            ScalarOp::Eq,
            &[Operand::Col(&b), Operand::Const(Scalar::Bool(true))],
            None,
            FilterFlavor::SelVecLoop,
        )
        .unwrap();
        assert_eq!(sel.indices(), &[0, 2]);
    }

    #[test]
    fn filter_bools_flavors_agree() {
        let bools = Array::from(vec![true, false, false, true]);
        let existing = SelVec::new(vec![0, 1, 2]);
        for flavor in FilterFlavor::ALL {
            let sel = filter_bools(&bools, Some(&existing), flavor).unwrap();
            assert_eq!(sel.indices(), &[0], "{flavor:?}");
            let dense = filter_bools(&bools, None, flavor).unwrap();
            assert_eq!(dense.indices(), &[0, 3], "{flavor:?}");
        }
        assert!(filter_bools(&data(), None, FilterFlavor::SelVecLoop).is_err());
    }

    #[test]
    fn non_comparison_rejected() {
        let d = data();
        assert!(filter_cmp(
            ScalarOp::Add,
            &[Operand::Col(&d), Operand::Const(Scalar::I64(0))],
            None,
            FilterFlavor::SelVecLoop
        )
        .is_err());
    }

    #[test]
    fn out_of_range_selection_is_typed_error() {
        // Regression: a pending selection addressing lanes past the
        // predicate column used to panic in ComputeAll and silently
        // mis-compare in SelVecLoop; now every flavor reports the same
        // typed precondition error.
        let sel = SelVec::new(vec![0, 5]);
        let short = Array::from(vec![true, false]);
        for flavor in FilterFlavor::ALL {
            assert!(
                matches!(
                    filter_bools(&short, Some(&sel), flavor),
                    Err(KernelError::Precondition(_))
                ),
                "{flavor:?}"
            );
        }
        let d = Array::from(vec![1i64, 2]);
        let ops = [Operand::Col(&d), Operand::Const(Scalar::I64(0))];
        for flavor in FilterFlavor::ALL {
            assert!(
                matches!(
                    filter_cmp(ScalarOp::Gt, &ops, Some(&sel), flavor),
                    Err(KernelError::Precondition(_))
                ),
                "{flavor:?}"
            );
        }
    }

    #[test]
    fn empty_selection_result() {
        let d = data();
        let sel = filter_cmp(
            ScalarOp::Gt,
            &[Operand::Col(&d), Operand::Const(Scalar::I64(100))],
            None,
            FilterFlavor::Bitmap,
        )
        .unwrap();
        assert!(sel.is_empty());
    }
}
