//! `map` kernels: element-wise application of a single scalar operation.
//!
//! These are the pre-compiled functions the vectorized interpreter looks up
//! after normalization (§III-A). Every (operation × type) pair is a
//! monomorphized tight loop.
//!
//! [`MapMode`] is a micro-adaptivity flavor (§III-C): `Full` computes every
//! lane (branch-free; what the paper calls "fully evaluate expressions" in
//! the non-selective regime), `Selective` computes only the lanes of the
//! pending selection (cheaper under selective flows, at the cost of a
//! data-dependent access pattern). Results are always full-length so the
//! pending selection's positions stay valid; unselected lanes hold the type
//! default in `Selective` mode.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_storage::array::Array;
#[cfg(test)]
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::scalar::ScalarType;
use adaptvm_storage::sel::SelVec;

use crate::error::KernelError;
use crate::operand::{
    as_bool, as_f64, as_i16, as_i32, as_i64, as_i8, as_str, common_len, Operand, Typed,
};

/// Full vs selective computation (micro-adaptivity flavor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMode {
    /// Compute every lane.
    Full,
    /// Compute only the selected lanes (others hold the type default).
    Selective,
}

#[inline(always)]
fn unary_loop<T: Copy, R: Copy + Default>(
    n: usize,
    sel: Option<&SelVec>,
    mode: MapMode,
    a: Typed<'_, T>,
    f: impl Fn(T) -> R,
) -> Vec<R> {
    match (sel, mode) {
        (Some(s), MapMode::Selective) => {
            let mut out = vec![R::default(); n];
            for &i in s.indices() {
                let i = i as usize;
                out[i] = f(a.get(i));
            }
            out
        }
        _ => (0..n).map(|i| f(a.get(i))).collect(),
    }
}

#[inline(always)]
fn binary_loop<T: Copy, R: Copy + Default>(
    n: usize,
    sel: Option<&SelVec>,
    mode: MapMode,
    a: Typed<'_, T>,
    b: Typed<'_, T>,
    f: impl Fn(T, T) -> R,
) -> Vec<R> {
    match (sel, mode) {
        (Some(s), MapMode::Selective) => {
            let mut out = vec![R::default(); n];
            for &i in s.indices() {
                let i = i as usize;
                out[i] = f(a.get(i), b.get(i));
            }
            out
        }
        _ => (0..n).map(|i| f(a.get(i), b.get(i))).collect(),
    }
}

fn promoted(operands: &[Operand<'_>], op: ScalarOp) -> Result<ScalarType, KernelError> {
    let mut ty = operands[0].scalar_type();
    for o in &operands[1..] {
        ty = ty
            .promote(o.scalar_type())
            .ok_or_else(|| KernelError::NoKernel {
                op: op.name().into(),
                types: operands.iter().map(Operand::scalar_type).collect(),
            })?;
    }
    Ok(ty)
}

/// 64-bit multiplicative hash (Fibonacci hashing).
#[inline(always)]
pub fn hash_i64(v: i64) -> i64 {
    (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as i64
}

/// FNV-1a over bytes, for string hashing.
#[inline(always)]
pub fn hash_str(s: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h as i64
}

/// Apply one scalar operation element-wise over operands.
///
/// `sel`/`mode` implement the full-vs-selective flavor choice; the result
/// is always `n` lanes long.
pub fn map_apply(
    op: ScalarOp,
    operands: &[Operand<'_>],
    sel: Option<&SelVec>,
    mode: MapMode,
) -> Result<Array, KernelError> {
    let n = common_len(operands)?;
    if operands.len() != op.arity() {
        return Err(KernelError::NoKernel {
            op: op.name().into(),
            types: operands.iter().map(Operand::scalar_type).collect(),
        });
    }

    macro_rules! arith {
        ($f_int:expr, $f_f64:expr) => {{
            let p = promoted(operands, op)?;
            match p {
                ScalarType::I8 => Ok(Array::I8(binary_loop(
                    n,
                    sel,
                    mode,
                    as_i8(&operands[0])?,
                    as_i8(&operands[1])?,
                    $f_int,
                ))),
                ScalarType::I16 => Ok(Array::I16(binary_loop(
                    n,
                    sel,
                    mode,
                    as_i16(&operands[0])?,
                    as_i16(&operands[1])?,
                    $f_int,
                ))),
                ScalarType::I32 => Ok(Array::I32(binary_loop(
                    n,
                    sel,
                    mode,
                    as_i32(&operands[0])?,
                    as_i32(&operands[1])?,
                    $f_int,
                ))),
                ScalarType::I64 => Ok(Array::I64(binary_loop(
                    n,
                    sel,
                    mode,
                    as_i64(&operands[0])?,
                    as_i64(&operands[1])?,
                    $f_int,
                ))),
                ScalarType::F64 => Ok(Array::F64(binary_loop(
                    n,
                    sel,
                    mode,
                    as_f64(&operands[0])?,
                    as_f64(&operands[1])?,
                    $f_f64,
                ))),
                other => Err(KernelError::NoKernel {
                    op: op.name().into(),
                    types: vec![other],
                }),
            }
        }};
    }

    macro_rules! compare {
        ($f:expr) => {{
            let p = promoted(operands, op)?;
            let bools = match p {
                ScalarType::I8 => binary_loop(
                    n,
                    sel,
                    mode,
                    as_i8(&operands[0])?,
                    as_i8(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::I16 => binary_loop(
                    n,
                    sel,
                    mode,
                    as_i16(&operands[0])?,
                    as_i16(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::I32 => binary_loop(
                    n,
                    sel,
                    mode,
                    as_i32(&operands[0])?,
                    as_i32(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::I64 => binary_loop(
                    n,
                    sel,
                    mode,
                    as_i64(&operands[0])?,
                    as_i64(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::F64 => binary_loop(
                    n,
                    sel,
                    mode,
                    as_f64(&operands[0])?,
                    as_f64(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::Bool => binary_loop(
                    n,
                    sel,
                    mode,
                    as_bool(&operands[0])?,
                    as_bool(&operands[1])?,
                    |a, b| $f(&a, &b),
                ),
                ScalarType::Str => {
                    let a = as_str(&operands[0])?;
                    let b = as_str(&operands[1])?;
                    (0..n).map(|i| $f(&a.get(i), &b.get(i))).collect()
                }
            };
            Ok(Array::Bool(bools))
        }};
    }

    match op {
        ScalarOp::Add => arith!(|a, b| a.wrapping_add(b), |a, b| a + b),
        ScalarOp::Sub => arith!(|a, b| a.wrapping_sub(b), |a, b| a - b),
        ScalarOp::Mul => arith!(|a, b| a.wrapping_mul(b), |a, b| a * b),
        // Integer division by zero yields 0 (database-style total division;
        // the DSL has no NULLs).
        ScalarOp::Div => arith!(|a, b| if b == 0 { 0 } else { a.wrapping_div(b) }, |a, b| a
            / b),
        ScalarOp::Rem => arith!(|a, b| if b == 0 { 0 } else { a.wrapping_rem(b) }, |a, b| a
            % b),
        ScalarOp::Min => arith!(|a, b| a.min(b), |a: f64, b: f64| a.min(b)),
        ScalarOp::Max => arith!(|a, b| a.max(b), |a: f64, b: f64| a.max(b)),
        ScalarOp::Eq => compare!(|a, b| a == b),
        ScalarOp::Ne => compare!(|a, b| a != b),
        ScalarOp::Lt => compare!(|a, b| a < b),
        ScalarOp::Le => compare!(|a, b| a <= b),
        ScalarOp::Gt => compare!(|a, b| a > b),
        ScalarOp::Ge => compare!(|a, b| a >= b),
        ScalarOp::And => Ok(Array::Bool(binary_loop(
            n,
            sel,
            mode,
            as_bool(&operands[0])?,
            as_bool(&operands[1])?,
            |a, b| a && b,
        ))),
        ScalarOp::Or => Ok(Array::Bool(binary_loop(
            n,
            sel,
            mode,
            as_bool(&operands[0])?,
            as_bool(&operands[1])?,
            |a, b| a || b,
        ))),
        ScalarOp::Not => Ok(Array::Bool(unary_loop(
            n,
            sel,
            mode,
            as_bool(&operands[0])?,
            |a| !a,
        ))),
        ScalarOp::Neg => match operands[0].scalar_type() {
            ScalarType::I8 => Ok(Array::I8(unary_loop(
                n,
                sel,
                mode,
                as_i8(&operands[0])?,
                |a| a.wrapping_neg(),
            ))),
            ScalarType::I16 => Ok(Array::I16(unary_loop(
                n,
                sel,
                mode,
                as_i16(&operands[0])?,
                |a| a.wrapping_neg(),
            ))),
            ScalarType::I32 => Ok(Array::I32(unary_loop(
                n,
                sel,
                mode,
                as_i32(&operands[0])?,
                |a| a.wrapping_neg(),
            ))),
            ScalarType::I64 => Ok(Array::I64(unary_loop(
                n,
                sel,
                mode,
                as_i64(&operands[0])?,
                |a| a.wrapping_neg(),
            ))),
            ScalarType::F64 => Ok(Array::F64(unary_loop(
                n,
                sel,
                mode,
                as_f64(&operands[0])?,
                |a| -a,
            ))),
            other => Err(KernelError::NoKernel {
                op: "neg".into(),
                types: vec![other],
            }),
        },
        ScalarOp::Abs => match operands[0].scalar_type() {
            ScalarType::I8 => Ok(Array::I8(unary_loop(
                n,
                sel,
                mode,
                as_i8(&operands[0])?,
                |a| a.wrapping_abs(),
            ))),
            ScalarType::I16 => Ok(Array::I16(unary_loop(
                n,
                sel,
                mode,
                as_i16(&operands[0])?,
                |a| a.wrapping_abs(),
            ))),
            ScalarType::I32 => Ok(Array::I32(unary_loop(
                n,
                sel,
                mode,
                as_i32(&operands[0])?,
                |a| a.wrapping_abs(),
            ))),
            ScalarType::I64 => Ok(Array::I64(unary_loop(
                n,
                sel,
                mode,
                as_i64(&operands[0])?,
                |a| a.wrapping_abs(),
            ))),
            ScalarType::F64 => Ok(Array::F64(unary_loop(
                n,
                sel,
                mode,
                as_f64(&operands[0])?,
                |a| a.abs(),
            ))),
            other => Err(KernelError::NoKernel {
                op: "abs".into(),
                types: vec![other],
            }),
        },
        ScalarOp::Sqrt => Ok(Array::F64(unary_loop(
            n,
            sel,
            mode,
            as_f64(&operands[0])?,
            |a| a.sqrt(),
        ))),
        ScalarOp::Hash => match operands[0].scalar_type() {
            ScalarType::Str => {
                let a = as_str(&operands[0])?;
                Ok(Array::I64((0..n).map(|i| hash_str(a.get(i))).collect()))
            }
            ScalarType::F64 => Ok(Array::I64(unary_loop(
                n,
                sel,
                mode,
                as_f64(&operands[0])?,
                |a| hash_i64(a.to_bits() as i64),
            ))),
            ScalarType::Bool => {
                let a = as_bool(&operands[0])?;
                Ok(Array::I64(unary_loop(n, sel, mode, a, |a| {
                    hash_i64(a as i64)
                })))
            }
            _ => Ok(Array::I64(unary_loop(
                n,
                sel,
                mode,
                as_i64(&operands[0])?,
                hash_i64,
            ))),
        },
        ScalarOp::Cast(target) => {
            // Cast always runs full: it is cheap and keeping lanes aligned
            // beats skipping work.
            let src = match &operands[0] {
                Operand::Col(a) => (*a).clone(),
                Operand::Const(s) => Array::splat(s, n),
            };
            Ok(src.cast(target)?)
        }
        ScalarOp::StrLen => {
            let a = as_str(&operands[0])?;
            Ok(Array::I64((0..n).map(|i| a.get(i).len() as i64).collect()))
        }
        ScalarOp::Concat => {
            let a = as_str(&operands[0])?;
            let b = as_str(&operands[1])?;
            Ok(Array::Str(
                (0..n)
                    .map(|i| {
                        let mut s = String::with_capacity(a.get(i).len() + b.get(i).len());
                        s.push_str(a.get(i));
                        s.push_str(b.get(i));
                        s
                    })
                    .collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(v: Vec<i64>) -> Array {
        Array::from(v)
    }

    #[test]
    fn arithmetic_same_type() {
        let a = col(vec![1, 2, 3]);
        let b = col(vec![10, 20, 30]);
        let r = map_apply(
            ScalarOp::Add,
            &[Operand::Col(&a), Operand::Col(&b)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![11, 22, 33]));
        let r = map_apply(
            ScalarOp::Mul,
            &[Operand::Col(&a), Operand::Const(Scalar::I64(2))],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![2, 4, 6]));
    }

    #[test]
    fn mixed_width_promotes() {
        let narrow = Array::I16(vec![1, 2]);
        let wide = col(vec![100, 200]);
        let r = map_apply(
            ScalarOp::Add,
            &[Operand::Col(&narrow), Operand::Col(&wide)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![101, 202]));
        // int + float promotes to f64.
        let f = Array::from(vec![0.5, 0.5]);
        let r = map_apply(
            ScalarOp::Add,
            &[Operand::Col(&narrow), Operand::Col(&f)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::from(vec![1.5, 2.5]));
    }

    #[test]
    fn narrow_type_native_loops() {
        let a = Array::I8(vec![100, -100]);
        let b = Array::I8(vec![100, -100]);
        let r = map_apply(
            ScalarOp::Add,
            &[Operand::Col(&a), Operand::Col(&b)],
            None,
            MapMode::Full,
        )
        .unwrap();
        // Wrapping arithmetic at the native width.
        assert_eq!(r, Array::I8(vec![-56, 56]));
        assert_eq!(r.scalar_type(), ScalarType::I8);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let a = col(vec![10, 10]);
        let b = col(vec![0, 2]);
        let r = map_apply(
            ScalarOp::Div,
            &[Operand::Col(&a), Operand::Col(&b)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![0, 5]));
        let r = map_apply(
            ScalarOp::Rem,
            &[Operand::Col(&a), Operand::Col(&b)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![0, 0]));
    }

    #[test]
    fn comparisons() {
        let a = col(vec![1, 5, 3]);
        let r = map_apply(
            ScalarOp::Gt,
            &[Operand::Col(&a), Operand::Const(Scalar::I64(2))],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::from(vec![false, true, true]));
        // String comparison.
        let s = Array::from(vec!["apple".to_string(), "pear".to_string()]);
        let r = map_apply(
            ScalarOp::Lt,
            &[Operand::Col(&s), Operand::Const(Scalar::Str("m".into()))],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::from(vec![true, false]));
    }

    #[test]
    fn logic_and_not() {
        let a = Array::from(vec![true, true, false]);
        let b = Array::from(vec![true, false, false]);
        let r = map_apply(
            ScalarOp::And,
            &[Operand::Col(&a), Operand::Col(&b)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::from(vec![true, false, false]));
        let r = map_apply(ScalarOp::Not, &[Operand::Col(&a)], None, MapMode::Full).unwrap();
        assert_eq!(r, Array::from(vec![false, false, true]));
    }

    #[test]
    fn unary_math() {
        let a = Array::from(vec![4.0, 9.0]);
        let r = map_apply(ScalarOp::Sqrt, &[Operand::Col(&a)], None, MapMode::Full).unwrap();
        assert_eq!(r, Array::from(vec![2.0, 3.0]));
        let b = col(vec![-3, 3]);
        assert_eq!(
            map_apply(ScalarOp::Abs, &[Operand::Col(&b)], None, MapMode::Full).unwrap(),
            col(vec![3, 3])
        );
        assert_eq!(
            map_apply(ScalarOp::Neg, &[Operand::Col(&b)], None, MapMode::Full).unwrap(),
            col(vec![3, -3])
        );
        // sqrt of ints promotes.
        let c = col(vec![16]);
        assert_eq!(
            map_apply(ScalarOp::Sqrt, &[Operand::Col(&c)], None, MapMode::Full).unwrap(),
            Array::from(vec![4.0])
        );
    }

    #[test]
    fn selective_mode_computes_only_selected() {
        let a = col(vec![1, 2, 3, 4]);
        let sel = SelVec::new(vec![1, 3]);
        let r = map_apply(
            ScalarOp::Mul,
            &[Operand::Col(&a), Operand::Const(Scalar::I64(10))],
            Some(&sel),
            MapMode::Selective,
        )
        .unwrap();
        // Unselected lanes hold the default (0); selected are computed.
        assert_eq!(r, col(vec![0, 20, 0, 40]));
        // Full mode computes everything regardless of selection.
        let r = map_apply(
            ScalarOp::Mul,
            &[Operand::Col(&a), Operand::Const(Scalar::I64(10))],
            Some(&sel),
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, col(vec![10, 20, 30, 40]));
    }

    #[test]
    fn hash_and_strings() {
        let a = col(vec![1, 1, 2]);
        let r = map_apply(ScalarOp::Hash, &[Operand::Col(&a)], None, MapMode::Full).unwrap();
        let h = r.as_i64().unwrap();
        assert_eq!(h[0], h[1]);
        assert_ne!(h[0], h[2]);
        let s = Array::from(vec!["ab".to_string(), "".to_string()]);
        let r = map_apply(ScalarOp::StrLen, &[Operand::Col(&s)], None, MapMode::Full).unwrap();
        assert_eq!(r, col(vec![2, 0]));
        let r = map_apply(
            ScalarOp::Concat,
            &[Operand::Col(&s), Operand::Const(Scalar::Str("!".into()))],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::from(vec!["ab!".to_string(), "!".to_string()]));
        let r = map_apply(ScalarOp::Hash, &[Operand::Col(&s)], None, MapMode::Full).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn casts() {
        let a = col(vec![1, 300]);
        let r = map_apply(
            ScalarOp::Cast(ScalarType::I8),
            &[Operand::Col(&a)],
            None,
            MapMode::Full,
        )
        .unwrap();
        assert_eq!(r, Array::I8(vec![1, 44]));
        let r = map_apply(
            ScalarOp::Cast(ScalarType::F64),
            &[Operand::Const(Scalar::I64(7))],
            None,
            MapMode::Full,
        );
        // Constant-only operand set has no lane count.
        assert!(matches!(r, Err(KernelError::NoArrayOperand)));
    }

    #[test]
    fn errors() {
        let a = col(vec![1, 2]);
        let b = col(vec![1, 2, 3]);
        assert!(matches!(
            map_apply(
                ScalarOp::Add,
                &[Operand::Col(&a), Operand::Col(&b)],
                None,
                MapMode::Full
            ),
            Err(KernelError::LengthMismatch { .. })
        ));
        let s = Array::from(vec!["x".to_string(), "y".to_string()]);
        assert!(map_apply(
            ScalarOp::Add,
            &[Operand::Col(&a), Operand::Col(&s)],
            None,
            MapMode::Full
        )
        .is_err());
        // Wrong arity.
        assert!(map_apply(ScalarOp::Add, &[Operand::Col(&a)], None, MapMode::Full).is_err());
    }

    #[test]
    fn min_max() {
        let a = col(vec![1, 9]);
        let b = col(vec![5, 5]);
        assert_eq!(
            map_apply(
                ScalarOp::Min,
                &[Operand::Col(&a), Operand::Col(&b)],
                None,
                MapMode::Full
            )
            .unwrap(),
            col(vec![1, 5])
        );
        assert_eq!(
            map_apply(
                ScalarOp::Max,
                &[Operand::Col(&a), Operand::Col(&b)],
                None,
                MapMode::Full
            )
            .unwrap(),
            col(vec![5, 9])
        );
    }
}
