//! Compressed-execution kernels (§III-C / [Abadi et al. 2006]).
//!
//! These operate *directly on encoded blocks*, skipping decompression:
//! * RLE: aggregate per run (`value × run_length`), map over run values,
//!   filter by expanding matching runs to index ranges;
//! * Dictionary: evaluate predicates on the (small) dictionary, then select
//!   by code; sum via per-code counts;
//! * Frame-of-reference: min/max bounds prune filters without touching the
//!   payload; sums use `n·reference + Σ offsets`.
//!
//! Every function returns `Option`: `None` means "no compressed fast path
//! for this encoding/operation" and the caller (the VM) falls back to
//! decompress-and-interpret — exactly the adaptive fallback of §III-C.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_storage::array::Array;
use adaptvm_storage::compress::{decompress, Encoded};
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::sel::SelVec;

use crate::error::KernelError;

/// Sum the block's values without full decompression, when a fast path
/// exists.
pub fn sum_compressed(enc: &Encoded) -> Option<Scalar> {
    match enc {
        Encoded::Rle(b) => {
            let values = b.values.to_i64_vec()?;
            let sum: i64 = values
                .iter()
                .zip(&b.run_lengths)
                .map(|(&v, &n)| v.wrapping_mul(n as i64))
                .sum();
            Some(Scalar::I64(sum))
        }
        Encoded::Dict(b) => {
            let dict = b.dictionary.to_i64_vec()?;
            let mut counts = vec![0i64; dict.len()];
            for &c in &b.codes {
                counts[c as usize] += 1;
            }
            let sum: i64 = dict
                .iter()
                .zip(&counts)
                .map(|(&v, &n)| v.wrapping_mul(n))
                .sum();
            Some(Scalar::I64(sum))
        }
        Encoded::ForPack(b) => {
            // n·reference + Σ offsets: decode offsets only.
            let decoded = adaptvm_storage::compress::forpack::decode(b);
            let values = decoded.to_i64_vec()?;
            Some(Scalar::I64(values.iter().sum()))
        }
        _ => None,
    }
}

/// Evaluate `value <op> threshold` over the block and return the selection,
/// when a fast path exists.
pub fn filter_compressed(enc: &Encoded, op: ScalarOp, threshold: i64) -> Option<SelVec> {
    if !op.is_comparison() {
        return None;
    }
    let pred = |v: i64| -> bool {
        match op {
            ScalarOp::Eq => v == threshold,
            ScalarOp::Ne => v != threshold,
            ScalarOp::Lt => v < threshold,
            ScalarOp::Le => v <= threshold,
            ScalarOp::Gt => v > threshold,
            ScalarOp::Ge => v >= threshold,
            _ => unreachable!(),
        }
    };
    match enc {
        Encoded::Rle(b) => {
            // Evaluate once per run; emit whole index ranges.
            let values = b.values.to_i64_vec()?;
            let mut out = Vec::new();
            let mut pos: u32 = 0;
            for (&v, &n) in values.iter().zip(&b.run_lengths) {
                if pred(v) {
                    out.extend(pos..pos + n);
                }
                pos += n;
            }
            Some(SelVec::new(out))
        }
        Encoded::Dict(b) => {
            // Evaluate once per dictionary entry, select by code.
            let dict = b.dictionary.to_i64_vec()?;
            let matches: Vec<bool> = dict.iter().map(|&v| pred(v)).collect();
            let mut out = Vec::new();
            for (i, &c) in b.codes.iter().enumerate() {
                if matches[c as usize] {
                    out.push(i as u32);
                }
            }
            Some(SelVec::new(out))
        }
        Encoded::ForPack(b) => {
            // Bound pruning: all-match / none-match without decoding.
            let (lo, hi) = (b.reference, b.max_bound());
            let all = |sel: bool| {
                if sel {
                    Some(SelVec::identity(b.len()))
                } else {
                    Some(SelVec::empty())
                }
            };
            match op {
                ScalarOp::Gt if lo > threshold => all(true),
                ScalarOp::Gt if hi <= threshold => all(false),
                ScalarOp::Ge if lo >= threshold => all(true),
                ScalarOp::Ge if hi < threshold => all(false),
                ScalarOp::Lt if hi < threshold => all(true),
                ScalarOp::Lt if lo >= threshold => all(false),
                ScalarOp::Le if hi <= threshold => all(true),
                ScalarOp::Le if lo > threshold => all(false),
                ScalarOp::Eq if lo == hi && lo == threshold => all(true),
                ScalarOp::Eq if threshold < lo || threshold > hi => all(false),
                ScalarOp::Ne if threshold < lo || threshold > hi => all(true),
                _ => None, // bounds do not decide; fall back
            }
        }
        _ => None,
    }
}

/// Map a constant-operand arithmetic op over the block, *keeping it
/// compressed*, when a fast path exists (RLE and Dict transform their value
/// arrays only).
pub fn map_const_compressed(enc: &Encoded, op: ScalarOp, constant: i64) -> Option<Encoded> {
    let apply = |values: &Array| -> Option<Array> {
        let v = values.to_i64_vec()?;
        let mapped: Vec<i64> = match op {
            ScalarOp::Add => v.iter().map(|&x| x.wrapping_add(constant)).collect(),
            ScalarOp::Sub => v.iter().map(|&x| x.wrapping_sub(constant)).collect(),
            ScalarOp::Mul => v.iter().map(|&x| x.wrapping_mul(constant)).collect(),
            _ => return None,
        };
        Some(Array::I64(mapped))
    };
    match enc {
        Encoded::Rle(b) => {
            let values = apply(&b.values)?;
            let mut nb = b.clone();
            nb.values = values;
            Some(Encoded::Rle(nb))
        }
        Encoded::Dict(b) => {
            let dictionary = apply(&b.dictionary)?;
            let mut nb = b.clone();
            nb.dictionary = dictionary;
            Some(Encoded::Dict(nb))
        }
        _ => None,
    }
}

/// Reference implementation used to validate fast paths: decompress then
/// compute.
pub fn sum_via_decompress(enc: &Encoded) -> Result<Scalar, KernelError> {
    let data = decompress(enc)?;
    crate::fold::fold_apply(adaptvm_dsl::ast::FoldFn::Sum, &Scalar::I64(0), &data, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::compress::{compress, Scheme};

    fn data() -> Array {
        Array::from(vec![5i64, 5, 5, -2, -2, 9, 9, 9, 9, 0])
    }

    #[test]
    fn sums_match_reference() {
        let d = data();
        for scheme in [Scheme::Rle, Scheme::Dict, Scheme::ForPack] {
            let enc = compress(&d, scheme).unwrap();
            let fast = sum_compressed(&enc).expect("fast path exists");
            let slow = sum_via_decompress(&enc).unwrap();
            assert_eq!(fast, slow, "{scheme:?}");
        }
        // Plain has no fast path.
        let enc = compress(&d, Scheme::Plain).unwrap();
        assert!(sum_compressed(&enc).is_none());
    }

    #[test]
    fn rle_filter_expands_runs() {
        let enc = compress(&data(), Scheme::Rle).unwrap();
        let sel = filter_compressed(&enc, ScalarOp::Gt, 0).unwrap();
        assert_eq!(sel.indices(), &[0, 1, 2, 5, 6, 7, 8]);
        let sel = filter_compressed(&enc, ScalarOp::Eq, -2).unwrap();
        assert_eq!(sel.indices(), &[3, 4]);
    }

    #[test]
    fn dict_filter_evaluates_dictionary_once() {
        let enc = compress(&data(), Scheme::Dict).unwrap();
        let sel = filter_compressed(&enc, ScalarOp::Ge, 5).unwrap();
        assert_eq!(sel.indices(), &[0, 1, 2, 5, 6, 7, 8]);
    }

    #[test]
    fn forpack_bound_pruning() {
        let narrow = Array::from(vec![100i64, 105, 110]);
        let enc = compress(&narrow, Scheme::ForPack).unwrap();
        // Entirely above 50 → all match, no decode.
        let sel = filter_compressed(&enc, ScalarOp::Gt, 50).unwrap();
        assert_eq!(sel.len(), 3);
        // Entirely below 1000 → none match Gt.
        let sel = filter_compressed(&enc, ScalarOp::Gt, 1000).unwrap();
        assert!(sel.is_empty());
        // Bounds straddle → no fast answer.
        assert!(filter_compressed(&enc, ScalarOp::Gt, 105).is_none());
        // Ne outside range → all.
        let sel = filter_compressed(&enc, ScalarOp::Ne, 7).unwrap();
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn map_const_stays_compressed() {
        let d = data();
        for scheme in [Scheme::Rle, Scheme::Dict] {
            let enc = compress(&d, scheme).unwrap();
            let mapped = map_const_compressed(&enc, ScalarOp::Mul, 2).unwrap();
            assert_eq!(mapped.scheme(), scheme);
            let expected: Vec<i64> = d.to_i64_vec().unwrap().iter().map(|x| x * 2).collect();
            assert_eq!(decompress(&mapped).unwrap().to_i64_vec().unwrap(), expected);
        }
        // Unsupported op → None.
        let enc = compress(&d, Scheme::Rle).unwrap();
        assert!(map_const_compressed(&enc, ScalarOp::Div, 2).is_none());
        // ForPack has no remap fast path.
        let enc = compress(&d, Scheme::ForPack).unwrap();
        assert!(map_const_compressed(&enc, ScalarOp::Add, 1).is_none());
    }

    #[test]
    fn non_comparison_filter_rejected() {
        let enc = compress(&data(), Scheme::Rle).unwrap();
        assert!(filter_compressed(&enc, ScalarOp::Add, 0).is_none());
    }
}
