//! Offline shim for `criterion`: a small wall-clock benchmarking harness
//! exposing the subset of criterion's API the workspace's benches use —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: after one warm-up call, each benchmark runs batches
//! whose size is auto-tuned so a batch takes ≥ ~10 ms, for `sample_size`
//! batches (default 10, capped by a ~1 s per-benchmark budget). The mean,
//! min and max per-iteration times are printed, plus throughput when the
//! group declares one. Set `ADAPTVM_BENCH_QUICK=1` to run every benchmark
//! exactly once (CI smoke mode).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark
/// work. (Stable-Rust formulation via `std::hint::black_box`.)
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to derive rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing callback target.
pub struct Bencher {
    /// Iterations per measured batch (tuned by the harness).
    batch: u64,
    /// Collected batch durations.
    samples: Vec<Duration>,
    /// Samples requested.
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, called `batch` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch auto-tuning: grow the batch until it costs ≥10ms
        // (or the quick budget in CI smoke mode).
        let quick = std::env::var_os("ADAPTVM_BENCH_QUICK").is_some();
        if quick {
            let t0 = Instant::now();
            black_box(f());
            self.batch = 1;
            self.samples.push(t0.elapsed());
            return;
        }
        let target = Duration::from_millis(10);
        loop {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || self.batch >= 1 << 20 {
                break;
            }
            self.batch = (self.batch * 2).max(2);
        }
        let budget = Duration::from_secs(1);
        let t_all = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
            if t_all.elapsed() > budget {
                break;
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.batch as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!(
                "  {:>10.1} Melem/s",
                n as f64 / mean * 1_000.0 / 1_000_000.0
            )
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!(
                "  {:>10.1} MiB/s",
                n as f64 / mean * 1e9 / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} {:>12} [{} .. {}]{rate}",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max)
    );
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare group throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            batch: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            batch: 1,
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }
}

/// Declare a benchmark group function list (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        std::env::set_var("ADAPTVM_BENCH_QUICK", "1");
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("counter", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
        std::env::remove_var("ADAPTVM_BENCH_QUICK");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
