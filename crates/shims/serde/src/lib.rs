//! Offline shim for `serde`: the derive macros only, expanded to nothing.
//! See `crates/shims/README.md` for the rationale.

pub use serde_derive_shim::{Deserialize, Serialize};
