//! Offline shim for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. Lock poisoning is deliberately swallowed
//! (`parking_lot` has no poisoning), so a panicking holder does not wedge
//! every later user.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
