//! Offline shim for `rand` 0.8: exactly the surface this workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng` with
//! `gen`, `gen_bool` and `gen_range` over integer/float ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64: deterministic per
//! seed and statistically solid for the workloads here (data generation,
//! ε-greedy exploration). It is **not** the same stream as the real
//! `rand::StdRng` (ChaCha12), so swapping the real crate back in changes
//! concrete pseudo-random values but nothing else.

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG (rand's `SeedableRng`, reduced to the one
/// constructor used here).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard RNG: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A range that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Uniform u64 in [0, bound) via Lemire-style rejection (unbiased).
fn bounded_u64(rng: &mut StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the mapping unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range: raw output.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing RNG trait (rand's `Rng`, reduced).
pub trait Rng {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// A value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::draw(self) < p
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "{rate}");
    }

    #[test]
    fn inclusive_full_range_does_not_panic() {
        let mut r = StdRng::seed_from_u64(5);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
    }
}
