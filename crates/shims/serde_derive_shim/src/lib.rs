//! Offline shim: no-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses serde's derive attributes (no actual
//! serialization paths run in-tree), so the derives expand to nothing.
//! Swapping the real serde back in restores working serialization without
//! touching any annotated type.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
