//! Offline shim for `proptest`: a deterministic mini property-testing
//! harness covering the surface this workspace uses — the `proptest!`
//! macro, range / `any` / `prop::collection::vec` strategies,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic, no persisted failure regressions) and there is
//! **no shrinking** — a failing case panics with the generated inputs
//! visible via the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy (reduced: generation only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy for the full domain of a type (proptest's `any`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                // Mix raw values with boundary cases: real proptest biases
                // toward edges, and codec round-trips want MIN/MAX/0 seen.
                match rng.gen_range(0usize..8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

// Tuple strategies (real proptest implements these for tuples up to 10;
// the workspace uses 2- and 3-tuples, e.g. vectors of event records).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// `prop::…` module tree (mirrors the proptest prelude's `prop` alias).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Derive a per-test seed from the test name (deterministic across runs).
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run a property body over `config.cases` generated cases.
pub fn run_cases(name: &str, config: ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed_from_name(name));
    for _ in 0..config.cases {
        body(&mut rng);
    }
}

/// The `proptest!` block macro: wraps each `fn name(arg in strategy, …)`
/// into a `#[test]` running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), $cfg, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Property assertion (panics on failure; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds.
        #[test]
        fn range_in_bounds(x in -50i64..50, n in 1usize..4) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<i16>(), 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
