//! Offline shim for `crossbeam`: the `channel` module only, implemented
//! over `std::sync::mpsc`. Unlike raw mpsc, the [`channel::Receiver`] here
//! is `Clone + Send + Sync` (crossbeam semantics) by wrapping the mpsc
//! receiver in an `Arc<Mutex<..>>`.

/// Scoped threads (crossbeam 0.8 surface over `std::thread::scope`).
pub mod thread {
    /// A thread scope; closures may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. Unlike crossbeam, an unjoined panicking thread propagates
    /// its panic here (std semantics) instead of surfacing in the `Err`;
    /// callers that join every handle (as this workspace does) see
    /// identical behavior.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3, 4];
            let total: i32 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let r = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(r, 7);
        }
    }
}

/// Multi-producer multi-consumer channels (crossbeam-channel surface).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel (clonable and shareable,
    /// crossbeam-style).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Block until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv().map_err(|_| RecvError)
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drain every value currently available, without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn try_iter_drains() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn receiver_shared_across_threads() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.try_iter().count());
            let local = rx.try_iter().count();
            assert_eq!(local + h.join().unwrap(), 100);
        }
    }
}
