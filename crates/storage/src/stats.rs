//! Lightweight per-block statistics.
//!
//! Statistics drive two adaptive mechanisms from the paper: per-block
//! compression scheme selection (§I: "adapt compression methods to the data
//! in each block") and compact-data-type inference (§I / §III-C: "detection
//! of opportunities to execute expressions in smaller data types").

use crate::array::Array;
use crate::scalar::ScalarType;

/// Summary statistics for one column block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of values.
    pub count: usize,
    /// Minimum integer value (integer columns only).
    pub min_i64: Option<i64>,
    /// Maximum integer value (integer columns only).
    pub max_i64: Option<i64>,
    /// Number of runs of equal adjacent values.
    pub run_count: usize,
    /// Number of distinct values, exact up to [`DISTINCT_CAP`], capped after.
    pub distinct: usize,
    /// The column's physical type.
    pub scalar_type: ScalarType,
}

/// Cap on exact distinct counting; beyond this the counter saturates.
pub const DISTINCT_CAP: usize = 4096;

impl ColumnStats {
    /// Compute statistics for an array.
    pub fn compute(array: &Array) -> ColumnStats {
        let count = array.len();
        let scalar_type = array.scalar_type();
        let (min_i64, max_i64) = match array.to_i64_vec() {
            Some(v) if !v.is_empty() => (v.iter().copied().min(), v.iter().copied().max()),
            _ => (None, None),
        };
        let run_count = Self::runs(array);
        let distinct = Self::distinct_capped(array);
        ColumnStats {
            count,
            min_i64,
            max_i64,
            run_count,
            distinct,
            scalar_type,
        }
    }

    fn runs(array: &Array) -> usize {
        macro_rules! runs_of {
            ($v:expr) => {{
                if $v.is_empty() {
                    0
                } else {
                    1 + $v.windows(2).filter(|w| w[0] != w[1]).count()
                }
            }};
        }
        match array {
            Array::I8(v) => runs_of!(v),
            Array::I16(v) => runs_of!(v),
            Array::I32(v) => runs_of!(v),
            Array::I64(v) => runs_of!(v),
            Array::F64(v) => runs_of!(v),
            Array::Bool(v) => runs_of!(v),
            Array::Str(v) => runs_of!(v),
        }
    }

    fn distinct_capped(array: &Array) -> usize {
        use std::collections::HashSet;
        macro_rules! distinct_of {
            ($v:expr, $map:expr) => {{
                let mut set = HashSet::new();
                for x in $v {
                    set.insert($map(x));
                    if set.len() >= DISTINCT_CAP {
                        return DISTINCT_CAP;
                    }
                }
                set.len()
            }};
        }
        fn inner(array: &Array) -> usize {
            match array {
                Array::I8(v) => distinct_of!(v, |x: &i8| *x as i64),
                Array::I16(v) => distinct_of!(v, |x: &i16| *x as i64),
                Array::I32(v) => distinct_of!(v, |x: &i32| *x as i64),
                Array::I64(v) => distinct_of!(v, |x: &i64| *x),
                Array::F64(v) => distinct_of!(v, |x: &f64| x.to_bits()),
                Array::Bool(v) => distinct_of!(v, |x: &bool| *x),
                Array::Str(v) => distinct_of!(v, |x: &String| x.clone()),
            }
        }
        inner(array)
    }

    /// Average run length; large values favour run-length encoding.
    pub fn avg_run_len(&self) -> f64 {
        if self.run_count == 0 {
            0.0
        } else {
            self.count as f64 / self.run_count as f64
        }
    }

    /// Integer value range (`max - min`), when known.
    pub fn range(&self) -> Option<u64> {
        match (self.min_i64, self.max_i64) {
            (Some(min), Some(max)) => Some(max.wrapping_sub(min) as u64),
            _ => None,
        }
    }

    /// The narrowest integer type able to hold the observed values
    /// (compact-data-types inference).
    pub fn compact_type(&self) -> Option<ScalarType> {
        match (self.min_i64, self.max_i64) {
            (Some(min), Some(max)) => Some(ScalarType::smallest_int_for(min, max)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = ColumnStats::compute(&Array::from(vec![3i64, 3, 3, 7, 7, 1]));
        assert_eq!(s.count, 6);
        assert_eq!(s.min_i64, Some(1));
        assert_eq!(s.max_i64, Some(7));
        assert_eq!(s.run_count, 3);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.avg_run_len(), 2.0);
        assert_eq!(s.range(), Some(6));
    }

    #[test]
    fn empty_array() {
        let s = ColumnStats::compute(&Array::empty(ScalarType::I64));
        assert_eq!(s.count, 0);
        assert_eq!(s.min_i64, None);
        assert_eq!(s.run_count, 0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.avg_run_len(), 0.0);
        assert_eq!(s.compact_type(), None);
    }

    #[test]
    fn float_stats_have_no_int_minmax() {
        let s = ColumnStats::compute(&Array::from(vec![1.5, 1.5, 2.5]));
        assert_eq!(s.min_i64, None);
        assert_eq!(s.run_count, 2);
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn compact_type_inference() {
        let s = ColumnStats::compute(&Array::from(vec![0i64, 90, 100]));
        assert_eq!(s.compact_type(), Some(ScalarType::I8));
        let s = ColumnStats::compute(&Array::from(vec![0i64, 40_000]));
        assert_eq!(s.compact_type(), Some(ScalarType::I32));
    }

    #[test]
    fn distinct_saturates() {
        let big: Vec<i64> = (0..(DISTINCT_CAP as i64 + 100)).collect();
        let s = ColumnStats::compute(&Array::from(big));
        assert_eq!(s.distinct, DISTINCT_CAP);
    }
}
