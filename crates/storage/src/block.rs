//! Block-wise storage with per-block compression.
//!
//! This is the substrate for the paper's key adaptive-execution scenario
//! (§I, §III-C): a column is stored as a sequence of blocks, and *each block
//! may use a different compression scheme*, chosen from its own data. A scan
//! therefore observes scheme changes at block boundaries, and the VM has to
//! react — keep running a specialized compressed-execution trace, fall back
//! to decompress-and-interpret, or JIT a new trace for the new scheme.

use crate::array::Array;
use crate::compress::{self, Encoded, Scheme};
use crate::error::StorageError;
use crate::scalar::ScalarType;
use crate::schema::Schema;
use crate::stats::ColumnStats;

/// One compressed block of one column, with its statistics.
#[derive(Debug, Clone)]
pub struct Block {
    /// The encoded payload.
    pub encoded: Encoded,
    /// Statistics of the decoded data (computed at encode time).
    pub stats: ColumnStats,
}

impl Block {
    /// Compress `data` with an explicit scheme.
    pub fn compress(data: &Array, scheme: Scheme) -> Result<Block, StorageError> {
        Ok(Block {
            stats: ColumnStats::compute(data),
            encoded: compress::compress(data, scheme)?,
        })
    }

    /// Compress `data`, choosing the scheme from its statistics.
    pub fn compress_auto(data: &Array) -> Result<Block, StorageError> {
        let stats = ColumnStats::compute(data);
        let scheme = compress::choose_scheme(&stats);
        Ok(Block {
            encoded: compress::compress(data, scheme)?,
            stats,
        })
    }

    /// The scheme used by this block.
    pub fn scheme(&self) -> Scheme {
        self.encoded.scheme()
    }

    /// Decoded element count.
    pub fn len(&self) -> usize {
        self.encoded.len()
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.encoded.is_empty()
    }

    /// Decompress to a dense array.
    pub fn decompress(&self) -> Result<Array, StorageError> {
        compress::decompress(&self.encoded)
    }
}

/// A column stored as a sequence of (potentially differently) compressed
/// blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockColumn {
    blocks: Vec<Block>,
    rows: usize,
}

impl BlockColumn {
    /// An empty column.
    pub fn new() -> BlockColumn {
        BlockColumn::default()
    }

    /// Split `data` into blocks of `block_rows` rows, auto-choosing a scheme
    /// per block.
    pub fn from_array_auto(data: &Array, block_rows: usize) -> Result<BlockColumn, StorageError> {
        let mut col = BlockColumn::new();
        let mut offset = 0;
        while offset < data.len() {
            let chunk = data.slice(offset, block_rows);
            offset += chunk.len();
            col.push_block(Block::compress_auto(&chunk)?);
        }
        Ok(col)
    }

    /// Append a block.
    pub fn push_block(&mut self, block: Block) {
        self.rows += block.len();
        self.blocks.push(block);
    }

    /// All blocks, in row order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total compressed footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.encoded.compressed_size())
            .sum()
    }

    /// The distinct schemes appearing in this column, in block order with
    /// consecutive duplicates removed. A length > 1 means a scan observes at
    /// least one scheme change (the adaptive scenario).
    pub fn scheme_changes(&self) -> Vec<Scheme> {
        let mut out: Vec<Scheme> = Vec::new();
        for b in &self.blocks {
            if out.last() != Some(&b.scheme()) {
                out.push(b.scheme());
            }
        }
        out
    }

    /// Decompress the whole column to a dense array.
    pub fn decompress_all(&self, ty: ScalarType) -> Result<Array, StorageError> {
        let mut out = Array::with_capacity(ty, self.rows);
        for b in &self.blocks {
            out.extend(&b.decompress()?)?;
        }
        Ok(out)
    }
}

/// A table stored as blocked, compressed columns.
#[derive(Debug, Clone)]
pub struct BlockedTable {
    schema: Schema,
    columns: Vec<BlockColumn>,
    rows: usize,
}

impl BlockedTable {
    /// Build from parallel block columns.
    pub fn new(schema: Schema, columns: Vec<BlockColumn>) -> Result<BlockedTable, StorageError> {
        if schema.len() != columns.len() {
            return Err(StorageError::LengthMismatch {
                left: schema.len(),
                right: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, BlockColumn::rows);
        for c in &columns {
            if c.rows() != rows {
                return Err(StorageError::LengthMismatch {
                    left: rows,
                    right: c.rows(),
                });
            }
        }
        Ok(BlockedTable {
            schema,
            columns,
            rows,
        })
    }

    /// Compress a dense [`crate::schema::Table`] into blocks.
    pub fn from_table(
        table: &crate::schema::Table,
        block_rows: usize,
    ) -> Result<BlockedTable, StorageError> {
        let columns = table
            .columns()
            .iter()
            .map(|c| BlockColumn::from_array_auto(c, block_rows))
            .collect::<Result<Vec<_>, _>>()?;
        BlockedTable::new(table.schema().clone(), columns)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> Result<&BlockColumn, StorageError> {
        self.columns.get(i).ok_or(StorageError::OutOfBounds {
            index: i,
            len: self.columns.len(),
        })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&BlockColumn, StorageError> {
        self.column(self.schema.index_of(name)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Table};

    #[test]
    fn block_auto_compression() {
        let runs = Array::from(vec![3i64; 500]);
        let b = Block::compress_auto(&runs).unwrap();
        assert_eq!(b.scheme(), Scheme::Rle);
        assert_eq!(b.decompress().unwrap(), runs);
    }

    #[test]
    fn column_splits_into_blocks() {
        let data = Array::from((0..1000i64).collect::<Vec<_>>());
        let col = BlockColumn::from_array_auto(&data, 256).unwrap();
        assert_eq!(col.blocks().len(), 4);
        assert_eq!(col.rows(), 1000);
        assert_eq!(col.decompress_all(ScalarType::I64).unwrap(), data);
    }

    #[test]
    fn scheme_changes_across_blocks() {
        // Block 1: constant (→ RLE); block 2: dense narrow range (→ ForPack
        // or Dict); guaranteed different from RLE.
        let mut v = vec![7i64; 256];
        v.extend((0..256).map(|i| (i * 37) % 251));
        let col = BlockColumn::from_array_auto(&Array::from(v), 256).unwrap();
        let changes = col.scheme_changes();
        assert!(
            changes.len() >= 2,
            "expected a scheme change, got {changes:?}"
        );
        assert_eq!(changes[0], Scheme::Rle);
    }

    #[test]
    fn blocked_table_from_dense() {
        let t = Table::new(
            Schema::new(vec![
                Field::new("a", ScalarType::I64),
                Field::new("b", ScalarType::F64),
            ]),
            vec![
                Array::from(vec![1i64; 100]),
                Array::from((0..100).map(|i| i as f64).collect::<Vec<_>>()),
            ],
        )
        .unwrap();
        let bt = BlockedTable::from_table(&t, 32).unwrap();
        assert_eq!(bt.rows(), 100);
        assert_eq!(bt.column_by_name("a").unwrap().blocks().len(), 4);
        assert!(bt.column_by_name("nope").is_err());
        // Row counts must agree across columns.
        let bad = BlockedTable::new(
            bt.schema().clone(),
            vec![bt.column(0).unwrap().clone(), BlockColumn::new()],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn compression_ratio_reported() {
        let data = Array::from(vec![9i64; 4096]);
        let col = BlockColumn::from_array_auto(&data, 1024).unwrap();
        assert!(col.compressed_size() < data.byte_size() / 10);
    }
}
