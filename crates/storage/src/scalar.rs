//! Scalar values and the scalar type lattice.
//!
//! The type set deliberately includes the narrow integer widths `i8`/`i16`:
//! the paper (§I, citing Gubner & Boncz, ADMS 2017) motivates *compact data
//! types* — running expressions in the smallest width that provably fits —
//! as one of the optimizations an adaptive VM can apply when static engines
//! cannot (code-explosion argument).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The scalar types understood by the DSL and the kernel library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScalarType {
    /// 1-byte signed integer (compact-type target).
    I8,
    /// 2-byte signed integer (compact-type target).
    I16,
    /// 4-byte signed integer.
    I32,
    /// 8-byte signed integer.
    I64,
    /// 8-byte IEEE-754 float.
    F64,
    /// Boolean.
    Bool,
    /// Variable-length UTF-8 string.
    Str,
}

impl ScalarType {
    /// Width of one value in bytes (strings report pointer width, as the
    /// vectorized engine passes them by reference).
    pub fn width(self) -> usize {
        match self {
            ScalarType::I8 | ScalarType::Bool => 1,
            ScalarType::I16 => 2,
            ScalarType::I32 => 4,
            ScalarType::I64 | ScalarType::F64 | ScalarType::Str => 8,
        }
    }

    /// True for the signed integer family.
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// True for any numeric type (integers and floats).
    pub fn is_numeric(self) -> bool {
        self.is_integer() || self == ScalarType::F64
    }

    /// The smallest signed-integer type able to hold every value in
    /// `[min, max]`, used by the compact-data-types optimization.
    pub fn smallest_int_for(min: i64, max: i64) -> ScalarType {
        if min >= i8::MIN as i64 && max <= i8::MAX as i64 {
            ScalarType::I8
        } else if min >= i16::MIN as i64 && max <= i16::MAX as i64 {
            ScalarType::I16
        } else if min >= i32::MIN as i64 && max <= i32::MAX as i64 {
            ScalarType::I32
        } else {
            ScalarType::I64
        }
    }

    /// Numeric promotion: the common type two operands are widened to.
    ///
    /// Returns `None` when the pair has no common numeric type.
    pub fn promote(self, other: ScalarType) -> Option<ScalarType> {
        use ScalarType::*;
        if self == other {
            return Some(self);
        }
        match (self, other) {
            (F64, t) | (t, F64) if t.is_numeric() => Some(F64),
            (a, b) if a.is_integer() && b.is_integer() => Some(a.max(b)),
            _ => None,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F64 => "f64",
            ScalarType::Bool => "bool",
            ScalarType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// The DSL treats scalars as arrays of length one (§II); this type is the
/// boxed representation used for constants, fold results and loop counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// 1-byte signed integer.
    I8(i8),
    /// 2-byte signed integer.
    I16(i16),
    /// 4-byte signed integer.
    I32(i32),
    /// 8-byte signed integer.
    I64(i64),
    /// 8-byte float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl Scalar {
    /// The type of this scalar.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::I8(_) => ScalarType::I8,
            Scalar::I16(_) => ScalarType::I16,
            Scalar::I32(_) => ScalarType::I32,
            Scalar::I64(_) => ScalarType::I64,
            Scalar::F64(_) => ScalarType::F64,
            Scalar::Bool(_) => ScalarType::Bool,
            Scalar::Str(_) => ScalarType::Str,
        }
    }

    /// Widen to `i64`, if this is any integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::I8(v) => Some(*v as i64),
            Scalar::I16(v) => Some(*v as i64),
            Scalar::I32(v) => Some(*v as i64),
            Scalar::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Widen to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::F64(v) => Some(*v),
            other => other.as_i64().map(|v| v as f64),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Construct the integer `v` at the requested width, truncating.
    pub fn int_of_type(v: i64, ty: ScalarType) -> Scalar {
        match ty {
            ScalarType::I8 => Scalar::I8(v as i8),
            ScalarType::I16 => Scalar::I16(v as i16),
            ScalarType::I32 => Scalar::I32(v as i32),
            ScalarType::I64 => Scalar::I64(v),
            ScalarType::F64 => Scalar::F64(v as f64),
            ScalarType::Bool => Scalar::Bool(v != 0),
            ScalarType::Str => Scalar::Str(v.to_string()),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I8(v) => write!(f, "{v}"),
            Scalar::I16(v) => write!(f, "{v}"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::Str(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ScalarType::I8.width(), 1);
        assert_eq!(ScalarType::I16.width(), 2);
        assert_eq!(ScalarType::I32.width(), 4);
        assert_eq!(ScalarType::I64.width(), 8);
        assert_eq!(ScalarType::F64.width(), 8);
        assert_eq!(ScalarType::Bool.width(), 1);
    }

    #[test]
    fn smallest_int_picks_narrowest() {
        assert_eq!(ScalarType::smallest_int_for(0, 100), ScalarType::I8);
        assert_eq!(ScalarType::smallest_int_for(-200, 100), ScalarType::I16);
        assert_eq!(ScalarType::smallest_int_for(0, 70_000), ScalarType::I32);
        assert_eq!(ScalarType::smallest_int_for(0, i64::MAX), ScalarType::I64);
        // Boundaries are inclusive.
        assert_eq!(ScalarType::smallest_int_for(-128, 127), ScalarType::I8);
        assert_eq!(ScalarType::smallest_int_for(-129, 0), ScalarType::I16);
    }

    #[test]
    fn promotion_lattice() {
        use ScalarType::*;
        assert_eq!(I8.promote(I64), Some(I64));
        assert_eq!(I16.promote(I32), Some(I32));
        assert_eq!(I64.promote(F64), Some(F64));
        assert_eq!(F64.promote(F64), Some(F64));
        assert_eq!(Bool.promote(I64), None);
        assert_eq!(Str.promote(I64), None);
        assert_eq!(Bool.promote(Bool), Some(Bool));
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::I8(5).as_i64(), Some(5));
        assert_eq!(Scalar::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Scalar::F64(2.5).as_i64(), None);
        assert_eq!(Scalar::Bool(true).as_bool(), Some(true));
        assert_eq!(Scalar::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Scalar::int_of_type(300, ScalarType::I8), Scalar::I8(44));
    }

    #[test]
    fn scalar_type_of() {
        assert_eq!(Scalar::I32(1).scalar_type(), ScalarType::I32);
        assert_eq!(Scalar::Str("a".into()).scalar_type(), ScalarType::Str);
    }
}
