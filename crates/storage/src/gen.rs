//! Deterministic data generators for tests, examples and experiments.
//!
//! All generators take an explicit seed and use a local PRNG, so every
//! experiment in EXPERIMENTS.md regenerates identical data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::array::Array;
use crate::scalar::ScalarType;
use crate::schema::{Field, Schema, Table};

/// Uniform `i64` values in `[lo, hi]`.
pub fn uniform_i64(n: usize, lo: i64, hi: i64, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    Array::from((0..n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>())
}

/// Uniform `f64` values in `[lo, hi)`.
pub fn uniform_f64(n: usize, lo: f64, hi: f64, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    Array::from((0..n).map(|_| rng.gen_range(lo..hi)).collect::<Vec<f64>>())
}

/// Booleans that are `true` with probability `p` — the selectivity control
/// knob for the filter-strategy experiments.
pub fn bernoulli(n: usize, p: f64, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    Array::from(
        (0..n)
            .map(|_| rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect::<Vec<bool>>(),
    )
}

/// `i64` values where a fraction `p` is negative and the rest positive —
/// used to drive `filter (>0)` at a chosen selectivity.
pub fn signed_with_selectivity(n: usize, p_positive: f64, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    Array::from(
        (0..n)
            .map(|_| {
                if rng.gen_bool(p_positive.clamp(0.0, 1.0)) {
                    rng.gen_range(1..=1000)
                } else {
                    rng.gen_range(-1000..=0)
                }
            })
            .collect::<Vec<i64>>(),
    )
}

/// Sorted `i64` sequence with random non-negative gaps (delta-friendly).
pub fn sorted_i64(n: usize, start: i64, max_gap: i64, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Vec::with_capacity(n);
    let mut current = start;
    for _ in 0..n {
        v.push(current);
        current += rng.gen_range(0..=max_gap);
    }
    Array::from(v)
}

/// Low-cardinality values drawn from `k` distinct choices (dict-friendly).
pub fn categorical_i64(n: usize, k: usize, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    let choices: Vec<i64> = (0..k as i64).map(|i| i * 1_000_003 + 17).collect();
    Array::from(
        (0..n)
            .map(|_| choices[rng.gen_range(0..k)])
            .collect::<Vec<i64>>(),
    )
}

/// Runs of equal values with geometric run lengths (RLE-friendly).
pub fn runs_i64(n: usize, avg_run: usize, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        let value: i64 = rng.gen_range(0..100);
        let run = rng.gen_range(1..=avg_run.max(1) * 2);
        for _ in 0..run.min(n - v.len()) {
            v.push(value);
        }
    }
    Array::from(v)
}

/// Zipf-ish skewed keys over `[0, k)` with exponent ~1 — join/aggregate
/// workloads use this to create hot groups.
pub fn zipf_i64(n: usize, k: usize, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    // Inverse-CDF sampling over 1/rank weights.
    let weights: Vec<f64> = (1..=k).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    Array::from(
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                cdf.partition_point(|&c| c < u) as i64
            })
            .collect::<Vec<i64>>(),
    )
}

/// Short strings of the form `"<prefix><id>"`, `k` distinct values.
pub fn strings(n: usize, k: usize, prefix: &str, seed: u64) -> Array {
    let mut rng = StdRng::seed_from_u64(seed);
    Array::from(
        (0..n)
            .map(|_| format!("{prefix}{}", rng.gen_range(0..k)))
            .collect::<Vec<String>>(),
    )
}

/// A generic measurement table: `id` (sorted), `group` (categorical),
/// `value` (uniform f64), `flag` (bernoulli). Handy for examples.
pub fn measurements(n: usize, groups: usize, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("id", ScalarType::I64),
            Field::new("group", ScalarType::I64),
            Field::new("value", ScalarType::F64),
            Field::new("flag", ScalarType::Bool),
        ]),
        vec![
            sorted_i64(n, 0, 3, seed),
            categorical_i64(n, groups, seed.wrapping_add(1)),
            uniform_f64(n, 0.0, 100.0, seed.wrapping_add(2)),
            bernoulli(n, 0.5, seed.wrapping_add(3)),
        ],
    )
    .expect("generator produces consistent columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ColumnStats;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(uniform_i64(100, 0, 50, 7), uniform_i64(100, 0, 50, 7));
        assert_ne!(uniform_i64(100, 0, 50, 7), uniform_i64(100, 0, 50, 8));
    }

    #[test]
    fn uniform_respects_bounds() {
        let a = uniform_i64(1000, -5, 5, 1);
        let v = a.to_i64_vec().unwrap();
        assert!(v.iter().all(|&x| (-5..=5).contains(&x)));
        let f = uniform_f64(1000, 1.0, 2.0, 1);
        assert!(f.as_f64().unwrap().iter().all(|&x| (1.0..2.0).contains(&x)));
    }

    #[test]
    fn bernoulli_hits_target_rate() {
        let a = bernoulli(20_000, 0.25, 3);
        let ones = a.as_bool().unwrap().iter().filter(|&&b| b).count();
        let rate = ones as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn selectivity_generator_hits_target() {
        let a = signed_with_selectivity(20_000, 0.1, 5);
        let pos = a.to_i64_vec().unwrap().iter().filter(|&&x| x > 0).count();
        let rate = pos as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn sorted_is_sorted() {
        let a = sorted_i64(1000, 5, 10, 2).to_i64_vec().unwrap();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a[0], 5);
    }

    #[test]
    fn categorical_cardinality() {
        let a = categorical_i64(5000, 7, 4);
        let s = ColumnStats::compute(&a);
        assert_eq!(s.distinct, 7);
    }

    #[test]
    fn runs_have_long_runs() {
        let a = runs_i64(5000, 16, 6);
        assert_eq!(a.len(), 5000);
        let s = ColumnStats::compute(&a);
        assert!(s.avg_run_len() > 4.0, "avg run {}", s.avg_run_len());
    }

    #[test]
    fn zipf_is_skewed() {
        let a = zipf_i64(10_000, 100, 9);
        let v = a.to_i64_vec().unwrap();
        assert!(v.iter().all(|&x| (0..100).contains(&x)));
        let zero_share = v.iter().filter(|&&x| x == 0).count() as f64 / v.len() as f64;
        // Rank 1 of a 100-element 1/r distribution has weight ≈ 0.19.
        assert!(zero_share > 0.1, "zero share {zero_share}");
    }

    #[test]
    fn measurements_table_shape() {
        let t = measurements(500, 4, 11);
        assert_eq!(t.rows(), 500);
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.schema().field("value").unwrap().ty, ScalarType::F64);
    }

    #[test]
    fn strings_have_prefix() {
        let a = strings(100, 5, "cat-", 3);
        assert!(a.as_str().unwrap().iter().all(|s| s.starts_with("cat-")));
    }
}
