//! Typed, densely stored arrays — the operands of the DSL's data-parallel
//! skeletons.
//!
//! An [`Array`] owns its values; it is the unit the vectorized interpreter
//! and the JIT-compiled traces pass between operations. Arrays are
//! deliberately simple (an enum over `Vec<T>`) so kernels can match once on
//! the type tag and then run a tight monomorphic loop over the payload.

use crate::error::StorageError;
use crate::scalar::{Scalar, ScalarType};

/// A typed array of scalar values.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// `i8` payload.
    I8(Vec<i8>),
    /// `i16` payload.
    I16(Vec<i16>),
    /// `i32` payload.
    I32(Vec<i32>),
    /// `i64` payload.
    I64(Vec<i64>),
    /// `f64` payload.
    F64(Vec<f64>),
    /// `bool` payload.
    Bool(Vec<bool>),
    /// String payload.
    Str(Vec<String>),
}

macro_rules! for_each_variant {
    ($self:expr, $v:ident => $body:expr) => {
        match $self {
            Array::I8($v) => $body,
            Array::I16($v) => $body,
            Array::I32($v) => $body,
            Array::I64($v) => $body,
            Array::F64($v) => $body,
            Array::Bool($v) => $body,
            Array::Str($v) => $body,
        }
    };
}

impl Array {
    /// Number of elements.
    pub fn len(&self) -> usize {
        for_each_variant!(self, v => v.len())
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar type of the elements.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Array::I8(_) => ScalarType::I8,
            Array::I16(_) => ScalarType::I16,
            Array::I32(_) => ScalarType::I32,
            Array::I64(_) => ScalarType::I64,
            Array::F64(_) => ScalarType::F64,
            Array::Bool(_) => ScalarType::Bool,
            Array::Str(_) => ScalarType::Str,
        }
    }

    /// An empty array of the given type.
    pub fn empty(ty: ScalarType) -> Array {
        Array::with_capacity(ty, 0)
    }

    /// An empty array of the given type with reserved capacity.
    pub fn with_capacity(ty: ScalarType, cap: usize) -> Array {
        match ty {
            ScalarType::I8 => Array::I8(Vec::with_capacity(cap)),
            ScalarType::I16 => Array::I16(Vec::with_capacity(cap)),
            ScalarType::I32 => Array::I32(Vec::with_capacity(cap)),
            ScalarType::I64 => Array::I64(Vec::with_capacity(cap)),
            ScalarType::F64 => Array::F64(Vec::with_capacity(cap)),
            ScalarType::Bool => Array::Bool(Vec::with_capacity(cap)),
            ScalarType::Str => Array::Str(Vec::with_capacity(cap)),
        }
    }

    /// An array of `len` copies of `value`.
    pub fn splat(value: &Scalar, len: usize) -> Array {
        match value {
            Scalar::I8(v) => Array::I8(vec![*v; len]),
            Scalar::I16(v) => Array::I16(vec![*v; len]),
            Scalar::I32(v) => Array::I32(vec![*v; len]),
            Scalar::I64(v) => Array::I64(vec![*v; len]),
            Scalar::F64(v) => Array::F64(vec![*v; len]),
            Scalar::Bool(v) => Array::Bool(vec![*v; len]),
            Scalar::Str(v) => Array::Str(vec![v.clone(); len]),
        }
    }

    /// Element at `idx` as a boxed [`Scalar`].
    pub fn get(&self, idx: usize) -> Result<Scalar, StorageError> {
        if idx >= self.len() {
            return Err(StorageError::OutOfBounds {
                index: idx,
                len: self.len(),
            });
        }
        Ok(match self {
            Array::I8(v) => Scalar::I8(v[idx]),
            Array::I16(v) => Scalar::I16(v[idx]),
            Array::I32(v) => Scalar::I32(v[idx]),
            Array::I64(v) => Scalar::I64(v[idx]),
            Array::F64(v) => Scalar::F64(v[idx]),
            Array::Bool(v) => Scalar::Bool(v[idx]),
            Array::Str(v) => Scalar::Str(v[idx].clone()),
        })
    }

    /// Append a scalar; errors when the types differ.
    pub fn push(&mut self, value: Scalar) -> Result<(), StorageError> {
        match (self, value) {
            (Array::I8(v), Scalar::I8(x)) => v.push(x),
            (Array::I16(v), Scalar::I16(x)) => v.push(x),
            (Array::I32(v), Scalar::I32(x)) => v.push(x),
            (Array::I64(v), Scalar::I64(x)) => v.push(x),
            (Array::F64(v), Scalar::F64(x)) => v.push(x),
            (Array::Bool(v), Scalar::Bool(x)) => v.push(x),
            (Array::Str(v), Scalar::Str(x)) => v.push(x),
            (arr, val) => {
                return Err(StorageError::TypeMismatch {
                    expected: arr.scalar_type(),
                    found: val.scalar_type(),
                })
            }
        }
        Ok(())
    }

    /// A contiguous sub-range `[offset, offset+len)` copied into a new array.
    ///
    /// `len` is clamped to the available tail, mirroring the DSL `read`
    /// skeleton which returns a short final chunk.
    pub fn slice(&self, offset: usize, len: usize) -> Array {
        let end = offset.saturating_add(len).min(self.len());
        let offset = offset.min(self.len());
        match self {
            Array::I8(v) => Array::I8(v[offset..end].to_vec()),
            Array::I16(v) => Array::I16(v[offset..end].to_vec()),
            Array::I32(v) => Array::I32(v[offset..end].to_vec()),
            Array::I64(v) => Array::I64(v[offset..end].to_vec()),
            Array::F64(v) => Array::F64(v[offset..end].to_vec()),
            Array::Bool(v) => Array::Bool(v[offset..end].to_vec()),
            Array::Str(v) => Array::Str(v[offset..end].to_vec()),
        }
    }

    /// Overwrite `self[offset..offset+src.len())` with `src`, growing the
    /// array when needed (the DSL `write` skeleton appends consecutively).
    pub fn write_at(&mut self, offset: usize, src: &Array) -> Result<(), StorageError> {
        if self.scalar_type() != src.scalar_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.scalar_type(),
                found: src.scalar_type(),
            });
        }
        macro_rules! write_impl {
            ($dst:expr, $src:expr) => {{
                let needed = offset + $src.len();
                if $dst.len() < needed {
                    $dst.resize(needed, Default::default());
                }
                $dst[offset..needed].clone_from_slice($src);
            }};
        }
        match (self, src) {
            (Array::I8(d), Array::I8(s)) => write_impl!(d, s),
            (Array::I16(d), Array::I16(s)) => write_impl!(d, s),
            (Array::I32(d), Array::I32(s)) => write_impl!(d, s),
            (Array::I64(d), Array::I64(s)) => write_impl!(d, s),
            (Array::F64(d), Array::F64(s)) => write_impl!(d, s),
            (Array::Bool(d), Array::Bool(s)) => write_impl!(d, s),
            (Array::Str(d), Array::Str(s)) => write_impl!(d, s),
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Gather `self[indices[i]]` into a new array (DSL `gather` skeleton).
    pub fn take(&self, indices: &[u32]) -> Result<Array, StorageError> {
        let n = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| (i as usize) >= n) {
            return Err(StorageError::OutOfBounds {
                index: bad as usize,
                len: n,
            });
        }
        Ok(match self {
            Array::I8(v) => Array::I8(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::I16(v) => Array::I16(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::I32(v) => Array::I32(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::I64(v) => Array::I64(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::F64(v) => Array::F64(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::Bool(v) => Array::Bool(indices.iter().map(|&i| v[i as usize]).collect()),
            Array::Str(v) => Array::Str(indices.iter().map(|&i| v[i as usize].clone()).collect()),
        })
    }

    /// Append all elements of `other` (same type required).
    pub fn extend(&mut self, other: &Array) -> Result<(), StorageError> {
        let offset = self.len();
        self.write_at(offset, other)
    }

    /// Cast to another scalar type.
    ///
    /// Numeric casts truncate like Rust `as`; integer→bool is `!= 0`;
    /// anything→str uses `Display`. Str→numeric parses and errors on
    /// malformed input.
    pub fn cast(&self, target: ScalarType) -> Result<Array, StorageError> {
        if self.scalar_type() == target {
            return Ok(self.clone());
        }
        macro_rules! num_cast {
            ($v:expr) => {{
                match target {
                    ScalarType::I8 => Array::I8($v.iter().map(|&x| x as i8).collect()),
                    ScalarType::I16 => Array::I16($v.iter().map(|&x| x as i16).collect()),
                    ScalarType::I32 => Array::I32($v.iter().map(|&x| x as i32).collect()),
                    ScalarType::I64 => Array::I64($v.iter().map(|&x| x as i64).collect()),
                    ScalarType::F64 => Array::F64($v.iter().map(|&x| x as f64).collect()),
                    ScalarType::Bool => Array::Bool($v.iter().map(|&x| x as i64 != 0).collect()),
                    ScalarType::Str => Array::Str($v.iter().map(|x| x.to_string()).collect()),
                }
            }};
        }
        Ok(match self {
            Array::I8(v) => num_cast!(v),
            Array::I16(v) => num_cast!(v),
            Array::I32(v) => num_cast!(v),
            Array::I64(v) => num_cast!(v),
            Array::F64(v) => num_cast!(v),
            Array::Bool(v) => match target {
                ScalarType::Str => Array::Str(v.iter().map(|x| x.to_string()).collect()),
                _ => {
                    let ints: Vec<i64> = v.iter().map(|&b| b as i64).collect();
                    return Array::I64(ints).cast(target);
                }
            },
            Array::Str(v) => match target {
                ScalarType::I64 => Array::I64(
                    v.iter()
                        .map(|s| {
                            s.parse::<i64>().map_err(|e| {
                                StorageError::CodecUnsupported(format!("parse {s:?}: {e}"))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                ),
                ScalarType::F64 => Array::F64(
                    v.iter()
                        .map(|s| {
                            s.parse::<f64>().map_err(|e| {
                                StorageError::CodecUnsupported(format!("parse {s:?}: {e}"))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                ),
                other => {
                    return Err(StorageError::TypeMismatch {
                        expected: ScalarType::Str,
                        found: other,
                    })
                }
            },
        })
    }

    /// Borrow the payload as `&[i64]`, if this is an `I64` array.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Array::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the payload as `&[i32]`, if this is an `I32` array.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            Array::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the payload as `&[f64]`, if this is an `F64` array.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Array::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the payload as `&[bool]`, if this is a `Bool` array.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Array::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the payload as `&[String]`, if this is a `Str` array.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Array::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Widen any integer array to an owned `Vec<i64>`.
    ///
    /// Used by kernels that accept every integer width, and by the
    /// compact-types machinery when it needs a canonical form.
    pub fn to_i64_vec(&self) -> Option<Vec<i64>> {
        match self {
            Array::I8(v) => Some(v.iter().map(|&x| x as i64).collect()),
            Array::I16(v) => Some(v.iter().map(|&x| x as i64).collect()),
            Array::I32(v) => Some(v.iter().map(|&x| x as i64).collect()),
            Array::I64(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Widen any numeric array to an owned `Vec<f64>`.
    pub fn to_f64_vec(&self) -> Option<Vec<f64>> {
        match self {
            Array::F64(v) => Some(v.clone()),
            other => other
                .to_i64_vec()
                .map(|v| v.iter().map(|&x| x as f64).collect()),
        }
    }

    /// Heap footprint of the payload in bytes (used by the hetsim transfer
    /// cost model).
    pub fn byte_size(&self) -> usize {
        match self {
            Array::I8(v) => v.len(),
            Array::I16(v) => v.len() * 2,
            Array::I32(v) => v.len() * 4,
            Array::I64(v) => v.len() * 8,
            Array::F64(v) => v.len() * 8,
            Array::Bool(v) => v.len(),
            Array::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

impl From<Vec<i32>> for Array {
    fn from(v: Vec<i32>) -> Self {
        Array::I32(v)
    }
}
impl From<Vec<i64>> for Array {
    fn from(v: Vec<i64>) -> Self {
        Array::I64(v)
    }
}
impl From<Vec<f64>> for Array {
    fn from(v: Vec<f64>) -> Self {
        Array::F64(v)
    }
}
impl From<Vec<bool>> for Array {
    fn from(v: Vec<bool>) -> Self {
        Array::Bool(v)
    }
}
impl From<Vec<String>> for Array {
    fn from(v: Vec<String>) -> Self {
        Array::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let a = Array::from(vec![1i64, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.scalar_type(), ScalarType::I64);
        assert_eq!(a.get(1).unwrap(), Scalar::I64(2));
        assert!(a.get(3).is_err());
    }

    #[test]
    fn push_type_checked() {
        let mut a = Array::empty(ScalarType::I32);
        a.push(Scalar::I32(7)).unwrap();
        assert_eq!(a.len(), 1);
        let err = a.push(Scalar::I64(7)).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn slice_clamps_to_tail() {
        let a = Array::from(vec![0i64, 1, 2, 3, 4]);
        assert_eq!(a.slice(3, 10), Array::from(vec![3i64, 4]));
        assert_eq!(a.slice(5, 10).len(), 0);
        assert_eq!(a.slice(0, 2), Array::from(vec![0i64, 1]));
        // Regression: offset + len used to overflow usize in debug builds.
        assert_eq!(a.slice(usize::MAX, 5).len(), 0);
        assert_eq!(a.slice(2, usize::MAX), Array::from(vec![2i64, 3, 4]));
    }

    #[test]
    fn write_at_grows() {
        let mut a = Array::empty(ScalarType::I64);
        a.write_at(0, &Array::from(vec![1i64, 2])).unwrap();
        a.write_at(2, &Array::from(vec![3i64])).unwrap();
        assert_eq!(a, Array::from(vec![1i64, 2, 3]));
        // Overwrite in the middle.
        a.write_at(1, &Array::from(vec![9i64])).unwrap();
        assert_eq!(a, Array::from(vec![1i64, 9, 3]));
    }

    #[test]
    fn take_gathers_and_bounds_checks() {
        let a = Array::from(vec![10i64, 20, 30]);
        assert_eq!(
            a.take(&[2, 0, 2]).unwrap(),
            Array::from(vec![30i64, 10, 30])
        );
        assert!(a.take(&[3]).is_err());
        assert_eq!(a.take(&[]).unwrap().len(), 0);
    }

    #[test]
    fn cast_numeric() {
        let a = Array::from(vec![1i64, 300, -5]);
        assert_eq!(
            a.cast(ScalarType::I8).unwrap(),
            Array::I8(vec![1, 44, -5]) // 300 truncates like `as i8`
        );
        assert_eq!(
            a.cast(ScalarType::F64).unwrap(),
            Array::from(vec![1.0, 300.0, -5.0])
        );
        let b = Array::from(vec![true, false]);
        assert_eq!(b.cast(ScalarType::I64).unwrap(), Array::from(vec![1i64, 0]));
    }

    #[test]
    fn cast_str_parses() {
        let a = Array::from(vec!["12".to_string(), "-3".to_string()]);
        assert_eq!(
            a.cast(ScalarType::I64).unwrap(),
            Array::from(vec![12i64, -3])
        );
        let bad = Array::from(vec!["xy".to_string()]);
        assert!(bad.cast(ScalarType::I64).is_err());
    }

    #[test]
    fn splat_and_extend() {
        let mut a = Array::splat(&Scalar::I32(7), 3);
        assert_eq!(a, Array::from(vec![7i32, 7, 7]));
        a.extend(&Array::from(vec![1i32])).unwrap();
        assert_eq!(a.len(), 4);
        assert!(a.extend(&Array::from(vec![1.0f64])).is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Array::from(vec![1i64, 2]).byte_size(), 16);
        assert_eq!(Array::I8(vec![1, 2, 3]).byte_size(), 3);
        assert!(Array::from(vec!["ab".to_string()]).byte_size() >= 2);
    }

    #[test]
    fn widening_helpers() {
        let a = Array::I16(vec![1, 2]);
        assert_eq!(a.to_i64_vec().unwrap(), vec![1i64, 2]);
        assert_eq!(a.to_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert!(Array::from(vec![true]).to_i64_vec().is_none());
    }
}
