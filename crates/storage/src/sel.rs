//! Selection vectors and selection bitmaps.
//!
//! The paper's `filter` skeleton "does not physically modify the flow,
//! instead it calculates a selection vector" (Table I). §III-C further
//! proposes switching between *selection vectors* (good at low match rates)
//! and *bitmaps* (good at high match rates, SIMD-friendly) depending on
//! observed selectivity — so this module provides both, with lossless
//! conversions between them. The equivalence `SelVec ⟷ Bitmap` is one of the
//! library's tested invariants.

use crate::error::StorageError;

/// A selection vector: sorted, unique indices of the selected elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelVec {
    indices: Vec<u32>,
}

impl SelVec {
    /// Create from raw indices. Indices must be strictly increasing.
    pub fn new(indices: Vec<u32>) -> SelVec {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "selection vector must be strictly increasing"
        );
        SelVec { indices }
    }

    /// The identity selection over `len` elements.
    pub fn identity(len: usize) -> SelVec {
        SelVec {
            indices: (0..len as u32).collect(),
        }
    }

    /// An empty selection.
    pub fn empty() -> SelVec {
        SelVec::default()
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The selected indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Consume into the raw index vector.
    pub fn into_indices(self) -> Vec<u32> {
        self.indices
    }

    /// Selectivity relative to a domain of `domain_len` elements.
    pub fn selectivity(&self, domain_len: usize) -> f64 {
        if domain_len == 0 {
            0.0
        } else {
            self.len() as f64 / domain_len as f64
        }
    }

    /// Compose two selections: `outer` selects positions *within* `self`.
    ///
    /// This is what happens when a second filter runs on an already-filtered
    /// flow: the result selects `self.indices[outer.indices[i]]`.
    pub fn compose(&self, outer: &SelVec) -> Result<SelVec, StorageError> {
        let mut out = Vec::with_capacity(outer.len());
        for &o in &outer.indices {
            let o = o as usize;
            if o >= self.indices.len() {
                return Err(StorageError::OutOfBounds {
                    index: o,
                    len: self.indices.len(),
                });
            }
            out.push(self.indices[o]);
        }
        Ok(SelVec::new(out))
    }

    /// Intersect with another selection over the same domain.
    pub fn intersect(&self, other: &SelVec) -> SelVec {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.indices[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SelVec::new(out)
    }

    /// Restrict the selection to domain rows `[offset, offset+len)`,
    /// rebasing the surviving indices to the sub-domain (index `offset`
    /// becomes `0`). The morsel-slicing primitive for selection vectors:
    /// slicing a selected column into morsels slices the selection the
    /// same way.
    pub fn slice_domain(&self, offset: usize, len: usize) -> SelVec {
        let lo = offset as u32;
        let hi = offset.saturating_add(len) as u32;
        SelVec::new(
            self.indices
                .iter()
                .filter(|&&i| i >= lo && i < hi)
                .map(|&i| i - lo)
                .collect(),
        )
    }

    /// Convert to a bitmap over a domain of `domain_len` elements.
    pub fn to_bitmap(&self, domain_len: usize) -> Bitmap {
        let mut bm = Bitmap::zeros(domain_len);
        for &i in &self.indices {
            bm.set(i as usize, true);
        }
        bm
    }
}

/// A selection bitmap: one bit per element of the domain, packed into `u64`
/// words. The SIMD-friendly flavor of selection (§III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap over `len` elements.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitmap over `len` elements.
    pub fn ones(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.clear_tail();
        bm
    }

    /// Build from a slice of booleans (branch-free word building — this
    /// is the hot path of the bitmap filter flavor).
    pub fn from_bools(bits: &[bool]) -> Bitmap {
        let len = bits.len();
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut chunks = bits.chunks_exact(64);
        for chunk in &mut chunks {
            let mut w = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << j;
            }
            words.push(w);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = 0u64;
            for (j, &b) in rest.iter().enumerate() {
                w |= (b as u64) << j;
            }
            words.push(w);
        }
        Bitmap { words, len }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Domain length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `idx`.
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Set bit `idx` to `value`.
    pub fn set(&mut self, idx: usize, value: bool) {
        debug_assert!(idx < self.len);
        let (w, b) = (idx / 64, idx % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits (popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND with another bitmap over the same domain.
    pub fn and(&self, other: &Bitmap) -> Result<Bitmap, StorageError> {
        if self.len != other.len {
            return Err(StorageError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        })
    }

    /// Bitwise OR with another bitmap over the same domain.
    pub fn or(&self, other: &Bitmap) -> Result<Bitmap, StorageError> {
        if self.len != other.len {
            return Err(StorageError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        })
    }

    /// Bitwise NOT over the domain.
    pub fn not(&self) -> Bitmap {
        let mut bm = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        bm.clear_tail();
        bm
    }

    /// Convert to a selection vector (indices of set bits, in order).
    ///
    /// Uses word-at-a-time iteration with trailing-zero extraction — the
    /// standard technique for fast bitmap→selvec conversion.
    pub fn to_selvec(&self) -> SelVec {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi * 64) as u32 + bit);
                w &= w - 1;
            }
        }
        SelVec::new(out)
    }

    /// Selectivity: fraction of set bits.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_empty() {
        let s = SelVec::identity(4);
        assert_eq!(s.indices(), &[0, 1, 2, 3]);
        assert_eq!(s.selectivity(4), 1.0);
        assert!(SelVec::empty().is_empty());
        assert_eq!(SelVec::empty().selectivity(0), 0.0);
    }

    #[test]
    fn slice_domain_rebases_and_tiles() {
        let s = SelVec::new(vec![0, 3, 4, 7, 9]);
        assert_eq!(s.slice_domain(0, 5).indices(), &[0, 3, 4]);
        assert_eq!(s.slice_domain(5, 5).indices(), &[2, 4]);
        assert!(s.slice_domain(10, 5).is_empty());
        // Morsel slices of the domain cover the selection exactly once.
        let total: usize = (0..10).step_by(5).map(|o| s.slice_domain(o, 5).len()).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn compose_selections() {
        // First filter keeps indices 1,3,5; second (within that) keeps 0,2.
        let inner = SelVec::new(vec![1, 3, 5]);
        let outer = SelVec::new(vec![0, 2]);
        assert_eq!(inner.compose(&outer).unwrap().indices(), &[1, 5]);
        // Out-of-range composition errors.
        assert!(inner.compose(&SelVec::new(vec![3])).is_err());
    }

    #[test]
    fn intersect_is_sorted_merge() {
        let a = SelVec::new(vec![0, 2, 4, 6]);
        let b = SelVec::new(vec![2, 3, 4, 7]);
        assert_eq!(a.intersect(&b).indices(), &[2, 4]);
        assert_eq!(a.intersect(&SelVec::empty()).len(), 0);
    }

    #[test]
    fn bitmap_roundtrip() {
        let s = SelVec::new(vec![0, 63, 64, 100]);
        let bm = s.to_bitmap(128);
        assert_eq!(bm.count_ones(), 4);
        assert!(bm.get(63));
        assert!(bm.get(64));
        assert!(!bm.get(65));
        assert_eq!(bm.to_selvec(), s);
    }

    #[test]
    fn bitmap_logic_ops() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).unwrap().to_selvec().indices(), &[0]);
        assert_eq!(a.or(&b).unwrap().to_selvec().indices(), &[0, 1, 2]);
        assert_eq!(a.not().to_selvec().indices(), &[2, 3]);
        assert!(a.and(&Bitmap::zeros(5)).is_err());
    }

    #[test]
    fn ones_respects_tail() {
        let bm = Bitmap::ones(70);
        assert_eq!(bm.count_ones(), 70);
        assert_eq!(bm.not().count_ones(), 0);
        assert_eq!(bm.selectivity(), 1.0);
    }

    #[test]
    fn from_bools_matches_set() {
        let bools = [false, true, false, true, true];
        let bm = Bitmap::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b);
        }
        assert_eq!(bm.to_selvec().indices(), &[1, 3, 4]);
    }
}
