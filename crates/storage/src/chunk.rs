//! Chunks: cache-resident horizontal slices of a table.
//!
//! Vectorized interpretation (§III-A, MonetDB/X100-style) operates on one
//! chunk at a time. A chunk bundles the columns flowing through a pipeline
//! together with an optional selection that filters have *logically* applied
//! without physically moving data (Table I's `filter`/`condense` semantics).

use crate::array::Array;
use crate::error::StorageError;
use crate::sel::SelVec;

/// A horizontal slice of columns with an optional pending selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    columns: Vec<Array>,
    sel: Option<SelVec>,
    len: usize,
}

impl Chunk {
    /// Build a chunk from equally long columns.
    pub fn new(columns: Vec<Array>) -> Result<Chunk, StorageError> {
        let len = columns.first().map_or(0, Array::len);
        for c in &columns {
            if c.len() != len {
                return Err(StorageError::LengthMismatch {
                    left: len,
                    right: c.len(),
                });
            }
        }
        Ok(Chunk {
            columns,
            sel: None,
            len,
        })
    }

    /// An empty chunk (no columns, no rows).
    pub fn empty() -> Chunk {
        Chunk {
            columns: Vec::new(),
            sel: None,
            len: 0,
        }
    }

    /// Physical row count (before selection).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no physical rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical row count (after selection, if any).
    pub fn selected_len(&self) -> usize {
        self.sel.as_ref().map_or(self.len, SelVec::len)
    }

    /// The columns.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> Result<&Array, StorageError> {
        self.columns.get(i).ok_or(StorageError::OutOfBounds {
            index: i,
            len: self.columns.len(),
        })
    }

    /// The pending selection, if any.
    pub fn sel(&self) -> Option<&SelVec> {
        self.sel.as_ref()
    }

    /// Attach (or replace) the pending selection.
    ///
    /// When a selection is already pending, the new one is interpreted as
    /// selecting positions *within* the current selection and is composed.
    pub fn apply_sel(&mut self, sel: SelVec) -> Result<(), StorageError> {
        self.sel = Some(match self.sel.take() {
            None => sel,
            Some(existing) => existing.compose(&sel)?,
        });
        Ok(())
    }

    /// Append a column; must match the physical length.
    pub fn push_column(&mut self, col: Array) -> Result<(), StorageError> {
        if !self.columns.is_empty() && col.len() != self.len {
            return Err(StorageError::LengthMismatch {
                left: self.len,
                right: col.len(),
            });
        }
        if self.columns.is_empty() {
            self.len = col.len();
        }
        self.columns.push(col);
        Ok(())
    }

    /// Materialize the selection: physically gather the selected rows into
    /// dense columns and drop the selection (Table I's `condense`).
    pub fn condense(&self) -> Result<Chunk, StorageError> {
        match &self.sel {
            None => Ok(self.clone()),
            Some(sel) => {
                let columns = self
                    .columns
                    .iter()
                    .map(|c| c.take(sel.indices()))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Chunk {
                    len: sel.len(),
                    columns,
                    sel: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk2() -> Chunk {
        Chunk::new(vec![
            Array::from(vec![1i64, 2, 3, 4]),
            Array::from(vec![10.0, 20.0, 30.0, 40.0]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        assert!(Chunk::new(vec![Array::from(vec![1i64]), Array::from(vec![1.0, 2.0])]).is_err());
        let c = chunk2();
        assert_eq!(c.len(), 4);
        assert_eq!(c.selected_len(), 4);
        assert_eq!(c.columns().len(), 2);
        assert!(c.column(2).is_err());
    }

    #[test]
    fn selection_composition() {
        let mut c = chunk2();
        c.apply_sel(SelVec::new(vec![0, 2, 3])).unwrap();
        assert_eq!(c.selected_len(), 3);
        // Second selection is relative to the first: keep positions 1 and 2
        // of [0,2,3] → rows 2 and 3.
        c.apply_sel(SelVec::new(vec![1, 2])).unwrap();
        assert_eq!(c.sel().unwrap().indices(), &[2, 3]);
    }

    #[test]
    fn condense_materializes() {
        let mut c = chunk2();
        c.apply_sel(SelVec::new(vec![1, 3])).unwrap();
        let d = c.condense().unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.sel().is_none());
        assert_eq!(d.column(0).unwrap(), &Array::from(vec![2i64, 4]));
        assert_eq!(d.column(1).unwrap(), &Array::from(vec![20.0, 40.0]));
        // Condensing an unselected chunk is the identity.
        assert_eq!(chunk2().condense().unwrap(), chunk2());
    }

    #[test]
    fn push_column_rules() {
        let mut c = Chunk::empty();
        assert!(c.is_empty());
        c.push_column(Array::from(vec![1i64, 2])).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.push_column(Array::from(vec![1i64])).is_err());
        c.push_column(Array::from(vec![true, false])).unwrap();
        assert_eq!(c.columns().len(), 2);
    }
}
