//! Frame-of-reference encoding with bit-packing (integers only).
//!
//! Every value is stored as an unsigned offset from the block minimum
//! (the *reference*), packed at the minimal bit width. This is the workhorse
//! codec for narrow-range integer columns, and the natural input to the
//! compact-data-types optimization: a FOR block's width bounds the range of
//! the decoded values.

use crate::array::Array;
use crate::error::StorageError;
use crate::scalar::ScalarType;

/// A frame-of-reference bit-packed block.
#[derive(Debug, Clone, PartialEq)]
pub struct ForBlock {
    /// The block minimum; all packed values are offsets from it.
    pub reference: i64,
    /// Bit width of each packed offset (0..=64).
    pub width: u8,
    /// Packed offsets, little-endian bit order within each word.
    pub packed: Vec<u64>,
    /// Logical element count.
    pub count: usize,
    /// Original scalar type to restore on decode.
    pub ty: ScalarType,
}

impl ForBlock {
    /// Logical length.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block decodes to nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Scalar type of the decoded values.
    pub fn scalar_type(&self) -> ScalarType {
        self.ty
    }

    /// Approximate footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        8 + 1 + self.packed.len() * 8
    }

    /// Maximum decoded value (`reference + 2^width - 1`), used for
    /// compact-type inference without decoding.
    pub fn max_bound(&self) -> i64 {
        if self.width >= 64 {
            i64::MAX
        } else {
            self.reference
                .saturating_add(((1u128 << self.width) - 1).min(i64::MAX as u128) as i64)
        }
    }
}

/// Write `value` (must fit in `width` bits) at bit position `bit_pos`.
fn pack_bits(packed: &mut [u64], bit_pos: usize, value: u64, width: u8) {
    if width == 0 {
        return;
    }
    let word = bit_pos / 64;
    let offset = bit_pos % 64;
    packed[word] |= value << offset;
    if offset + width as usize > 64 {
        packed[word + 1] |= value >> (64 - offset);
    }
}

/// Read a `width`-bit value at bit position `bit_pos`.
fn unpack_bits(packed: &[u64], bit_pos: usize, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = bit_pos / 64;
    let offset = bit_pos % 64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut v = packed[word] >> offset;
    if offset + width as usize > 64 {
        v |= packed[word + 1] << (64 - offset);
    }
    v & mask
}

/// Encode an integer array.
pub fn encode(array: &Array) -> Result<ForBlock, StorageError> {
    let ty = array.scalar_type();
    let values = array.to_i64_vec().ok_or_else(|| {
        StorageError::CodecUnsupported(format!("forpack requires integers, got {ty}"))
    })?;
    if values.is_empty() {
        return Ok(ForBlock {
            reference: 0,
            width: 0,
            packed: Vec::new(),
            count: 0,
            ty,
        });
    }
    let reference = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    let range = (max as i128 - reference as i128) as u128;
    let width = (128 - range.leading_zeros()).min(64) as u8;
    let total_bits = values.len() * width as usize;
    let mut packed = vec![0u64; total_bits.div_ceil(64) + 1];
    for (i, &v) in values.iter().enumerate() {
        let offset = (v as i128 - reference as i128) as u64;
        pack_bits(&mut packed, i * width as usize, offset, width);
    }
    Ok(ForBlock {
        reference,
        width,
        packed,
        count: values.len(),
        ty,
    })
}

/// Decode back to a dense array of the original type.
pub fn decode(block: &ForBlock) -> Array {
    let mut out = Vec::with_capacity(block.count);
    for i in 0..block.count {
        let offset = unpack_bits(&block.packed, i * block.width as usize, block.width);
        out.push(block.reference.wrapping_add(offset as i64));
    }
    widen_to(out, block.ty)
}

/// Narrow an `i64` vector back to the requested integer type.
pub(crate) fn widen_to(values: Vec<i64>, ty: ScalarType) -> Array {
    match ty {
        ScalarType::I8 => Array::I8(values.iter().map(|&x| x as i8).collect()),
        ScalarType::I16 => Array::I16(values.iter().map(|&x| x as i16).collect()),
        ScalarType::I32 => Array::I32(values.iter().map(|&x| x as i32).collect()),
        _ => Array::I64(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_narrow_range() {
        let a = Array::from(vec![1000i64, 1001, 1003, 1000, 1007]);
        let b = encode(&a).unwrap();
        assert_eq!(b.reference, 1000);
        assert_eq!(b.width, 3); // range 7 needs 3 bits
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn roundtrip_negative_values() {
        let a = Array::from(vec![-100i64, -50, 0, 25]);
        let b = encode(&a).unwrap();
        assert_eq!(b.reference, -100);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn roundtrip_extreme_range() {
        let a = Array::from(vec![i64::MIN, i64::MAX, 0]);
        let b = encode(&a).unwrap();
        assert_eq!(b.width, 64);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn constant_column_packs_to_zero_bits() {
        let a = Array::from(vec![42i64; 1000]);
        let b = encode(&a).unwrap();
        assert_eq!(b.width, 0);
        assert!(b.compressed_size() < 32);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn preserves_narrow_types() {
        let a = Array::I16(vec![5, 6, 7]);
        let b = encode(&a).unwrap();
        assert_eq!(b.scalar_type(), ScalarType::I16);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn rejects_non_integers() {
        assert!(encode(&Array::from(vec![1.5f64])).is_err());
        assert!(encode(&Array::from(vec![true])).is_err());
    }

    #[test]
    fn bit_packing_primitives() {
        let mut packed = vec![0u64; 3];
        // Straddle a word boundary: 13-bit values at positions near 64.
        pack_bits(&mut packed, 60, 0x1ABC & 0x1FFF, 13);
        assert_eq!(unpack_bits(&packed, 60, 13), 0x1ABC & 0x1FFF);
        pack_bits(&mut packed, 0, 0x3F, 6);
        assert_eq!(unpack_bits(&packed, 0, 6), 0x3F);
    }

    #[test]
    fn max_bound_is_sound() {
        let a = Array::from(vec![10i64, 14, 12]);
        let b = encode(&a).unwrap();
        assert!(b.max_bound() >= 14);
    }

    #[test]
    fn empty() {
        let a = Array::empty(ScalarType::I64);
        let b = encode(&a).unwrap();
        assert!(b.is_empty());
        assert_eq!(decode(&b), a);
    }
}
