//! Run-length encoding.
//!
//! Stores each maximal run of equal values once, with a run length. Works
//! for every scalar type. Compressed execution can aggregate runs without
//! expanding them (`value × run_length`), which the kernel crate exploits.

use crate::array::Array;
use crate::scalar::ScalarType;

/// A run-length encoded block: `values[i]` repeats `run_lengths[i]` times.
#[derive(Debug, Clone, PartialEq)]
pub struct RleBlock {
    /// One entry per run.
    pub values: Array,
    /// Length of each run (parallel to `values`).
    pub run_lengths: Vec<u32>,
    len: usize,
}

impl RleBlock {
    /// Logical (decoded) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block decodes to nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scalar type of the decoded values.
    pub fn scalar_type(&self) -> ScalarType {
        self.values.scalar_type()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.run_lengths.len()
    }

    /// Approximate footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        self.values.byte_size() + self.run_lengths.len() * 4
    }
}

/// Encode an array into runs.
pub fn encode(array: &Array) -> RleBlock {
    macro_rules! encode_impl {
        ($v:expr, $mk:expr) => {{
            let mut values = Vec::new();
            let mut run_lengths: Vec<u32> = Vec::new();
            for x in $v {
                match values.last() {
                    Some(last) if last == x => *run_lengths.last_mut().unwrap() += 1,
                    _ => {
                        values.push(x.clone());
                        run_lengths.push(1);
                    }
                }
            }
            RleBlock {
                values: $mk(values),
                run_lengths,
                len: $v.len(),
            }
        }};
    }
    match array {
        Array::I8(v) => encode_impl!(v, Array::I8),
        Array::I16(v) => encode_impl!(v, Array::I16),
        Array::I32(v) => encode_impl!(v, Array::I32),
        Array::I64(v) => encode_impl!(v, Array::I64),
        Array::F64(v) => encode_impl!(v, Array::F64),
        Array::Bool(v) => encode_impl!(v, Array::Bool),
        Array::Str(v) => encode_impl!(v, Array::Str),
    }
}

/// Decode back to a dense array.
pub fn decode(block: &RleBlock) -> Array {
    macro_rules! decode_impl {
        ($v:expr, $mk:expr) => {{
            let mut out = Vec::with_capacity(block.len);
            for (val, &n) in $v.iter().zip(&block.run_lengths) {
                for _ in 0..n {
                    out.push(val.clone());
                }
            }
            $mk(out)
        }};
    }
    match &block.values {
        Array::I8(v) => decode_impl!(v, Array::I8),
        Array::I16(v) => decode_impl!(v, Array::I16),
        Array::I32(v) => decode_impl!(v, Array::I32),
        Array::I64(v) => decode_impl!(v, Array::I64),
        Array::F64(v) => decode_impl!(v, Array::F64),
        Array::Bool(v) => decode_impl!(v, Array::Bool),
        Array::Str(v) => decode_impl!(v, Array::Str),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_runs() {
        let a = Array::from(vec![1i64, 1, 1, 2, 3, 3]);
        let b = encode(&a);
        assert_eq!(b.run_count(), 3);
        assert_eq!(b.values, Array::from(vec![1i64, 2, 3]));
        assert_eq!(b.run_lengths, vec![3, 1, 2]);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn single_run() {
        let a = Array::from(vec![5.5f64; 100]);
        let b = encode(&a);
        assert_eq!(b.run_count(), 1);
        assert_eq!(b.len(), 100);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn no_runs_degenerates() {
        let a = Array::from(vec![1i32, 2, 3]);
        let b = encode(&a);
        assert_eq!(b.run_count(), 3);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn strings_and_bools() {
        let a = Array::from(vec![true, true, false]);
        assert_eq!(decode(&encode(&a)), a);
        let s = Array::from(vec!["x".to_string(), "x".to_string(), "y".to_string()]);
        let b = encode(&s);
        assert_eq!(b.run_count(), 2);
        assert_eq!(decode(&b), s);
    }

    #[test]
    fn empty() {
        let a = Array::empty(ScalarType::I8);
        let b = encode(&a);
        assert!(b.is_empty());
        assert_eq!(decode(&b), a);
    }
}
