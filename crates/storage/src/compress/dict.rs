//! Dictionary encoding.
//!
//! Stores the distinct values once (in first-occurrence order) plus one
//! `u32` code per element. Compressed execution can evaluate predicates on
//! the (small) dictionary and then select by code — the kernel crate's
//! `filter_on_dict` exploits this.

use crate::array::Array;
use crate::error::StorageError;
use crate::scalar::ScalarType;

/// A dictionary encoded block.
#[derive(Debug, Clone, PartialEq)]
pub struct DictBlock {
    /// Distinct values, in first-occurrence order.
    pub dictionary: Array,
    /// One code per logical element, indexing into `dictionary`.
    pub codes: Vec<u32>,
}

impl DictBlock {
    /// Logical length.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the block decodes to nothing.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Scalar type of the decoded values.
    pub fn scalar_type(&self) -> ScalarType {
        self.dictionary.scalar_type()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dictionary.len()
    }

    /// Approximate footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        self.dictionary.byte_size() + self.codes.len() * 4
    }
}

/// Encode an array into a dictionary block.
pub fn encode(array: &Array) -> DictBlock {
    use std::collections::HashMap;
    macro_rules! encode_impl {
        ($v:expr, $mk:expr, $key:expr) => {{
            let mut dict = Vec::new();
            let mut codes = Vec::with_capacity($v.len());
            let mut index: HashMap<_, u32> = HashMap::new();
            for x in $v {
                let code = *index.entry($key(x)).or_insert_with(|| {
                    dict.push(x.clone());
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            DictBlock {
                dictionary: $mk(dict),
                codes,
            }
        }};
    }
    match array {
        Array::I8(v) => encode_impl!(v, Array::I8, |x: &i8| *x),
        Array::I16(v) => encode_impl!(v, Array::I16, |x: &i16| *x),
        Array::I32(v) => encode_impl!(v, Array::I32, |x: &i32| *x),
        Array::I64(v) => encode_impl!(v, Array::I64, |x: &i64| *x),
        Array::F64(v) => encode_impl!(v, Array::F64, |x: &f64| x.to_bits()),
        Array::Bool(v) => encode_impl!(v, Array::Bool, |x: &bool| *x),
        Array::Str(v) => encode_impl!(v, Array::Str, |x: &String| x.clone()),
    }
}

/// Decode back to a dense array.
pub fn decode(block: &DictBlock) -> Result<Array, StorageError> {
    block.dictionary.take(&block.codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_in_first_occurrence_order() {
        let a = Array::from(vec![7i64, 3, 7, 7, 3, 9]);
        let b = encode(&a);
        assert_eq!(b.dictionary, Array::from(vec![7i64, 3, 9]));
        assert_eq!(b.codes, vec![0, 1, 0, 0, 1, 2]);
        assert_eq!(b.cardinality(), 3);
        assert_eq!(decode(&b).unwrap(), a);
    }

    #[test]
    fn strings() {
        let a = Array::from(vec!["x".to_string(), "y".to_string(), "x".to_string()]);
        let b = encode(&a);
        assert_eq!(b.cardinality(), 2);
        assert_eq!(decode(&b).unwrap(), a);
    }

    #[test]
    fn floats_keyed_by_bits() {
        let a = Array::from(vec![1.5, -0.0, 0.0, 1.5]);
        let b = encode(&a);
        // -0.0 and 0.0 have distinct bit patterns.
        assert_eq!(b.cardinality(), 3);
        assert_eq!(decode(&b).unwrap(), a);
    }

    #[test]
    fn empty() {
        let a = Array::empty(ScalarType::Str);
        let b = encode(&a);
        assert!(b.is_empty());
        assert_eq!(decode(&b).unwrap(), a);
    }

    #[test]
    fn size_wins_on_low_cardinality() {
        let v: Vec<String> = (0..1000).map(|i| format!("category-{}", i % 3)).collect();
        let a = Array::from(v);
        let b = encode(&a);
        assert!(b.compressed_size() < a.byte_size());
    }
}
