//! Per-block compression codecs and automatic scheme selection.
//!
//! The paper's motivating scenario (§I) is a main-memory system where "the
//! compression techniques within one column change (e.g. block by block) in
//! order to adapt compression methods to the data in each block". The VM
//! then has to adapt: execute directly on the current encoding (compressed
//! execution, [Abadi et al. 2006]), decompress and interpret, or JIT-compile
//! a specialized path — and react when the scheme changes (§III-C).
//!
//! Four codecs are provided, mirroring the classical column-store set
//! (cf. Zukowski et al., ICDE 2006):
//! * [`rle`] — run-length encoding,
//! * [`dict`] — dictionary encoding,
//! * [`forpack`] — frame-of-reference with bit-packing,
//! * [`delta`] — delta encoding with zig-zag bit-packing.

pub mod delta;
pub mod dict;
pub mod forpack;
pub mod rle;

use crate::array::Array;
use crate::error::StorageError;
use crate::scalar::ScalarType;
use crate::stats::{ColumnStats, DISTINCT_CAP};

/// The available compression schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// No compression; the raw array.
    Plain,
    /// Run-length encoding.
    Rle,
    /// Dictionary encoding.
    Dict,
    /// Frame-of-reference + bit-packing (integers only).
    ForPack,
    /// Delta + zig-zag bit-packing (integers only).
    Delta,
}

impl Scheme {
    /// All schemes, for exhaustive tests and sweeps.
    pub const ALL: [Scheme; 5] = [
        Scheme::Plain,
        Scheme::Rle,
        Scheme::Dict,
        Scheme::ForPack,
        Scheme::Delta,
    ];

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Plain => "plain",
            Scheme::Rle => "rle",
            Scheme::Dict => "dict",
            Scheme::ForPack => "forpack",
            Scheme::Delta => "delta",
        }
    }

    /// Whether this scheme can encode arrays of type `ty` at all.
    pub fn supports(self, ty: ScalarType) -> bool {
        match self {
            Scheme::Plain | Scheme::Rle | Scheme::Dict => true,
            Scheme::ForPack | Scheme::Delta => ty.is_integer(),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compressed (or plain) column block.
#[derive(Debug, Clone, PartialEq)]
pub enum Encoded {
    /// Uncompressed payload.
    Plain(Array),
    /// Run-length encoded payload.
    Rle(rle::RleBlock),
    /// Dictionary encoded payload.
    Dict(dict::DictBlock),
    /// Frame-of-reference bit-packed payload.
    ForPack(forpack::ForBlock),
    /// Delta encoded payload.
    Delta(delta::DeltaBlock),
}

impl Encoded {
    /// The scheme of this block.
    pub fn scheme(&self) -> Scheme {
        match self {
            Encoded::Plain(_) => Scheme::Plain,
            Encoded::Rle(_) => Scheme::Rle,
            Encoded::Dict(_) => Scheme::Dict,
            Encoded::ForPack(_) => Scheme::ForPack,
            Encoded::Delta(_) => Scheme::Delta,
        }
    }

    /// Logical (decoded) element count.
    pub fn len(&self) -> usize {
        match self {
            Encoded::Plain(a) => a.len(),
            Encoded::Rle(b) => b.len(),
            Encoded::Dict(b) => b.len(),
            Encoded::ForPack(b) => b.len(),
            Encoded::Delta(b) => b.len(),
        }
    }

    /// True when the block decodes to zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical scalar type of the decoded values.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Encoded::Plain(a) => a.scalar_type(),
            Encoded::Rle(b) => b.scalar_type(),
            Encoded::Dict(b) => b.scalar_type(),
            Encoded::ForPack(b) => b.scalar_type(),
            Encoded::Delta(b) => b.scalar_type(),
        }
    }

    /// Approximate physical footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        match self {
            Encoded::Plain(a) => a.byte_size(),
            Encoded::Rle(b) => b.compressed_size(),
            Encoded::Dict(b) => b.compressed_size(),
            Encoded::ForPack(b) => b.compressed_size(),
            Encoded::Delta(b) => b.compressed_size(),
        }
    }
}

/// Compress `array` with the requested scheme.
pub fn compress(array: &Array, scheme: Scheme) -> Result<Encoded, StorageError> {
    if !scheme.supports(array.scalar_type()) {
        return Err(StorageError::CodecUnsupported(format!(
            "{} cannot encode {}",
            scheme,
            array.scalar_type()
        )));
    }
    Ok(match scheme {
        Scheme::Plain => Encoded::Plain(array.clone()),
        Scheme::Rle => Encoded::Rle(rle::encode(array)),
        Scheme::Dict => Encoded::Dict(dict::encode(array)),
        Scheme::ForPack => Encoded::ForPack(forpack::encode(array)?),
        Scheme::Delta => Encoded::Delta(delta::encode(array)?),
    })
}

/// Decompress a block back to a dense array.
pub fn decompress(enc: &Encoded) -> Result<Array, StorageError> {
    Ok(match enc {
        Encoded::Plain(a) => a.clone(),
        Encoded::Rle(b) => rle::decode(b),
        Encoded::Dict(b) => dict::decode(b)?,
        Encoded::ForPack(b) => forpack::decode(b),
        Encoded::Delta(b) => delta::decode(b),
    })
}

/// Pick a scheme for a block from its statistics.
///
/// This is the "adapt compression methods to the data in each block" step
/// (§I). The rules follow column-store practice:
/// * long runs → RLE,
/// * few distinct values → dictionary,
/// * narrow integer range → frame-of-reference,
/// * sorted-ish integers (small deltas) → delta,
/// * otherwise plain.
pub fn choose_scheme(stats: &ColumnStats) -> Scheme {
    if stats.count == 0 {
        return Scheme::Plain;
    }
    if stats.avg_run_len() >= 4.0 {
        return Scheme::Rle;
    }
    if stats.distinct < DISTINCT_CAP && (stats.distinct as f64) < stats.count as f64 / 8.0 {
        return Scheme::Dict;
    }
    if stats.scalar_type.is_integer() {
        if let Some(range) = stats.range() {
            let packed_bits = 64 - range.leading_zeros().min(63);
            if packed_bits as usize + 1 < stats.scalar_type.width() * 8 / 2 {
                return Scheme::ForPack;
            }
        }
    }
    Scheme::Plain
}

/// Compress with the automatically chosen scheme.
pub fn compress_auto(array: &Array) -> Result<(Encoded, Scheme), StorageError> {
    let stats = ColumnStats::compute(array);
    let scheme = choose_scheme(&stats);
    Ok((compress(array, scheme)?, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(array: Array, scheme: Scheme) {
        let enc = compress(&array, scheme).unwrap();
        assert_eq!(enc.scheme(), scheme);
        assert_eq!(enc.len(), array.len());
        assert_eq!(enc.scalar_type(), array.scalar_type());
        assert_eq!(decompress(&enc).unwrap(), array);
    }

    #[test]
    fn all_schemes_roundtrip_integers() {
        let data = Array::from(vec![5i64, 5, 5, 9, 9, 1, 1, 1, 1, 42]);
        for scheme in Scheme::ALL {
            roundtrip(data.clone(), scheme);
        }
    }

    #[test]
    fn generic_schemes_roundtrip_strings() {
        let data = Array::from(vec!["aa".to_string(), "aa".to_string(), "bb".to_string()]);
        for scheme in [Scheme::Plain, Scheme::Rle, Scheme::Dict] {
            roundtrip(data.clone(), scheme);
        }
        assert!(compress(&data, Scheme::ForPack).is_err());
        assert!(compress(&data, Scheme::Delta).is_err());
    }

    #[test]
    fn empty_arrays_roundtrip() {
        for scheme in Scheme::ALL {
            roundtrip(Array::empty(ScalarType::I32), scheme);
        }
    }

    #[test]
    fn scheme_choice_follows_data_shape() {
        // Long runs → RLE.
        let runs = Array::from(vec![7i64; 1000]);
        assert_eq!(choose_scheme(&ColumnStats::compute(&runs)), Scheme::Rle);
        // Few distinct, no runs → Dict.
        let v: Vec<i64> = (0..1000).map(|i| (i % 7) * 1_000_000_007).collect();
        assert_eq!(
            choose_scheme(&ColumnStats::compute(&v.into())),
            Scheme::Dict
        );
        // Narrow range, many distinct, no runs → ForPack.
        let v: Vec<i64> = (0..1000).map(|i| (i * 37) % 997).collect();
        assert_eq!(
            choose_scheme(&ColumnStats::compute(&v.into())),
            Scheme::ForPack
        );
        // High-entropy wide values → Plain.
        let v: Vec<i64> = (0..1000)
            .map(|i| (i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64))
            .collect();
        assert_eq!(
            choose_scheme(&ColumnStats::compute(&v.into())),
            Scheme::Plain
        );
    }

    #[test]
    fn compression_actually_shrinks() {
        let runs = Array::from(vec![7i64; 4096]);
        let (enc, scheme) = compress_auto(&runs).unwrap();
        assert_eq!(scheme, Scheme::Rle);
        assert!(enc.compressed_size() < runs.byte_size() / 100);

        let narrow: Vec<i64> = (0..4096).map(|i| 1_000_000 + (i % 256)).collect();
        let narrow = Array::from(narrow);
        let enc = compress(&narrow, Scheme::ForPack).unwrap();
        assert!(enc.compressed_size() < narrow.byte_size() / 4);
    }
}
