//! Delta encoding with zig-zag bit-packing (integers only).
//!
//! Stores the first value and the differences between adjacent values,
//! zig-zag mapped to unsigned and bit-packed at the minimal width. Ideal for
//! sorted or slowly varying columns (timestamps, surrogate keys).

use crate::array::Array;
use crate::error::StorageError;
use crate::scalar::ScalarType;

use super::forpack::widen_to;

/// A delta encoded block.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBlock {
    /// The first logical value; deltas follow.
    pub first: i64,
    /// Bit width of each zig-zag packed delta.
    pub width: u8,
    /// Packed zig-zag deltas (count = len - 1).
    pub packed: Vec<u64>,
    /// Logical element count.
    pub count: usize,
    /// Original scalar type to restore on decode.
    pub ty: ScalarType,
}

impl DeltaBlock {
    /// Logical length.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block decodes to nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Scalar type of the decoded values.
    pub fn scalar_type(&self) -> ScalarType {
        self.ty
    }

    /// Approximate footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        8 + 1 + self.packed.len() * 8
    }
}

/// Zig-zag map a signed delta to unsigned.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse zig-zag map.
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn pack_bits(packed: &mut [u64], bit_pos: usize, value: u64, width: u8) {
    if width == 0 {
        return;
    }
    let word = bit_pos / 64;
    let offset = bit_pos % 64;
    packed[word] |= value << offset;
    if offset + width as usize > 64 {
        packed[word + 1] |= value >> (64 - offset);
    }
}

fn unpack_bits(packed: &[u64], bit_pos: usize, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = bit_pos / 64;
    let offset = bit_pos % 64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut v = packed[word] >> offset;
    if offset + width as usize > 64 {
        v |= packed[word + 1] << (64 - offset);
    }
    v & mask
}

/// Encode an integer array.
pub fn encode(array: &Array) -> Result<DeltaBlock, StorageError> {
    let ty = array.scalar_type();
    let values = array.to_i64_vec().ok_or_else(|| {
        StorageError::CodecUnsupported(format!("delta requires integers, got {ty}"))
    })?;
    if values.is_empty() {
        return Ok(DeltaBlock {
            first: 0,
            width: 0,
            packed: Vec::new(),
            count: 0,
            ty,
        });
    }
    let deltas: Vec<u64> = values
        .windows(2)
        .map(|w| zigzag(w[1].wrapping_sub(w[0])))
        .collect();
    let max = deltas.iter().copied().max().unwrap_or(0);
    let width = (64 - max.leading_zeros()).min(64) as u8;
    let total_bits = deltas.len() * width as usize;
    let mut packed = vec![0u64; total_bits.div_ceil(64) + 1];
    for (i, &d) in deltas.iter().enumerate() {
        pack_bits(&mut packed, i * width as usize, d, width);
    }
    Ok(DeltaBlock {
        first: values[0],
        width,
        packed,
        count: values.len(),
        ty,
    })
}

/// Decode back to a dense array of the original type.
pub fn decode(block: &DeltaBlock) -> Array {
    if block.count == 0 {
        return Array::empty(block.ty);
    }
    let mut out = Vec::with_capacity(block.count);
    let mut current = block.first;
    out.push(current);
    for i in 0..block.count - 1 {
        let d = unzigzag(unpack_bits(
            &block.packed,
            i * block.width as usize,
            block.width,
        ));
        current = current.wrapping_add(d);
        out.push(current);
    }
    widen_to(out, block.ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn roundtrip_sorted() {
        let a = Array::from((0..1000i64).map(|i| i * 3 + 7).collect::<Vec<_>>());
        let b = encode(&a).unwrap();
        // Constant delta of 3 → zigzag 6 → 3 bits.
        assert_eq!(b.width, 3);
        assert!(b.compressed_size() < a.byte_size() / 4);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn roundtrip_oscillating() {
        let a = Array::from(vec![100i64, 90, 105, 85, 110]);
        let b = encode(&a).unwrap();
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn roundtrip_single_value() {
        let a = Array::from(vec![42i64]);
        let b = encode(&a).unwrap();
        assert_eq!(b.width, 0);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn preserves_narrow_types() {
        let a = Array::I8(vec![1, 2, 4, 8]);
        let b = encode(&a).unwrap();
        assert_eq!(b.scalar_type(), ScalarType::I8);
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn extreme_deltas() {
        let a = Array::from(vec![i64::MIN, i64::MAX, i64::MIN]);
        let b = encode(&a).unwrap();
        assert_eq!(decode(&b), a);
    }

    #[test]
    fn rejects_non_integers() {
        assert!(encode(&Array::from(vec![1.5f64])).is_err());
    }

    #[test]
    fn empty() {
        let a = Array::empty(ScalarType::I32);
        let b = encode(&a).unwrap();
        assert!(b.is_empty());
        assert_eq!(decode(&b), a);
    }
}
