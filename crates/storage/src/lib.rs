//! Columnar storage substrate for `adaptvm`.
//!
//! This crate provides the data representation shared by every layer of the
//! adaptive VM described in Gubner's ICDE 2018 PhD-symposium paper:
//!
//! * [`scalar`] — scalar values and the scalar type lattice (including the
//!   small integer types needed for *compact data types* optimizations),
//! * [`mod@array`] — typed, densely stored arrays (the operands of the DSL's
//!   data-parallel skeletons),
//! * [`sel`] — selection vectors **and** selection bitmaps. The paper's
//!   micro-adaptivity discussion (§III-C) requires both flavors, since the
//!   VM may switch between selective and full computation,
//! * [`chunk`] — a cache-resident horizontal slice of a table
//!   (MonetDB/X100-style vectorized execution operates chunk-at-a-time),
//! * [`schema`] — fields, schemas and in-memory tables,
//! * [`block`] — block-wise storage where the compression scheme may change
//!   from block to block (the scenario of §I / §III-C),
//! * [`compress`] — the compression codecs (RLE, dictionary,
//!   frame-of-reference with bit-packing, delta) and automatic per-block
//!   scheme selection,
//! * [`spill`] — append-only on-disk spill runs (columnar `(key, value)`
//!   frame codec for `i64` and arena-backed Utf8 keys) backing the
//!   out-of-core grace-hash join,
//! * [`stats`] — lightweight statistics used for codec selection and
//!   compact-type inference,
//! * [`gen`] — deterministic data generators, including a TPC-H-style
//!   `lineitem` generator used by the experiment suite.

pub mod array;
pub mod block;
pub mod chunk;
pub mod compress;
pub mod error;
pub mod gen;
pub mod scalar;
pub mod schema;
pub mod sel;
pub mod spill;
pub mod stats;

pub use array::Array;
pub use block::{Block, BlockColumn, BlockedTable};
pub use chunk::Chunk;
pub use error::StorageError;
pub use scalar::{Scalar, ScalarType};
pub use schema::{Field, Schema, Table};
pub use sel::{Bitmap, SelVec};

/// Default chunk length used by vectorized execution.
///
/// 1024 is the classical MonetDB/X100 vector size: large enough to amortize
/// interpretation overhead, small enough to stay cache resident.
pub const DEFAULT_CHUNK: usize = 1024;
