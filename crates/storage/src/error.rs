//! Error type shared by storage operations.

use std::fmt;

use crate::scalar::ScalarType;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operation received an array of the wrong type.
    TypeMismatch {
        /// What the operation expected.
        expected: ScalarType,
        /// What it actually got.
        found: ScalarType,
    },
    /// An operation received arrays of incompatible lengths.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A compressed block failed to decode.
    CorruptBlock(String),
    /// A codec cannot represent the given data (e.g. dictionary overflow).
    CodecUnsupported(String),
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A spill-run file operation failed (the message carries the OS
    /// error; kept as a string so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StorageError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            StorageError::CorruptBlock(msg) => write!(f, "corrupt block: {msg}"),
            StorageError::CodecUnsupported(msg) => write!(f, "codec unsupported: {msg}"),
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::Io(msg) => write!(f, "spill i/o: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StorageError::TypeMismatch {
            expected: ScalarType::I64,
            found: ScalarType::F64,
        };
        assert!(err.to_string().contains("i64"));
        assert!(err.to_string().contains("f64"));

        let err = StorageError::OutOfBounds { index: 10, len: 4 };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains('4'));
    }
}
