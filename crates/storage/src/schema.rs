//! Fields, schemas, and simple in-memory tables.

use crate::array::Array;
use crate::chunk::Chunk;
use crate::error::StorageError;
use crate::scalar::ScalarType;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ScalarType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ScalarType) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> Result<&Field, StorageError> {
        self.index_of(name).map(|i| &self.fields[i])
    }
}

/// A dense, uncompressed in-memory table (one array per column).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Array>,
    rows: usize,
}

impl Table {
    /// Build a table, validating arity, types and lengths.
    pub fn new(schema: Schema, columns: Vec<Array>) -> Result<Table, StorageError> {
        if schema.len() != columns.len() {
            return Err(StorageError::LengthMismatch {
                left: schema.len(),
                right: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Array::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.ty != c.scalar_type() {
                return Err(StorageError::TypeMismatch {
                    expected: f.ty,
                    found: c.scalar_type(),
                });
            }
            if c.len() != rows {
                return Err(StorageError::LengthMismatch {
                    left: rows,
                    right: c.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> Result<&Array, StorageError> {
        self.columns.get(i).ok_or(StorageError::OutOfBounds {
            index: i,
            len: self.columns.len(),
        })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Array, StorageError> {
        self.column(self.schema.index_of(name)?)
    }

    /// All columns.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// Rows `[offset, offset+len)` as a new table (clamped at the tail).
    ///
    /// This is the morsel-slicing primitive of the parallel executor: a
    /// morsel is a fixed-size horizontal slice of a table, and workers
    /// operate on slices so their reads stay dense and cache-friendly.
    pub fn slice(&self, offset: usize, len: usize) -> Table {
        let columns: Vec<Array> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        let rows = columns.first().map_or(0, Array::len);
        Table {
            schema: self.schema.clone(),
            columns,
            rows,
        }
    }

    /// Read rows `[offset, offset+len)` of the named columns into a chunk.
    pub fn read_chunk(
        &self,
        names: &[&str],
        offset: usize,
        len: usize,
    ) -> Result<Chunk, StorageError> {
        let cols = names
            .iter()
            .map(|n| self.column_by_name(n).map(|c| c.slice(offset, len)))
            .collect::<Result<Vec<_>, _>>()?;
        Chunk::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("id", ScalarType::I64),
                Field::new("price", ScalarType::F64),
            ]),
            vec![
                Array::from(vec![1i64, 2, 3]),
                Array::from(vec![9.5, 8.0, 7.5]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Schema::new(vec![Field::new("id", ScalarType::I64)]);
        // Wrong arity.
        assert!(Table::new(schema.clone(), vec![]).is_err());
        // Wrong type.
        assert!(Table::new(schema.clone(), vec![Array::from(vec![1.0])]).is_err());
        // Ok.
        let t = Table::new(schema, vec![Array::from(vec![1i64])]).unwrap();
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let t = sample();
        assert_eq!(t.schema().index_of("price").unwrap(), 1);
        assert!(t.schema().index_of("nope").is_err());
        assert_eq!(
            t.column_by_name("id").unwrap(),
            &Array::from(vec![1i64, 2, 3])
        );
        assert_eq!(t.schema().field("price").unwrap().ty, ScalarType::F64);
    }

    #[test]
    fn slice_clamps_and_preserves_schema() {
        let t = sample();
        let s = t.slice(1, 10);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.schema(), t.schema());
        assert_eq!(s.column_by_name("id").unwrap(), &Array::from(vec![2i64, 3]));
        assert_eq!(t.slice(3, 5).rows(), 0);
        // Morsels tile the table exactly.
        let rows: usize = (0..t.rows()).step_by(2).map(|o| t.slice(o, 2).rows()).sum();
        assert_eq!(rows, t.rows());
    }

    #[test]
    fn read_chunk_slices_and_clamps() {
        let t = sample();
        let c = t.read_chunk(&["price", "id"], 1, 10).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.column(0).unwrap(), &Array::from(vec![8.0, 7.5]));
        assert_eq!(c.column(1).unwrap(), &Array::from(vec![2i64, 3]));
        assert!(t.read_chunk(&["nope"], 0, 1).is_err());
    }
}
