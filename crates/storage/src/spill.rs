//! Spill runs: append-only on-disk row files for out-of-core operators.
//!
//! When an operator's working set outgrows its [`memory budget`], the
//! out-of-core layer (see `adaptvm_relational::spill` and
//! `adaptvm_relational::sort`) writes the overflowing partition to a
//! **run**: an append-only file of rows in a simple columnar frame codec,
//! read back either whole, frame-by-frame (the streaming path recursion
//! uses to re-partition a run without materializing it), or — for sorted
//! runs feeding a k-way merge — row-by-row through a [`RunCursor`].
//!
//! ## One codec, schema-described
//!
//! Every run is described by a [`RunSchema`]: an optional arena-backed
//! Utf8 key column followed by `int_cols` columnar `i64` columns. One
//! frame is
//!
//! ```text
//! [u32 rows]
//! [u32 key bytes][rows×4 key lengths][key arena]   (only with a Utf8 key)
//! [rows×8 col 0][rows×8 col 1]…                    (int_cols times)
//! ```
//!
//! little-endian throughout. The generic [`RunWriter`]/[`RunReader`] pair
//! owns **all** header, ceiling, and truncation handling — the frame-row
//! and key-byte ceilings are enforced symmetrically on write and on read,
//! so a corrupt header can never trigger an unbounded allocation (readers
//! fail typed instead), and Utf8 key bytes are validated once, on decode.
//!
//! Two thin typed wrappers cover the engine's row shapes (their on-disk
//! format is exactly the generic codec's):
//!
//! * [`IntRunWriter`]/[`IntRun`] — `(i64 key, i64 value)` rows
//!   (`RunSchema::ints(2)`).
//! * [`StrRunWriter`]/[`StrRun`] — `(Utf8 key, i64 value)` rows
//!   (`RunSchema::utf8_plus_ints(1)`), with the key bytes kept
//!   **arena-backed** on both sides: [`StrBatch`] hands keys back as
//!   slices into one contiguous buffer — no per-key allocation on either
//!   side of the disk.
//!
//! Runs live in a [`SpillDir`], a process-unique temporary directory
//! removed (best-effort) on drop. All I/O errors surface as
//! [`StorageError::Io`].
//!
//! [`memory budget`]: https://docs.rs/adaptvm-parallel

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::error::StorageError;

/// Process-wide counter making [`SpillDir`] names unique.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Spill I/O observability
// ---------------------------------------------------------------------------

/// One spill I/O event: a frame written to or read from a run file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillIoEvent {
    /// `true` for a frame write, `false` for a frame read.
    pub write: bool,
    /// Encoded frame bytes moved (header included).
    pub bytes: u64,
    /// Rows in the frame.
    pub rows: u64,
}

/// A snapshot of the process-wide spill I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillIoCounters {
    /// Encoded bytes written to run files.
    pub bytes_written: u64,
    /// Encoded bytes read back from run files.
    pub bytes_read: u64,
}

static SPILL_BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
static SPILL_BYTES_READ: AtomicU64 = AtomicU64::new(0);

type IoHook = Box<dyn Fn(SpillIoEvent) + Send + Sync>;

static IO_HOOK: OnceLock<IoHook> = OnceLock::new();

/// Install the process-wide spill I/O event hook (the tracing subsystem
/// in `adaptvm_parallel` routes events into the current query's trace).
/// The first installation wins; returns `false` if one is installed.
pub fn install_io_hook(hook: IoHook) -> bool {
    IO_HOOK.set(hook).is_ok()
}

/// The process-wide spill I/O byte totals (monotonic since process
/// start). Always on: each frame costs one relaxed `fetch_add`.
pub fn io_counters() -> SpillIoCounters {
    SpillIoCounters {
        bytes_written: SPILL_BYTES_WRITTEN.load(Ordering::Relaxed),
        bytes_read: SPILL_BYTES_READ.load(Ordering::Relaxed),
    }
}

/// Count one frame of spill I/O and forward it to the hook, if any.
fn io_event(ev: SpillIoEvent) {
    if ev.write {
        SPILL_BYTES_WRITTEN.fetch_add(ev.bytes, Ordering::Relaxed);
    } else {
        SPILL_BYTES_READ.fetch_add(ev.bytes, Ordering::Relaxed);
    }
    if let Some(hook) = IO_HOOK.get() {
        hook(ev);
    }
}

/// Sanity ceiling on rows per frame, enforced by the writers and trusted
/// by the readers: a corrupt frame header can then never trigger an
/// unbounded allocation (readers fail typed instead).
pub const MAX_FRAME_ROWS: usize = 1 << 22;
/// Sanity ceiling on one frame's key-arena bytes (same contract).
pub const MAX_FRAME_KEY_BYTES: usize = 1 << 30;

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{what} {}: {e}", path.display()))
}

/// A temporary directory holding spill runs, removed (best-effort) when
/// dropped.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    seq: AtomicU64,
}

impl SpillDir {
    /// Create a fresh spill directory under the system temp dir.
    pub fn new() -> Result<SpillDir, StorageError> {
        SpillDir::under(&std::env::temp_dir())
    }

    /// Create a fresh spill directory under `parent`.
    pub fn under(parent: &Path) -> Result<SpillDir, StorageError> {
        let name = format!(
            "adaptvm-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = parent.join(name);
        fs::create_dir_all(&path).map_err(|e| io_err("creating spill dir", &path, e))?;
        Ok(SpillDir {
            path,
            seq: AtomicU64::new(0),
        })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh, unique run-file path inside the directory, tagged with
    /// `label` for debuggability.
    pub fn run_path(&self, label: &str) -> PathBuf {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("{label}-{n}.run"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Shared low-level helpers
// ---------------------------------------------------------------------------

fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn write_i64s(buf: &mut Vec<u8>, vals: &[i64]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read exactly `buf.len()` bytes, or report a clean EOF (`Ok(false)`)
/// when the reader is exhausted *before the first byte*.
fn read_exact_or_eof(
    reader: &mut BufReader<File>,
    path: &Path,
    buf: &mut [u8],
) -> Result<bool, StorageError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(StorageError::Io(format!(
                    "truncated spill run {}: unexpected EOF",
                    path.display()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("reading spill run", path, e)),
        }
    }
    Ok(true)
}

fn read_u32(reader: &mut BufReader<File>, path: &Path) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    if !read_exact_or_eof(reader, path, &mut b)? {
        return Err(StorageError::Io(format!(
            "truncated spill run {}: missing frame field",
            path.display()
        )));
    }
    Ok(u32::from_le_bytes(b))
}

fn decode_i64s(bytes: &[u8]) -> Vec<i64> {
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect()
}

fn delete_file(path: &Path) {
    let _ = fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// The schema-described generic codec
// ---------------------------------------------------------------------------

/// The row shape of a run: an optional arena-backed Utf8 key column
/// followed by `int_cols` columnar `i64` columns. The schema fixes the
/// frame layout, so a reader opened with the writer's schema decodes the
/// same frames — the typed wrappers ([`IntRun`], [`StrRun`]) are nothing
/// but fixed schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSchema {
    int_cols: usize,
    utf8_key: bool,
}

impl RunSchema {
    /// A schema of `int_cols` columnar `i64` columns, no Utf8 key.
    pub const fn ints(int_cols: usize) -> RunSchema {
        RunSchema {
            int_cols,
            utf8_key: false,
        }
    }

    /// A schema of one arena-backed Utf8 key column plus `int_cols`
    /// columnar `i64` columns.
    pub const fn utf8_plus_ints(int_cols: usize) -> RunSchema {
        RunSchema {
            int_cols,
            utf8_key: true,
        }
    }

    /// Number of `i64` columns.
    pub fn int_cols(&self) -> usize {
        self.int_cols
    }

    /// Whether rows carry a Utf8 key column.
    pub fn utf8_key(&self) -> bool {
        self.utf8_key
    }
}

/// One decoded frame of a generic [`Run`]: the Utf8 key column (when the
/// schema has one) as cumulative offsets into one contiguous arena, plus
/// the `i64` columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBatch {
    /// `rows + 1` cumulative key-byte offsets into [`RunBatch::arena`]
    /// (empty when the schema has no Utf8 key, or the batch no rows).
    pub offsets: Vec<u32>,
    /// The key-bytes arena.
    pub arena: Vec<u8>,
    /// The `i64` columns, each of `rows` entries.
    pub cols: Vec<Vec<i64>>,
}

impl RunBatch {
    /// Rows in the batch.
    pub fn rows(&self) -> usize {
        if self.offsets.is_empty() {
            self.cols.first().map_or(0, Vec::len)
        } else {
            self.offsets.len() - 1
        }
    }

    /// Key `i` as a string slice into the arena (requires a Utf8 schema;
    /// validated on decode).
    pub fn key(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.arena[lo..hi]).expect("validated on decode")
    }
}

/// Appends frames of schema-described rows to a run file. All header and
/// ceiling handling lives here, shared by every run type.
#[derive(Debug)]
pub struct RunWriter {
    file: BufWriter<File>,
    path: PathBuf,
    schema: RunSchema,
    rows: u64,
    bytes: u64,
    /// Reusable frame-encoding buffer (no per-append allocation in
    /// steady state).
    frame: Vec<u8>,
}

impl RunWriter {
    /// Create (truncating) the run file at `path`.
    pub fn create(path: PathBuf, schema: RunSchema) -> Result<RunWriter, StorageError> {
        let file = File::create(&path).map_err(|e| io_err("creating spill run", &path, e))?;
        Ok(RunWriter {
            file: BufWriter::new(file),
            path,
            schema,
            rows: 0,
            bytes: 0,
            frame: Vec::new(),
        })
    }

    /// The schema frames are encoded under.
    pub fn schema(&self) -> RunSchema {
        self.schema
    }

    /// Append one frame from borrowed columns: the Utf8 key column as
    /// `(cumulative offsets, arena)` when the schema has one, plus the
    /// `i64` columns in schema order. Empty frames are skipped; unequal
    /// column lengths are a [`StorageError::LengthMismatch`]; frames over
    /// [`MAX_FRAME_ROWS`] rows or [`MAX_FRAME_KEY_BYTES`] key bytes must
    /// be split into several appends.
    pub fn append_cols(
        &mut self,
        utf8: Option<(&[u32], &[u8])>,
        cols: &[&[i64]],
    ) -> Result<(), StorageError> {
        if cols.len() != self.schema.int_cols || utf8.is_some() != self.schema.utf8_key {
            return Err(StorageError::Io(format!(
                "spill frame shape ({} int cols, utf8 {}) does not match the run schema \
                 ({} int cols, utf8 {})",
                cols.len(),
                utf8.is_some(),
                self.schema.int_cols,
                self.schema.utf8_key
            )));
        }
        let rows = match (utf8, cols.first()) {
            (Some((offsets, _)), _) => offsets.len().saturating_sub(1),
            (None, Some(c)) => c.len(),
            (None, None) => 0,
        };
        for c in cols {
            if c.len() != rows {
                return Err(StorageError::LengthMismatch {
                    left: rows,
                    right: c.len(),
                });
            }
        }
        let key_bytes = utf8.map_or(0, |(_, arena)| arena.len());
        if rows > MAX_FRAME_ROWS || key_bytes > MAX_FRAME_KEY_BYTES {
            return Err(StorageError::Io(format!(
                "spill frame of {rows} rows / {key_bytes} key bytes exceeds the frame \
                 ceilings ({MAX_FRAME_ROWS} rows, {MAX_FRAME_KEY_BYTES} bytes); \
                 split into smaller appends"
            )));
        }
        if rows == 0 {
            return Ok(());
        }
        self.frame.clear();
        write_u32(&mut self.frame, rows as u32);
        if let Some((offsets, arena)) = utf8 {
            if offsets[rows] as usize != arena.len() {
                return Err(StorageError::Io(format!(
                    "spill frame offsets end at {}, arena holds {} bytes",
                    offsets[rows],
                    arena.len()
                )));
            }
            write_u32(&mut self.frame, arena.len() as u32);
            for i in 0..rows {
                write_u32(&mut self.frame, offsets[i + 1] - offsets[i]);
            }
            self.frame.extend_from_slice(arena);
        }
        for c in cols {
            write_i64s(&mut self.frame, c);
        }
        self.file
            .write_all(&self.frame)
            .map_err(|e| io_err("writing spill run", &self.path, e))?;
        self.rows += rows as u64;
        self.bytes += self.frame.len() as u64;
        io_event(SpillIoEvent {
            write: true,
            bytes: self.frame.len() as u64,
            rows: rows as u64,
        });
        Ok(())
    }

    /// [`RunWriter::append_cols`] from an owned [`RunBatch`].
    pub fn append(&mut self, batch: &RunBatch) -> Result<(), StorageError> {
        let cols: Vec<&[i64]> = batch.cols.iter().map(Vec::as_slice).collect();
        let utf8 = self
            .schema
            .utf8_key
            .then_some((batch.offsets.as_slice(), batch.arena.as_slice()));
        self.append_cols(utf8, &cols)
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> Result<Run, StorageError> {
        self.file
            .flush()
            .map_err(|e| io_err("flushing spill run", &self.path, e))?;
        Ok(Run {
            path: self.path,
            schema: self.schema,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed schema-described run on disk.
#[derive(Debug)]
pub struct Run {
    path: PathBuf,
    schema: RunSchema,
    rows: u64,
    bytes: u64,
}

impl Run {
    /// The schema frames were encoded under.
    pub fn schema(&self) -> RunSchema {
        self.schema
    }

    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Encoded bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Open the run for frame-by-frame streaming.
    pub fn reader(&self) -> Result<RunReader, StorageError> {
        let file =
            File::open(&self.path).map_err(|e| io_err("opening spill run", &self.path, e))?;
        Ok(RunReader {
            file: BufReader::new(file),
            path: self.path.clone(),
            schema: self.schema,
            body: Vec::new(),
        })
    }

    /// Delete the file early (the owning [`SpillDir`] would otherwise
    /// clean it up on drop). Best-effort.
    pub fn delete(self) {
        delete_file(&self.path);
    }
}

/// Streams the frames of a [`Run`] in append order. All ceiling,
/// truncation, and Utf8 validation lives here, shared by every run type.
#[derive(Debug)]
pub struct RunReader {
    file: BufReader<File>,
    path: PathBuf,
    schema: RunSchema,
    /// Reusable frame-body buffer.
    body: Vec<u8>,
}

impl RunReader {
    /// The next frame, or `None` at end of run. Key bytes (when the
    /// schema has a Utf8 column) are validated here, so
    /// [`RunBatch::key`] is infallible.
    pub fn next_frame(&mut self) -> Result<Option<RunBatch>, StorageError> {
        let mut header = [0u8; 4];
        if !read_exact_or_eof(&mut self.file, &self.path, &mut header)? {
            return Ok(None);
        }
        let rows = u32::from_le_bytes(header) as usize;
        let key_bytes = if self.schema.utf8_key {
            read_u32(&mut self.file, &self.path)? as usize
        } else {
            0
        };
        if rows > MAX_FRAME_ROWS || key_bytes > MAX_FRAME_KEY_BYTES {
            return Err(StorageError::Io(format!(
                "corrupt spill run {}: frame header claims {rows} rows / {key_bytes} key \
                 bytes (max {MAX_FRAME_ROWS} / {MAX_FRAME_KEY_BYTES})",
                self.path.display()
            )));
        }
        let utf8_bytes = if self.schema.utf8_key {
            rows * 4 + key_bytes
        } else {
            0
        };
        let body_len = utf8_bytes + rows * 8 * self.schema.int_cols;
        self.body.resize(body_len, 0);
        if !read_exact_or_eof(&mut self.file, &self.path, &mut self.body)? && body_len > 0 {
            return Err(StorageError::Io(format!(
                "truncated spill run {}: missing frame body",
                self.path.display()
            )));
        }
        let header_len = if self.schema.utf8_key { 8 } else { 4 };
        io_event(SpillIoEvent {
            write: false,
            bytes: (header_len + body_len) as u64,
            rows: rows as u64,
        });
        let (offsets, arena) = if self.schema.utf8_key {
            let (lens, arena) = self.body[..utf8_bytes].split_at(rows * 4);
            let mut offsets = Vec::with_capacity(rows + 1);
            offsets.push(0u32);
            let mut at = 0u32;
            for len in lens.chunks_exact(4) {
                at += u32::from_le_bytes(len.try_into().expect("chunks_exact(4)"));
                offsets.push(at);
            }
            if at as usize != key_bytes {
                return Err(StorageError::Io(format!(
                    "corrupt spill run {}: key lengths sum to {at}, arena holds {key_bytes}",
                    self.path.display()
                )));
            }
            (offsets, arena.to_vec())
        } else {
            (Vec::new(), Vec::new())
        };
        let mut cols = Vec::with_capacity(self.schema.int_cols);
        for c in 0..self.schema.int_cols {
            let lo = utf8_bytes + c * rows * 8;
            cols.push(decode_i64s(&self.body[lo..lo + rows * 8]));
        }
        if self.schema.utf8_key {
            for i in 0..rows {
                let lo = offsets[i] as usize;
                let hi = offsets[i + 1] as usize;
                std::str::from_utf8(&arena[lo..hi]).map_err(|e| {
                    StorageError::Io(format!(
                        "corrupt spill run {}: key {i} is not Utf8 ({e})",
                        self.path.display()
                    ))
                })?;
            }
        }
        Ok(Some(RunBatch {
            offsets,
            arena,
            cols,
        }))
    }
}

/// Streams the rows of a two-int-column [`Run`] one at a time, refilling
/// frame-by-frame — the cursor a k-way merge over sorted runs holds per
/// run (bounded memory: one frame per open run).
#[derive(Debug)]
pub struct RunCursor {
    reader: RunReader,
    keys: Vec<i64>,
    values: Vec<i64>,
    pos: usize,
}

impl RunCursor {
    /// The next `(col0, col1)` row in append order, or `None` at end of
    /// run.
    pub fn next_row(&mut self) -> Result<Option<(i64, i64)>, StorageError> {
        while self.pos >= self.keys.len() {
            match self.reader.next_frame()? {
                Some(mut batch) => {
                    self.values = batch.cols.pop().expect("ints(2) schema");
                    self.keys = batch.cols.pop().expect("ints(2) schema");
                    self.pos = 0;
                }
                None => return Ok(None),
            }
        }
        let row = (self.keys[self.pos], self.values[self.pos]);
        self.pos += 1;
        Ok(Some(row))
    }
}

// ---------------------------------------------------------------------------
// i64 runs (`RunSchema::ints(2)`)
// ---------------------------------------------------------------------------

/// Appends frames of `(i64 key, i64 value)` rows to a run file. A typed
/// wrapper over the generic codec with `RunSchema::ints(2)`.
#[derive(Debug)]
pub struct IntRunWriter {
    inner: RunWriter,
}

impl IntRunWriter {
    /// Create (truncating) the run file at `path`.
    pub fn create(path: PathBuf) -> Result<IntRunWriter, StorageError> {
        Ok(IntRunWriter {
            inner: RunWriter::create(path, RunSchema::ints(2))?,
        })
    }

    /// Append one frame. Empty frames are skipped; unequal column lengths
    /// are a [`StorageError::LengthMismatch`]; more than
    /// [`MAX_FRAME_ROWS`] rows must be split into several appends.
    pub fn append(&mut self, keys: &[i64], values: &[i64]) -> Result<(), StorageError> {
        self.inner.append_cols(None, &[keys, values])
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.inner.rows()
    }

    /// Flush and seal the run.
    pub fn finish(self) -> Result<IntRun, StorageError> {
        Ok(IntRun {
            inner: self.inner.finish()?,
        })
    }
}

/// A sealed `(i64, i64)` run on disk.
#[derive(Debug)]
pub struct IntRun {
    inner: Run,
}

impl IntRun {
    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.inner.rows()
    }

    /// Encoded bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    /// Open the run for frame-by-frame streaming.
    pub fn reader(&self) -> Result<IntRunReader, StorageError> {
        Ok(IntRunReader {
            inner: self.inner.reader()?,
        })
    }

    /// Open the run for row-by-row streaming (one resident frame).
    pub fn cursor(&self) -> Result<RunCursor, StorageError> {
        Ok(RunCursor {
            reader: self.inner.reader()?,
            keys: Vec::new(),
            values: Vec::new(),
            pos: 0,
        })
    }

    /// Read the whole run back as two columns (keys, values), in append
    /// order.
    pub fn read_all(&self) -> Result<(Vec<i64>, Vec<i64>), StorageError> {
        let mut keys = Vec::with_capacity(self.rows() as usize);
        let mut values = Vec::with_capacity(self.rows() as usize);
        let mut reader = self.reader()?;
        while let Some((k, v)) = reader.next_frame()? {
            keys.extend(k);
            values.extend(v);
        }
        Ok((keys, values))
    }

    /// Delete the file early (the owning [`SpillDir`] would otherwise
    /// clean it up on drop). Best-effort.
    pub fn delete(self) {
        self.inner.delete();
    }
}

/// Streams the frames of an [`IntRun`] in append order.
#[derive(Debug)]
pub struct IntRunReader {
    inner: RunReader,
}

impl IntRunReader {
    /// The next frame as (keys, values), or `None` at end of run.
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Result<Option<(Vec<i64>, Vec<i64>)>, StorageError> {
        Ok(self.inner.next_frame()?.map(|mut batch| {
            let values = batch.cols.pop().expect("ints(2) schema");
            let keys = batch.cols.pop().expect("ints(2) schema");
            (keys, values)
        }))
    }
}

// ---------------------------------------------------------------------------
// Utf8 runs (`RunSchema::utf8_plus_ints(1)`)
// ---------------------------------------------------------------------------

/// One decoded frame of a [`StrRun`]: keys as slices into one contiguous
/// arena (offsets are cumulative, `offsets[0] == 0`), values columnar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrBatch {
    /// `rows + 1` cumulative key-byte offsets into [`StrBatch::arena`].
    pub offsets: Vec<u32>,
    /// The key-bytes arena.
    pub arena: Vec<u8>,
    /// The value column.
    pub values: Vec<i64>,
}

impl StrBatch {
    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Key `i` as a string slice into the arena.
    pub fn key(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.arena[lo..hi]).expect("validated on decode")
    }

    /// Append one row. Panics if the key arena would exceed u32
    /// addressing (the codec's offset width) — the same bound the writer
    /// and the hash tables enforce, checked here before offsets could
    /// silently wrap.
    pub fn push(&mut self, key: &str, value: i64) {
        assert!(
            self.arena.len() + key.len() <= u32::MAX as usize,
            "StrBatch key arena exceeds u32 addressing ({} + {} bytes)",
            self.arena.len(),
            key.len()
        );
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.arena.extend_from_slice(key.as_bytes());
        self.offsets.push(self.arena.len() as u32);
        self.values.push(value);
    }

    /// Reset to the empty batch, retaining the buffers' capacity (the
    /// scratch-arena reuse path).
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.arena.clear();
        self.values.clear();
    }
}

/// Appends frames of `(Utf8 key, i64 value)` rows to a run file. A typed
/// wrapper over the generic codec with `RunSchema::utf8_plus_ints(1)`.
#[derive(Debug)]
pub struct StrRunWriter {
    inner: RunWriter,
}

impl StrRunWriter {
    /// Create (truncating) the run file at `path`.
    pub fn create(path: PathBuf) -> Result<StrRunWriter, StorageError> {
        Ok(StrRunWriter {
            inner: RunWriter::create(path, RunSchema::utf8_plus_ints(1))?,
        })
    }

    /// Append one arena-backed frame. Empty frames are skipped; frames
    /// over [`MAX_FRAME_ROWS`] rows or [`MAX_FRAME_KEY_BYTES`] key bytes
    /// must be split into several appends.
    pub fn append(&mut self, batch: &StrBatch) -> Result<(), StorageError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.inner
            .append_cols(Some((&batch.offsets, &batch.arena)), &[&batch.values])
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.inner.rows()
    }

    /// Flush and seal the run.
    pub fn finish(self) -> Result<StrRun, StorageError> {
        Ok(StrRun {
            inner: self.inner.finish()?,
        })
    }
}

/// A sealed `(Utf8, i64)` run on disk.
#[derive(Debug)]
pub struct StrRun {
    inner: Run,
}

impl StrRun {
    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.inner.rows()
    }

    /// Encoded bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    /// Open the run for frame-by-frame streaming.
    pub fn reader(&self) -> Result<StrRunReader, StorageError> {
        Ok(StrRunReader {
            inner: self.inner.reader()?,
        })
    }

    /// Read the whole run back as one arena-backed batch, in append
    /// order.
    pub fn read_all(&self) -> Result<StrBatch, StorageError> {
        let mut all = StrBatch::default();
        let mut reader = self.reader()?;
        while let Some(batch) = reader.next_frame()? {
            for i in 0..batch.len() {
                all.push(batch.key(i), batch.values[i]);
            }
        }
        Ok(all)
    }

    /// Delete the file early. Best-effort.
    pub fn delete(self) {
        self.inner.delete();
    }
}

/// Streams the frames of a [`StrRun`] in append order.
#[derive(Debug)]
pub struct StrRunReader {
    inner: RunReader,
}

impl StrRunReader {
    /// The next frame, or `None` at end of run. Key bytes are validated
    /// as Utf8 on decode, so [`StrBatch::key`] is infallible.
    pub fn next_frame(&mut self) -> Result<Option<StrBatch>, StorageError> {
        Ok(self.inner.next_frame()?.map(|mut batch| StrBatch {
            offsets: std::mem::take(&mut batch.offsets),
            arena: std::mem::take(&mut batch.arena),
            values: batch.cols.pop().expect("utf8_plus_ints(1) schema"),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_run_roundtrips_in_append_order() {
        let dir = SpillDir::new().unwrap();
        let mut w = IntRunWriter::create(dir.run_path("t")).unwrap();
        w.append(&[1, 2, 3], &[10, 20, 30]).unwrap();
        w.append(&[], &[]).unwrap(); // skipped
        w.append(&[-4], &[i64::MIN]).unwrap();
        assert_eq!(w.rows(), 4);
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 4);
        assert!(run.bytes() > 0);
        let (k, v) = run.read_all().unwrap();
        assert_eq!(k, vec![1, 2, 3, -4]);
        assert_eq!(v, vec![10, 20, 30, i64::MIN]);
        // Streaming sees the two non-empty frames.
        let mut r = run.reader().unwrap();
        assert_eq!(r.next_frame().unwrap().unwrap().0, vec![1, 2, 3]);
        assert_eq!(r.next_frame().unwrap().unwrap().0, vec![-4]);
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn int_writer_rejects_unequal_columns() {
        let dir = SpillDir::new().unwrap();
        let mut w = IntRunWriter::create(dir.run_path("t")).unwrap();
        assert_eq!(
            w.append(&[1], &[1, 2]).unwrap_err(),
            StorageError::LengthMismatch { left: 1, right: 2 }
        );
    }

    #[test]
    fn run_cursor_streams_rows_across_frames() {
        let dir = SpillDir::new().unwrap();
        let mut w = IntRunWriter::create(dir.run_path("c")).unwrap();
        w.append(&[1, 2], &[10, 20]).unwrap();
        w.append(&[3], &[30]).unwrap();
        let run = w.finish().unwrap();
        let mut cur = run.cursor().unwrap();
        assert_eq!(cur.next_row().unwrap(), Some((1, 10)));
        assert_eq!(cur.next_row().unwrap(), Some((2, 20)));
        assert_eq!(cur.next_row().unwrap(), Some((3, 30)));
        assert_eq!(cur.next_row().unwrap(), None);
        assert_eq!(cur.next_row().unwrap(), None, "EOF is sticky");
    }

    #[test]
    fn generic_run_roundtrips_wide_schema() {
        // Three int columns plus a Utf8 key: a shape no typed wrapper
        // covers — the generic codec must handle it end to end.
        let dir = SpillDir::new().unwrap();
        let schema = RunSchema::utf8_plus_ints(3);
        let mut w = RunWriter::create(dir.run_path("wide"), schema).unwrap();
        assert_eq!(w.schema(), schema);
        w.append_cols(
            Some((&[0, 2, 2, 5], b"abcde")),
            &[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]],
        )
        .unwrap();
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 3);
        assert_eq!(run.schema(), schema);
        let mut r = run.reader().unwrap();
        let batch = r.next_frame().unwrap().unwrap();
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.key(0), "ab");
        assert_eq!(batch.key(1), "");
        assert_eq!(batch.key(2), "cde");
        assert_eq!(
            batch.cols,
            vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]
        );
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn generic_writer_rejects_schema_shape_mismatch() {
        let dir = SpillDir::new().unwrap();
        let mut w = RunWriter::create(dir.run_path("shape"), RunSchema::ints(2)).unwrap();
        // Wrong column count.
        assert!(matches!(
            w.append_cols(None, &[&[1]]).unwrap_err(),
            StorageError::Io(_)
        ));
        // Utf8 column against an ints-only schema.
        assert!(matches!(
            w.append_cols(Some((&[0, 1], b"x")), &[&[1], &[2]])
                .unwrap_err(),
            StorageError::Io(_)
        ));
    }

    #[test]
    fn str_run_roundtrips_arena_backed() {
        let dir = SpillDir::new().unwrap();
        let mut batch = StrBatch::default();
        batch.push("alpha", 1);
        batch.push("", 2); // empty key is legal
        batch.push("βeta", 3); // multi-byte Utf8
        let mut w = StrRunWriter::create(dir.run_path("s")).unwrap();
        w.append(&batch).unwrap();
        w.append(&StrBatch::default()).unwrap(); // skipped
        let mut second = StrBatch::default();
        second.push("tail", -9);
        w.append(&second).unwrap();
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 4);
        let all = run.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.key(0), "alpha");
        assert_eq!(all.key(1), "");
        assert_eq!(all.key(2), "βeta");
        assert_eq!(all.key(3), "tail");
        assert_eq!(all.values, vec![1, 2, 3, -9]);
    }

    #[test]
    fn spill_dir_removes_itself() {
        let path = {
            let dir = SpillDir::new().unwrap();
            let mut w = IntRunWriter::create(dir.run_path("x")).unwrap();
            w.append(&[1], &[1]).unwrap();
            w.finish().unwrap();
            assert!(dir.path().exists());
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "drop removes the spill dir");
    }

    #[test]
    fn oversized_frame_header_fails_typed_instead_of_allocating() {
        let dir = SpillDir::new().unwrap();
        let path = dir.run_path("bogus");
        let mut w = IntRunWriter::create(path.clone()).unwrap();
        w.append(&[1], &[1]).unwrap();
        let run = w.finish().unwrap();
        // Corrupt the header to claim u32::MAX rows: the reader must fail
        // typed, not attempt a ~64 GiB allocation.
        let mut data = fs::read(&path).unwrap();
        data[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &data).unwrap();
        let err = run.read_all().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
        // And the writers enforce the same ceiling symmetrically.
        let mut w = IntRunWriter::create(dir.run_path("big")).unwrap();
        let too_many = vec![0i64; MAX_FRAME_ROWS + 1];
        assert!(matches!(
            w.append(&too_many, &too_many).unwrap_err(),
            StorageError::Io(_)
        ));
    }

    #[test]
    fn truncated_run_reports_io_error() {
        let dir = SpillDir::new().unwrap();
        let path = dir.run_path("trunc");
        let mut w = IntRunWriter::create(path.clone()).unwrap();
        w.append(&[1, 2, 3, 4], &[1, 2, 3, 4]).unwrap();
        let run = w.finish().unwrap();
        // Chop the file mid-frame.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 5]).unwrap();
        let err = run.read_all().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    }
}
