//! Spill runs: append-only on-disk row files for out-of-core operators.
//!
//! When a build side outgrows its [`memory budget`], the grace-hash join
//! (see `adaptvm_relational::spill`) writes the overflowing partition to a
//! **run**: an append-only file of `(key, value)` rows in a simple
//! columnar frame codec, read back either whole or frame-by-frame (the
//! streaming path recursion uses to re-partition a run without
//! materializing it).
//!
//! Two codecs cover the engine's join key types:
//!
//! * [`IntRunWriter`]/[`IntRun`] — `i64` keys and `i64` values. Frame:
//!   `[u32 rows][rows×8 key bytes][rows×8 value bytes]`, little-endian.
//! * [`StrRunWriter`]/[`StrRun`] — Utf8 keys and `i64` values, with the
//!   key bytes kept **arena-backed** on both sides: a frame is
//!   `[u32 rows][u32 key bytes][rows×4 key lengths][key arena][rows×8
//!   values]`, and [`StrBatch`] hands keys back as slices into one
//!   contiguous buffer — no per-key allocation on either side of the
//!   disk.
//!
//! Runs live in a [`SpillDir`], a process-unique temporary directory
//! removed (best-effort) on drop. All I/O errors surface as
//! [`StorageError::Io`].
//!
//! [`memory budget`]: https://docs.rs/adaptvm-parallel

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StorageError;

/// Process-wide counter making [`SpillDir`] names unique.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Sanity ceiling on rows per frame, enforced by the writers and trusted
/// by the readers: a corrupt frame header can then never trigger an
/// unbounded allocation (readers fail typed instead).
pub const MAX_FRAME_ROWS: usize = 1 << 22;
/// Sanity ceiling on one frame's key-arena bytes (same contract).
pub const MAX_FRAME_KEY_BYTES: usize = 1 << 30;

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{what} {}: {e}", path.display()))
}

/// A temporary directory holding spill runs, removed (best-effort) when
/// dropped.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    seq: AtomicU64,
}

impl SpillDir {
    /// Create a fresh spill directory under the system temp dir.
    pub fn new() -> Result<SpillDir, StorageError> {
        SpillDir::under(&std::env::temp_dir())
    }

    /// Create a fresh spill directory under `parent`.
    pub fn under(parent: &Path) -> Result<SpillDir, StorageError> {
        let name = format!(
            "adaptvm-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = parent.join(name);
        fs::create_dir_all(&path).map_err(|e| io_err("creating spill dir", &path, e))?;
        Ok(SpillDir {
            path,
            seq: AtomicU64::new(0),
        })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh, unique run-file path inside the directory, tagged with
    /// `label` for debuggability.
    pub fn run_path(&self, label: &str) -> PathBuf {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("{label}-{n}.run"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Shared low-level helpers
// ---------------------------------------------------------------------------

fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn write_i64s(buf: &mut Vec<u8>, vals: &[i64]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read exactly `buf.len()` bytes, or report a clean EOF (`Ok(false)`)
/// when the reader is exhausted *before the first byte*.
fn read_exact_or_eof(
    reader: &mut BufReader<File>,
    path: &Path,
    buf: &mut [u8],
) -> Result<bool, StorageError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(StorageError::Io(format!(
                    "truncated spill run {}: unexpected EOF",
                    path.display()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("reading spill run", path, e)),
        }
    }
    Ok(true)
}

fn read_u32(reader: &mut BufReader<File>, path: &Path) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    if !read_exact_or_eof(reader, path, &mut b)? {
        return Err(StorageError::Io(format!(
            "truncated spill run {}: missing frame field",
            path.display()
        )));
    }
    Ok(u32::from_le_bytes(b))
}

fn decode_i64s(bytes: &[u8]) -> Vec<i64> {
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect()
}

fn delete_file(path: &Path) {
    let _ = fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// i64 runs
// ---------------------------------------------------------------------------

/// Appends frames of `(i64 key, i64 value)` rows to a run file.
#[derive(Debug)]
pub struct IntRunWriter {
    file: BufWriter<File>,
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl IntRunWriter {
    /// Create (truncating) the run file at `path`.
    pub fn create(path: PathBuf) -> Result<IntRunWriter, StorageError> {
        let file = File::create(&path).map_err(|e| io_err("creating spill run", &path, e))?;
        Ok(IntRunWriter {
            file: BufWriter::new(file),
            path,
            rows: 0,
            bytes: 0,
        })
    }

    /// Append one frame. Empty frames are skipped; unequal column lengths
    /// are a [`StorageError::LengthMismatch`]; more than
    /// [`MAX_FRAME_ROWS`] rows must be split into several appends.
    pub fn append(&mut self, keys: &[i64], values: &[i64]) -> Result<(), StorageError> {
        if keys.len() != values.len() {
            return Err(StorageError::LengthMismatch {
                left: keys.len(),
                right: values.len(),
            });
        }
        if keys.len() > MAX_FRAME_ROWS {
            return Err(StorageError::Io(format!(
                "spill frame of {} rows exceeds MAX_FRAME_ROWS ({MAX_FRAME_ROWS}); \
                 split into smaller appends",
                keys.len()
            )));
        }
        if keys.is_empty() {
            return Ok(());
        }
        let mut frame = Vec::with_capacity(4 + keys.len() * 16);
        write_u32(&mut frame, keys.len() as u32);
        write_i64s(&mut frame, keys);
        write_i64s(&mut frame, values);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("writing spill run", &self.path, e))?;
        self.rows += keys.len() as u64;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> Result<IntRun, StorageError> {
        self.file
            .flush()
            .map_err(|e| io_err("flushing spill run", &self.path, e))?;
        Ok(IntRun {
            path: self.path,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed `(i64, i64)` run on disk.
#[derive(Debug)]
pub struct IntRun {
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl IntRun {
    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Encoded bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Open the run for frame-by-frame streaming.
    pub fn reader(&self) -> Result<IntRunReader, StorageError> {
        let file =
            File::open(&self.path).map_err(|e| io_err("opening spill run", &self.path, e))?;
        Ok(IntRunReader {
            file: BufReader::new(file),
            path: self.path.clone(),
        })
    }

    /// Read the whole run back as two columns (keys, values), in append
    /// order.
    pub fn read_all(&self) -> Result<(Vec<i64>, Vec<i64>), StorageError> {
        let mut keys = Vec::with_capacity(self.rows as usize);
        let mut values = Vec::with_capacity(self.rows as usize);
        let mut reader = self.reader()?;
        while let Some((k, v)) = reader.next_frame()? {
            keys.extend(k);
            values.extend(v);
        }
        Ok((keys, values))
    }

    /// Delete the file early (the owning [`SpillDir`] would otherwise
    /// clean it up on drop). Best-effort.
    pub fn delete(self) {
        delete_file(&self.path);
    }
}

/// Streams the frames of an [`IntRun`] in append order.
#[derive(Debug)]
pub struct IntRunReader {
    file: BufReader<File>,
    path: PathBuf,
}

impl IntRunReader {
    /// The next frame as (keys, values), or `None` at end of run.
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Result<Option<(Vec<i64>, Vec<i64>)>, StorageError> {
        let mut header = [0u8; 4];
        if !read_exact_or_eof(&mut self.file, &self.path, &mut header)? {
            return Ok(None);
        }
        let rows = u32::from_le_bytes(header) as usize;
        if rows > MAX_FRAME_ROWS {
            return Err(StorageError::Io(format!(
                "corrupt spill run {}: frame header claims {rows} rows (max {MAX_FRAME_ROWS})",
                self.path.display()
            )));
        }
        let mut body = vec![0u8; rows * 16];
        if !read_exact_or_eof(&mut self.file, &self.path, &mut body)? && rows > 0 {
            return Err(StorageError::Io(format!(
                "truncated spill run {}: missing frame body",
                self.path.display()
            )));
        }
        let keys = decode_i64s(&body[..rows * 8]);
        let values = decode_i64s(&body[rows * 8..]);
        Ok(Some((keys, values)))
    }
}

// ---------------------------------------------------------------------------
// Utf8 runs
// ---------------------------------------------------------------------------

/// One decoded frame of a [`StrRun`]: keys as slices into one contiguous
/// arena (offsets are cumulative, `offsets[0] == 0`), values columnar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrBatch {
    /// `rows + 1` cumulative key-byte offsets into [`StrBatch::arena`].
    pub offsets: Vec<u32>,
    /// The key-bytes arena.
    pub arena: Vec<u8>,
    /// The value column.
    pub values: Vec<i64>,
}

impl StrBatch {
    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Key `i` as a string slice into the arena.
    pub fn key(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.arena[lo..hi]).expect("validated on decode")
    }

    /// Append one row. Panics if the key arena would exceed u32
    /// addressing (the codec's offset width) — the same bound the writer
    /// and the hash tables enforce, checked here before offsets could
    /// silently wrap.
    pub fn push(&mut self, key: &str, value: i64) {
        assert!(
            self.arena.len() + key.len() <= u32::MAX as usize,
            "StrBatch key arena exceeds u32 addressing ({} + {} bytes)",
            self.arena.len(),
            key.len()
        );
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.arena.extend_from_slice(key.as_bytes());
        self.offsets.push(self.arena.len() as u32);
        self.values.push(value);
    }
}

/// Appends frames of `(Utf8 key, i64 value)` rows to a run file.
#[derive(Debug)]
pub struct StrRunWriter {
    file: BufWriter<File>,
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl StrRunWriter {
    /// Create (truncating) the run file at `path`.
    pub fn create(path: PathBuf) -> Result<StrRunWriter, StorageError> {
        let file = File::create(&path).map_err(|e| io_err("creating spill run", &path, e))?;
        Ok(StrRunWriter {
            file: BufWriter::new(file),
            path,
            rows: 0,
            bytes: 0,
        })
    }

    /// Append one arena-backed frame. Empty frames are skipped; frames
    /// over [`MAX_FRAME_ROWS`] rows or [`MAX_FRAME_KEY_BYTES`] key bytes
    /// must be split into several appends.
    pub fn append(&mut self, batch: &StrBatch) -> Result<(), StorageError> {
        if batch.is_empty() {
            return Ok(());
        }
        let rows = batch.len();
        let key_bytes = batch.arena.len();
        if rows > MAX_FRAME_ROWS || key_bytes > MAX_FRAME_KEY_BYTES {
            return Err(StorageError::Io(format!(
                "spill frame of {rows} rows / {key_bytes} key bytes exceeds the frame \
                 ceilings ({MAX_FRAME_ROWS} rows, {MAX_FRAME_KEY_BYTES} bytes); \
                 split into smaller appends"
            )));
        }
        let mut frame = Vec::with_capacity(12 + rows * 12 + key_bytes);
        write_u32(&mut frame, rows as u32);
        write_u32(&mut frame, key_bytes as u32);
        for i in 0..rows {
            write_u32(&mut frame, batch.offsets[i + 1] - batch.offsets[i]);
        }
        frame.extend_from_slice(&batch.arena);
        write_i64s(&mut frame, &batch.values);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("writing spill run", &self.path, e))?;
        self.rows += rows as u64;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> Result<StrRun, StorageError> {
        self.file
            .flush()
            .map_err(|e| io_err("flushing spill run", &self.path, e))?;
        Ok(StrRun {
            path: self.path,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed `(Utf8, i64)` run on disk.
#[derive(Debug)]
pub struct StrRun {
    path: PathBuf,
    rows: u64,
    bytes: u64,
}

impl StrRun {
    /// Rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Encoded bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Open the run for frame-by-frame streaming.
    pub fn reader(&self) -> Result<StrRunReader, StorageError> {
        let file =
            File::open(&self.path).map_err(|e| io_err("opening spill run", &self.path, e))?;
        Ok(StrRunReader {
            file: BufReader::new(file),
            path: self.path.clone(),
        })
    }

    /// Read the whole run back as one arena-backed batch, in append
    /// order.
    pub fn read_all(&self) -> Result<StrBatch, StorageError> {
        let mut all = StrBatch::default();
        let mut reader = self.reader()?;
        while let Some(batch) = reader.next_frame()? {
            for i in 0..batch.len() {
                all.push(batch.key(i), batch.values[i]);
            }
        }
        Ok(all)
    }

    /// Delete the file early. Best-effort.
    pub fn delete(self) {
        delete_file(&self.path);
    }
}

/// Streams the frames of a [`StrRun`] in append order.
#[derive(Debug)]
pub struct StrRunReader {
    file: BufReader<File>,
    path: PathBuf,
}

impl StrRunReader {
    /// The next frame, or `None` at end of run. Key bytes are validated
    /// as Utf8 here, so [`StrBatch::key`] is infallible.
    pub fn next_frame(&mut self) -> Result<Option<StrBatch>, StorageError> {
        let mut header = [0u8; 4];
        if !read_exact_or_eof(&mut self.file, &self.path, &mut header)? {
            return Ok(None);
        }
        let rows = u32::from_le_bytes(header) as usize;
        let key_bytes = read_u32(&mut self.file, &self.path)? as usize;
        if rows > MAX_FRAME_ROWS || key_bytes > MAX_FRAME_KEY_BYTES {
            return Err(StorageError::Io(format!(
                "corrupt spill run {}: frame header claims {rows} rows / {key_bytes} key \
                 bytes (max {MAX_FRAME_ROWS} / {MAX_FRAME_KEY_BYTES})",
                self.path.display()
            )));
        }
        let mut body = vec![0u8; rows * 4 + key_bytes + rows * 8];
        if !read_exact_or_eof(&mut self.file, &self.path, &mut body)? && !body.is_empty() {
            return Err(StorageError::Io(format!(
                "truncated spill run {}: missing frame body",
                self.path.display()
            )));
        }
        let (lens, rest) = body.split_at(rows * 4);
        let (arena, vals) = rest.split_at(key_bytes);
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0u32);
        let mut at = 0u32;
        for len in lens.chunks_exact(4) {
            at += u32::from_le_bytes(len.try_into().expect("chunks_exact(4)"));
            offsets.push(at);
        }
        if at as usize != key_bytes {
            return Err(StorageError::Io(format!(
                "corrupt spill run {}: key lengths sum to {at}, arena holds {key_bytes}",
                self.path.display()
            )));
        }
        let batch = StrBatch {
            offsets,
            arena: arena.to_vec(),
            values: decode_i64s(vals),
        };
        for i in 0..batch.len() {
            let lo = batch.offsets[i] as usize;
            let hi = batch.offsets[i + 1] as usize;
            std::str::from_utf8(&batch.arena[lo..hi]).map_err(|e| {
                StorageError::Io(format!(
                    "corrupt spill run {}: key {i} is not Utf8 ({e})",
                    self.path.display()
                ))
            })?;
        }
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_run_roundtrips_in_append_order() {
        let dir = SpillDir::new().unwrap();
        let mut w = IntRunWriter::create(dir.run_path("t")).unwrap();
        w.append(&[1, 2, 3], &[10, 20, 30]).unwrap();
        w.append(&[], &[]).unwrap(); // skipped
        w.append(&[-4], &[i64::MIN]).unwrap();
        assert_eq!(w.rows(), 4);
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 4);
        assert!(run.bytes() > 0);
        let (k, v) = run.read_all().unwrap();
        assert_eq!(k, vec![1, 2, 3, -4]);
        assert_eq!(v, vec![10, 20, 30, i64::MIN]);
        // Streaming sees the two non-empty frames.
        let mut r = run.reader().unwrap();
        assert_eq!(r.next_frame().unwrap().unwrap().0, vec![1, 2, 3]);
        assert_eq!(r.next_frame().unwrap().unwrap().0, vec![-4]);
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn int_writer_rejects_unequal_columns() {
        let dir = SpillDir::new().unwrap();
        let mut w = IntRunWriter::create(dir.run_path("t")).unwrap();
        assert_eq!(
            w.append(&[1], &[1, 2]).unwrap_err(),
            StorageError::LengthMismatch { left: 1, right: 2 }
        );
    }

    #[test]
    fn str_run_roundtrips_arena_backed() {
        let dir = SpillDir::new().unwrap();
        let mut batch = StrBatch::default();
        batch.push("alpha", 1);
        batch.push("", 2); // empty key is legal
        batch.push("βeta", 3); // multi-byte Utf8
        let mut w = StrRunWriter::create(dir.run_path("s")).unwrap();
        w.append(&batch).unwrap();
        w.append(&StrBatch::default()).unwrap(); // skipped
        let mut second = StrBatch::default();
        second.push("tail", -9);
        w.append(&second).unwrap();
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), 4);
        let all = run.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.key(0), "alpha");
        assert_eq!(all.key(1), "");
        assert_eq!(all.key(2), "βeta");
        assert_eq!(all.key(3), "tail");
        assert_eq!(all.values, vec![1, 2, 3, -9]);
    }

    #[test]
    fn spill_dir_removes_itself() {
        let path = {
            let dir = SpillDir::new().unwrap();
            let mut w = IntRunWriter::create(dir.run_path("x")).unwrap();
            w.append(&[1], &[1]).unwrap();
            w.finish().unwrap();
            assert!(dir.path().exists());
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "drop removes the spill dir");
    }

    #[test]
    fn oversized_frame_header_fails_typed_instead_of_allocating() {
        let dir = SpillDir::new().unwrap();
        let path = dir.run_path("bogus");
        let mut w = IntRunWriter::create(path.clone()).unwrap();
        w.append(&[1], &[1]).unwrap();
        let run = w.finish().unwrap();
        // Corrupt the header to claim u32::MAX rows: the reader must fail
        // typed, not attempt a ~64 GiB allocation.
        let mut data = fs::read(&path).unwrap();
        data[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &data).unwrap();
        let err = run.read_all().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
        // And the writers enforce the same ceiling symmetrically.
        let mut w = IntRunWriter::create(dir.run_path("big")).unwrap();
        let too_many = vec![0i64; MAX_FRAME_ROWS + 1];
        assert!(matches!(
            w.append(&too_many, &too_many).unwrap_err(),
            StorageError::Io(_)
        ));
    }

    #[test]
    fn truncated_run_reports_io_error() {
        let dir = SpillDir::new().unwrap();
        let path = dir.run_path("trunc");
        let mut w = IntRunWriter::create(path.clone()).unwrap();
        w.append(&[1, 2, 3, 4], &[1, 2, 3, 4]).unwrap();
        let run = w.finish().unwrap();
        // Chop the file mid-frame.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 5]).unwrap();
        let err = run.read_all().unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    }
}
