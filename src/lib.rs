//! # adaptvm — an adaptive VM combining vectorized and JIT execution
//!
//! A from-scratch Rust reproduction of *"Designing an adaptive VM that
//! combines vectorized and JIT execution on heterogeneous hardware"*
//! (Tim Gubner, ICDE 2018 PhD symposium).
//!
//! The system, bottom to top:
//!
//! * [`storage`] — columnar arrays, selection vectors/bitmaps, per-block
//!   compression (RLE/dictionary/frame-of-reference/delta), data
//!   generators, and on-disk spill runs (`storage::spill`) for the
//!   out-of-core operators,
//! * [`dsl`] — the data-parallel skeleton language of §II (Table I) with
//!   control flow, a parser/printer, a type checker, normalization,
//!   deforestation/fusion, chunk-size manipulation and the §III-B greedy
//!   dependency-graph partitioner (Fig. 3),
//! * [`kernels`] — pre-compiled vectorized primitives in micro-adaptive
//!   flavors (§III-A, §III-C),
//! * [`jit`] — the fusion JIT: trace IR, real optimization passes,
//!   calibrated compile-cost model, background compile server, code cache
//!   (§III-B),
//! * [`hetsim`] — the simulated heterogeneous device substrate (§IV
//!   target 3),
//! * [`vm`] — the Fig. 1 state machine engine, profiler, micro-adaptive
//!   bandits, operator reordering and device placement (§III),
//! * [`parallel`] — morsel-driven parallel execution: work-stealing morsel
//!   dispatch, per-worker interpreters sharing one JIT code cache and one
//!   merged profile (HyPer-style intra-query parallelism over the
//!   chunk-at-a-time engine), plus a long-lived worker pool + query
//!   scheduler (`parallel::scheduler`) that executes many queries
//!   concurrently over one parked worker set, one shared JIT cache and one
//!   background compile server — with per-query cancel tokens and
//!   deadlines checked at morsel boundaries and an explicit, typed
//!   shutdown path,
//! * [`parallel::serve`] — the **admission-controlled serving layer**:
//!   `QueryService` fronts a scheduler with bounded per-priority queues
//!   (Interactive / Normal / Batch) and typed backpressure
//!   (`AdmissionError::QueueFull`), weighted-fair stride dispatch with
//!   aging (Interactive wins under load, Batch never starves),
//!   cancellation/deadlines for queued *and* running queries, graceful
//!   `drain`, and per-priority latency/rejection telemetry
//!   (`ServiceStats`) — every `relational::parallel` entry point runs
//!   through it unchanged (`ParallelOpts::with_service`), bit-identical
//!   to direct scheduler submission. The **multi-tenant layer**
//!   (`parallel::serve::tenant`) adds per-tenant quotas (weighted
//!   admission share, in-flight/queue-depth caps, shared memory
//!   budgets), overload shedding (Batch → Normal, never Interactive),
//!   elastic concurrency, and a plain-text metrics exposition
//!   (`parallel::serve::render_text`),
//! * [`relational`] — operators, adaptive aggregation/joins (integer and
//!   Utf8 keys, including mixed-key adaptive chains), compressed scans
//!   and the TPC-H Q1/Q3/Q6 workloads the paper's motivation cites —
//!   each with morsel-parallel variants in `relational::parallel`,
//! * [`relational::spill`] + [`relational::sort`] — the **out-of-core**
//!   regime on the operator-generic `parallel::SpillableOp` protocol:
//!   grace-hash joins (build *and* probe side spilled), out-of-core
//!   hash aggregation, and an external merge sort with budgeted top-k,
//!   all governed by a byte-accounted `parallel::MemoryBudget` (a
//!   tenant's registered budget reaches every operator), partitions
//!   spilling to disk runs and recursively re-partitioning until they
//!   fit — bit-identical to the in-memory operators at every budget
//!   and worker count, with cancellation honored between spill runs.
//!
//! ## Quickstart
//!
//! ```
//! use adaptvm::prelude::*;
//!
//! // The paper's Fig. 2 program: double every input, keep positives.
//! let program = adaptvm::dsl::programs::fig2_with_limit(65_536);
//! let data: Vec<i64> = (0..70_000).map(|i| i - 35_000).collect();
//! let buffers = Buffers::new().with_input("some_data", Array::from(data));
//!
//! let vm = Vm::adaptive(); // interpret → profile → JIT hot regions
//! let (out, report) = vm.run(&program, buffers).unwrap();
//! assert_eq!(out.output("v").unwrap().len(), 65_536);
//! assert!(report.injected_traces > 0); // hot loop got JIT-compiled
//! ```

pub use adaptvm_dsl as dsl;
pub use adaptvm_hetsim as hetsim;
pub use adaptvm_jit as jit;
pub use adaptvm_kernels as kernels;
pub use adaptvm_parallel as parallel;
pub use adaptvm_relational as relational;
pub use adaptvm_storage as storage;
pub use adaptvm_vm as vm;

/// The most common imports in one place.
pub mod prelude {
    pub use adaptvm_dsl::parser::{parse_expr, parse_program};
    pub use adaptvm_dsl::transform::ChunkSize;
    pub use adaptvm_dsl::{Expr, Program, Stmt};
    pub use adaptvm_hetsim::device::DeviceSpec;
    pub use adaptvm_jit::compiler::CostModel;
    pub use adaptvm_kernels::{FilterFlavor, MapMode};
    pub use adaptvm_parallel::{
        CancelToken, MemoryBudget, Morsel, MorselPlan, ParallelVm, Priority, QueryService,
        Scheduler, ServeConfig, TenantQuota, TenantRegistry,
    };
    pub use adaptvm_storage::{Array, Scalar, ScalarType};
    pub use adaptvm_vm::{BanditPolicy, Buffers, RunReport, Strategy, Vm, VmConfig};
}
