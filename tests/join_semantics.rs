//! Property tests of the hash-join layer: duplicate-key inner-join
//! cardinality against a nested-loop oracle (integer *and* string keys),
//! Bloom/plain probe equivalence at adaptively-sized bitmasks, and
//! parallel-vs-sequential bit-identity of the partitioned build + shared
//! probe on both key types.

use adaptvm::relational::join::{AdaptiveJoinChain, HashTable, JoinSide, KeyColumn, StrHashTable};
use adaptvm::relational::parallel::{
    parallel_hash_join, parallel_hash_join_str, ParallelJoinChain, ParallelOpts,
};
use adaptvm::storage::Array;
use proptest::prelude::*;

/// The nested-loop inner-join oracle: for every probe row, one output row
/// per matching build row, in (probe-row, build-row) order.
fn nested_loop_join(
    build_keys: &[i64],
    build_payloads: &[i64],
    probe_keys: &[i64],
) -> (Vec<u32>, Vec<i64>) {
    let mut idx = Vec::new();
    let mut pay = Vec::new();
    for (i, &pk) in probe_keys.iter().enumerate() {
        for (j, &bk) in build_keys.iter().enumerate() {
            if bk == pk {
                idx.push(i as u32);
                pay.push(build_payloads[j]);
            }
        }
    }
    (idx, pay)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Duplicate build keys emit one output row per build match, in
    /// build-row order — exactly the nested-loop join's cardinality and
    /// payloads.
    #[test]
    fn duplicate_key_join_matches_nested_loop_oracle(
        build_keys in prop::collection::vec(0i64..12, 0..120),
        payload_seed in prop::collection::vec(-1000i64..1000, 0..120),
        probe_keys in prop::collection::vec(-2i64..16, 0..200),
    ) {
        // Equal-length build columns (the generators draw independently).
        let n = build_keys.len().min(payload_seed.len());
        let build_keys = &build_keys[..n];
        let payloads = &payload_seed[..n];
        let oracle = nested_loop_join(build_keys, payloads, &probe_keys);
        let table = HashTable::from_rows(build_keys, payloads);
        prop_assert_eq!(table.len(), n);
        prop_assert_eq!(table.probe(&probe_keys), oracle.clone());
        // The Bloom pre-filter never changes the join result.
        let bloomed = HashTable::from_rows(build_keys, payloads).with_bloom();
        prop_assert_eq!(bloomed.probe(&probe_keys), oracle);
    }

    /// Bloom-filtered and plain probes are equivalent at every build
    /// cardinality (the mask is sized from the build side, so this holds
    /// from tiny to large builds).
    #[test]
    fn bloom_probe_equivalent_to_plain(
        distinct in 1i64..3000,
        stride in 1i64..7,
        probe_span in 100i64..4000,
    ) {
        let keys: Vec<i64> = (0..distinct).map(|i| i * stride).collect();
        let pays: Vec<i64> = (0..distinct).collect();
        let plain = HashTable::from_rows(&keys, &pays);
        let bloomed = HashTable::from_rows(&keys, &pays).with_bloom();
        prop_assert!(bloomed.bloom_bits() >= 64);
        let probes: Vec<i64> = (-10..probe_span).collect();
        prop_assert_eq!(plain.probe(&probes), bloomed.probe(&probes));
        for &k in &keys {
            prop_assert!(bloomed.contains(k), "bloom dropped build key {}", k);
        }
    }

    /// The morsel-parallel partitioned build + shared probe is
    /// bit-identical to the sequential build + probe for 1/2/4/8 workers,
    /// whatever the data and morsel size.
    #[test]
    fn parallel_join_bit_identical_to_sequential(
        build_keys in prop::collection::vec(0i64..200, 1..600),
        probe_keys in prop::collection::vec(-50i64..400, 0..900),
        morsel_rows in 1usize..300,
    ) {
        let payloads: Vec<i64> = (0..build_keys.len() as i64).collect();
        let bk = Array::from(build_keys.clone());
        let bp = Array::from(payloads.clone());
        let sequential = HashTable::build(&bk, &bp).unwrap();
        let expected = sequential.probe(&probe_keys);
        for workers in [1usize, 2, 4, 8] {
            let (table, out) = parallel_hash_join(
                &bk,
                &bp,
                &probe_keys,
                false,
                ParallelOpts {
                    workers,
                    morsel_rows,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            prop_assert_eq!(table.len(), sequential.len());
            prop_assert_eq!(
                (out.indices, out.payloads),
                expected.clone(),
                "workers={} morsel_rows={}",
                workers,
                morsel_rows
            );
        }
    }

    /// String-key joins: the arena-backed [`StrHashTable`] reproduces the
    /// nested-loop oracle exactly — one output row per build match, in
    /// build-row order — with and without the Bloom pre-filter. Key ids
    /// are drawn from a small domain so duplicates are common, and every
    /// id maps to a distinct string.
    #[test]
    fn str_join_matches_nested_loop_oracle(
        build_ids in prop::collection::vec(0i64..12, 0..120),
        payload_seed in prop::collection::vec(-1000i64..1000, 0..120),
        probe_ids in prop::collection::vec(-2i64..16, 0..200),
    ) {
        let n = build_ids.len().min(payload_seed.len());
        let build_keys: Vec<String> = build_ids[..n].iter().map(|v| format!("k{v}")).collect();
        let payloads = &payload_seed[..n];
        let probe_keys: Vec<String> = probe_ids.iter().map(|v| format!("k{v}")).collect();
        // Oracle over the ids (string mapping is injective).
        let oracle = nested_loop_join(&build_ids[..n], payloads, &probe_ids);
        let table = StrHashTable::from_rows(&build_keys, payloads);
        prop_assert_eq!(table.len(), n);
        prop_assert_eq!(table.probe(&probe_keys), oracle.clone());
        let bloomed = StrHashTable::from_rows(&build_keys, payloads).with_bloom();
        prop_assert_eq!(bloomed.probe(&probe_keys), oracle);
    }

    /// The morsel-parallel string join (partitioned build over a Utf8
    /// column, shared arena-backed probe table) is bit-identical to the
    /// sequential build + probe for 1/2/4/8 workers.
    #[test]
    fn parallel_str_join_bit_identical_to_sequential(
        build_ids in prop::collection::vec(0i64..150, 1..500),
        probe_ids in prop::collection::vec(-30i64..300, 0..700),
        morsel_rows in 1usize..250,
        bloom_sel in 0usize..2,
    ) {
        let bloom = bloom_sel == 1;
        let build_keys: Vec<String> = build_ids.iter().map(|v| format!("name-{v}")).collect();
        let payloads: Vec<i64> = (0..build_ids.len() as i64).collect();
        let probe_keys: Vec<String> = probe_ids.iter().map(|v| format!("name-{v}")).collect();
        let bk = Array::from(build_keys.clone());
        let bp = Array::from(payloads.clone());
        let sequential = StrHashTable::build(&bk, &bp).unwrap();
        let expected = sequential.probe(&probe_keys);
        for workers in [1usize, 2, 4, 8] {
            let (table, out) = parallel_hash_join_str(
                &bk,
                &bp,
                &probe_keys,
                bloom,
                ParallelOpts {
                    workers,
                    morsel_rows,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            prop_assert_eq!(table.len(), sequential.len());
            prop_assert_eq!(table.distinct_keys(), sequential.distinct_keys());
            prop_assert_eq!(
                (out.indices, out.payloads),
                expected.clone(),
                "workers={} morsel_rows={} bloom={}",
                workers,
                morsel_rows,
                bloom
            );
        }
    }

    /// A **mixed-key** parallel chain (an i64 side and a Utf8 side) is
    /// bit-identical to the sequential mixed chain over the same batches
    /// for 1/2/4/8 workers. (The *learned order* may legitimately differ
    /// between executors — the controller also weighs wall-clock timings
    /// — but survivors of a conjunctive chain are order-independent.)
    #[test]
    fn parallel_mixed_chain_bit_identical_to_sequential(
        int_ids in prop::collection::vec(0i64..2_000, 50..400),
        morsel_rows in 1usize..150,
    ) {
        let n = int_ids.len();
        let str_probe: Vec<String> = (0..n as i64).map(|i| format!("seg-{}", i % 40)).collect();
        let mk_sides = || {
            let int_build: Vec<i64> = (0..1_500).collect();
            let int_pays: Vec<i64> = (0..1_500).map(|k| k + 1).collect();
            let str_build: Vec<String> = (0..10).map(|i| format!("seg-{i}")).collect();
            let str_pays: Vec<i64> = (0..10).map(|i| i * 5).collect();
            vec![
                JoinSide::Int(HashTable::from_rows(&int_build, &int_pays)),
                JoinSide::Str(StrHashTable::from_rows(&str_build, &str_pays)),
            ]
        };
        let mut seq = AdaptiveJoinChain::new_mixed(mk_sides(), 2);
        let columns = [KeyColumn::Int(&int_ids), KeyColumn::Str(&str_probe)];
        let seq_results: Vec<_> = (0..5).map(|_| seq.probe_chunk_mixed(&columns)).collect();
        for workers in [1usize, 2, 4, 8] {
            let mut par = ParallelJoinChain::new_mixed(mk_sides(), 2);
            for (batch, expected) in seq_results.iter().enumerate() {
                let r = par
                    .probe_batch_mixed(
                        &columns,
                        ParallelOpts {
                            workers,
                            morsel_rows,
                            ..ParallelOpts::default()
                        },
                    )
                    .unwrap();
                prop_assert_eq!(&r.indices, &expected.indices, "workers={} batch={}", workers, batch);
                prop_assert_eq!(&r.payload_sum, &expected.payload_sum);
            }
            prop_assert_eq!(par.order().len(), 2, "workers={}", workers);
        }
    }

    /// Chain results (survivors and multimap payload sums) agree with a
    /// direct per-row evaluation, independent of the adaptive order.
    #[test]
    fn chain_survivors_match_direct_evaluation(
        keys0 in prop::collection::vec(0i64..40, 1..250),
        domain1 in 1i64..60,
    ) {
        let n = keys0.len();
        let keys1: Vec<i64> = (0..n as i64).map(|i| i % domain1).collect();
        let t0 = HashTable::from_rows(
            &(0..20).collect::<Vec<i64>>(),
            &(0..20).map(|k| k * 2).collect::<Vec<i64>>(),
        );
        let t1 = HashTable::from_rows(
            &(0..30).collect::<Vec<i64>>(),
            &(0..30).map(|k| k + 7).collect::<Vec<i64>>(),
        );
        let expect_idx: Vec<u32> = (0..n as u32)
            .filter(|&i| keys0[i as usize] < 20 && keys1[i as usize] < 30)
            .collect();
        let expect_pay: Vec<i64> = expect_idx
            .iter()
            .map(|&i| keys0[i as usize] * 2 + (keys1[i as usize] + 7))
            .collect();
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 2);
        for _ in 0..4 {
            let r = chain.probe_chunk(&[keys0.clone(), keys1.clone()]);
            prop_assert_eq!(&r.indices, &expect_idx);
            prop_assert_eq!(&r.payload_sum, &expect_pay);
        }
    }
}
