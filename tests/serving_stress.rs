//! Stress and regression tests for the admission-controlled serving
//! layer (`adaptvm_parallel::serve`) and the scheduler features under it:
//!
//! * every relational entry point runs **unchanged** through a
//!   `QueryService` at default priority, bit-identical to direct
//!   scheduler submission;
//! * weighted-fair dispatch favors Interactive without starving Batch;
//! * cancellation mid-query leaves scheduler stats consistent (morsels
//!   executed ≤ planned, no worker wedged) while concurrent queries
//!   complete exactly;
//! * backpressure rejections are counted exactly under concurrent
//!   hammering;
//! * `join_deadline` neither fires early nor hangs (spurious-wakeup
//!   regression);
//! * Drop-vs-explicit-shutdown ordering loses no queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use adaptvm::parallel::serve::{
    AdmissionError, Priority, QueryService, ServeConfig, SubmitOpts as ServeOpts,
};
use adaptvm::parallel::{MorselPlan, QueryError, Scheduler, SubmitError, SubmitOptions};
use adaptvm::relational::parallel::{
    parallel_filter_project_sum, parallel_hash_join, q1_parallel_adaptive, q1_parallel_vectorized,
    q3_parallel, q6_parallel, ParallelOpts,
};
use adaptvm::relational::tpch;
use adaptvm::storage::{Array, DEFAULT_CHUNK};
use adaptvm::vm::{Strategy, VmConfig};

/// Liveness bound: generous (CI containers are slow, possibly
/// single-core) but finite — a deadlock fails instead of hanging.
const JOIN_BOUND: Duration = Duration::from_secs(120);

fn q1_bits(rows: &[tpch::Q1Row]) -> Vec<(i64, i64, [u64; 4])> {
    rows.iter()
        .map(|r| {
            (
                r.group,
                r.count,
                [
                    r.sum_qty.to_bits(),
                    r.sum_base.to_bits(),
                    r.sum_disc_price.to_bits(),
                    r.sum_charge.to_bits(),
                ],
            )
        })
        .collect()
}

/// Acceptance: all existing `relational::parallel` entry points run
/// unchanged through `QueryService` at default priority with
/// bit-identical results to direct `Scheduler` submission (1/2/4/8
/// workers).
#[test]
fn served_entry_points_bit_identical_to_direct_scheduler() {
    let t = tpch::lineitem(24_000, 77);
    let compact = tpch::CompactLineitem::from_table(&t);
    let li = tpch::lineitem_q3(18_000, 2_500, 77);
    let ord = tpch::orders(2_500, 77);
    let date = tpch::SHIPDATE_MAX / 2;
    let build_keys = Array::from((0..4_000).map(|i| i % 300).collect::<Vec<i64>>());
    let build_pays = Array::from((0..4_000).map(|i| i * 3).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..20_000).map(|i| (i * 7) % 600).collect();

    for workers in [1usize, 2, 4, 8] {
        let scheduler = Scheduler::new(workers);
        let service = QueryService::new(ServeConfig::default().with_workers(workers));
        let direct = ParallelOpts::new(workers, 5_000).with_scheduler(&scheduler);
        // Default priority (Normal) through the admission-controlled path.
        let served = ParallelOpts::new(workers, 5_000).with_service(&service, Priority::Normal);

        let a = q1_parallel_vectorized(&t, DEFAULT_CHUNK, direct).unwrap();
        let b = q1_parallel_vectorized(&t, DEFAULT_CHUNK, served).unwrap();
        assert_eq!(q1_bits(&a), q1_bits(&b), "vectorized Q1 at {workers}");

        let a = q1_parallel_adaptive(&compact, DEFAULT_CHUNK, direct).unwrap();
        let b = q1_parallel_adaptive(&compact, DEFAULT_CHUNK, served).unwrap();
        assert_eq!(q1_bits(&a), q1_bits(&b), "adaptive Q1 at {workers}");

        let (ra, _) = q3_parallel(
            &li,
            &ord,
            date,
            tpch::JoinStrategy::Fused,
            DEFAULT_CHUNK,
            true,
            direct,
        )
        .unwrap();
        let (rb, _) = q3_parallel(
            &li,
            &ord,
            date,
            tpch::JoinStrategy::Fused,
            DEFAULT_CHUNK,
            true,
            served,
        )
        .unwrap();
        assert_eq!(ra.to_bits(), rb.to_bits(), "Q3 at {workers}");

        let (_, ja) =
            parallel_hash_join(&build_keys, &build_pays, &probe_keys, true, direct).unwrap();
        let (_, jb) =
            parallel_hash_join(&build_keys, &build_pays, &probe_keys, true, served).unwrap();
        assert_eq!(ja.indices, jb.indices, "join at {workers}");
        assert_eq!(ja.payloads, jb.payloads, "join at {workers}");

        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        let (qa, _) = q6_parallel(&t, 1000, config.clone(), direct).unwrap();
        let (qb, report) = q6_parallel(&t, 1000, config, served).unwrap();
        assert_eq!(qa.to_bits(), qb.to_bits(), "Q6 at {workers}");
        assert_eq!(report.workers, workers);

        // Every served query was admitted + completed at Normal priority.
        let stats = service.stats();
        let normal = stats.priority(Priority::Normal);
        assert!(normal.completed >= 5, "{normal:?}");
        assert_eq!(normal.rejected(), 0);
        assert_eq!(normal.finished(), normal.admitted);
        let report = service.shutdown();
        assert!(report.clean, "{report:?}");
    }
}

/// Weighted-fair dispatch: with one running slot and both classes
/// backlogged, Interactive completes earlier on average, and Batch still
/// finishes (no starvation).
#[test]
fn interactive_outranks_batch_without_starving_it() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1)
            .with_queue_capacity(16),
    );
    // Plug the running slot so the queues build up behind it.
    let plug = service
        .try_submit(
            ServeOpts::normal(),
            MorselPlan::new(40, 1),
            |_, m| {
                std::thread::sleep(Duration::from_millis(1));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let order: &'static Mutex<Vec<Priority>> = Box::leak(Box::new(Mutex::new(Vec::new())));
    let mut handles = Vec::new();
    for i in 0..3 {
        for (opts, p) in [
            (ServeOpts::batch(), Priority::Batch),
            (ServeOpts::interactive(), Priority::Interactive),
        ] {
            let _ = i;
            handles.push(
                service
                    .try_submit(
                        opts,
                        MorselPlan::new(2_000, 100),
                        |_, m| Ok::<usize, ()>(m.len),
                        move |parts, _| {
                            order.lock().unwrap().push(p);
                            parts.iter().sum::<usize>()
                        },
                    )
                    .unwrap(),
            );
        }
    }
    plug.join().unwrap();
    for h in handles {
        assert_eq!(
            h.join_deadline(JOIN_BOUND)
                .expect("serving join exceeded bound")
                .unwrap(),
            2_000
        );
    }
    let order = order.lock().unwrap().clone();
    assert_eq!(order.len(), 6);
    let mean_pos = |p: Priority| {
        let ps: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, q)| **q == p)
            .map(|(i, _)| i)
            .collect();
        ps.iter().sum::<usize>() as f64 / ps.len() as f64
    };
    assert!(
        mean_pos(Priority::Interactive) < mean_pos(Priority::Batch),
        "interactive should complete earlier on average: {order:?}"
    );
    assert_eq!(
        service.stats().priority(Priority::Batch).completed,
        3,
        "batch must not starve"
    );
    service.shutdown();
}

/// Acceptance: `QueryHandle::cancel()` returns with the query's
/// morsels-executed ≤ morsels-planned while concurrent queries complete
/// exactly; the scheduler survives (no wedged worker).
#[test]
fn cancellation_mid_query_keeps_scheduler_stats_consistent() {
    let scheduler = Scheduler::new(2);
    let slow_plan = MorselPlan::new(2_000, 1);
    let planned = slow_plan.len() as u64;
    let slow = scheduler
        .submit_opts(
            slow_plan,
            SubmitOptions::default(),
            |_, m| {
                std::thread::sleep(Duration::from_millis(1));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let quick = scheduler
        .submit(
            MorselPlan::new(50_000, 500),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(15));
    slow.cancel();
    let executed_at_cancel = slow.executed();
    assert!(executed_at_cancel <= planned);
    match slow
        .join_deadline(JOIN_BOUND)
        .expect("cancel must not hang")
    {
        Err(QueryError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The concurrent query completes exactly.
    assert_eq!(
        quick
            .join_deadline(JOIN_BOUND)
            .expect("concurrent query hung")
            .unwrap(),
        50_000
    );
    let stats = scheduler.stats();
    assert_eq!(stats.queries_submitted, stats.queries_completed);
    assert!(
        stats.morsels_executed < planned + 100,
        "cancelled query must skip most of its {planned} morsels: {stats:?}"
    );
    // No worker wedged: a follow-up query completes.
    let (v, _) = scheduler
        .run(&MorselPlan::new(100, 10), |_, m| Ok::<usize, ()>(m.len))
        .unwrap();
    assert_eq!(v.iter().sum::<usize>(), 100);
}

/// The handle's executed/planned accounting, observed directly.
#[test]
fn cancelled_handle_reports_partial_morsel_accounting() {
    let scheduler = Scheduler::new(2);
    let plan = MorselPlan::new(1_000, 1);
    let planned = plan.len() as u64;
    let handle = scheduler
        .submit(
            plan,
            |_, m| {
                std::thread::sleep(Duration::from_millis(1));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    handle.cancel();
    // Poll the per-query counter through the handle before joining.
    let executed = handle.executed();
    assert!(executed <= planned);
    match handle.join_deadline(JOIN_BOUND).expect("join hung") {
        Err(QueryError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let final_executed = scheduler.stats().morsels_executed;
    assert!(
        final_executed < planned,
        "morsels executed ({final_executed}) must stay below planned ({planned})"
    );
}

/// Backpressure: under concurrent hammering from many threads, every
/// QueueFull — and every overload shed the sustained QueueFull pressure
/// escalates into — is counted exactly once, and admitted == finished.
#[test]
fn rejections_counted_exactly_under_concurrent_hammering() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(1)
            .with_queue_capacity(4),
    );
    let rejected = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let submitted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..6 {
            let service = &service;
            let (rejected, shed) = (&rejected, &shed);
            let submitted = &submitted;
            s.spawn(move || {
                for _ in 0..25 {
                    submitted.fetch_add(1, Ordering::Relaxed);
                    match service.try_submit(
                        ServeOpts::normal(),
                        MorselPlan::new(2_000, 200),
                        |_, m| Ok::<usize, ()>(m.len),
                        |parts, _| parts.iter().sum::<usize>(),
                    ) {
                        Ok(h) => {
                            assert_eq!(
                                h.join_deadline(JOIN_BOUND)
                                    .expect("admitted query hung")
                                    .unwrap(),
                                2_000
                            );
                        }
                        Err(AdmissionError::QueueFull(Priority::Normal)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AdmissionError::Shed(Priority::Normal)) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected admission error: {other}"),
                    }
                }
            });
        }
    });
    let stats = service.stats();
    let normal = stats.priority(Priority::Normal);
    assert_eq!(normal.submitted, submitted.load(Ordering::Relaxed));
    assert_eq!(
        normal.rejected_full,
        rejected.load(Ordering::Relaxed),
        "every QueueFull counted exactly once: {normal:?}"
    );
    assert_eq!(
        normal.shed,
        shed.load(Ordering::Relaxed),
        "every shed counted exactly once: {normal:?}"
    );
    assert_eq!(
        normal.admitted,
        normal.submitted - normal.rejected_full - normal.shed
    );
    assert_eq!(normal.finished(), normal.admitted, "{normal:?}");
    assert_eq!(normal.completed, normal.admitted, "all admitted complete");
    let report = service.drain(JOIN_BOUND);
    assert!(report.clean);
}

/// Regression (spurious wakeups): `join_deadline` recomputes remaining
/// time across `recv_timeout` retries — it must neither fire early on a
/// query that finishes in time, nor hang past its bound on one that
/// doesn't.
#[test]
fn join_deadline_neither_fires_early_nor_hangs() {
    let scheduler = Scheduler::new(2);
    // (a) A query that completes comfortably inside the deadline.
    let quick = scheduler
        .submit(
            MorselPlan::new(200, 10),
            |_, m| {
                std::thread::sleep(Duration::from_millis(1));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.iter().sum::<usize>(),
        )
        .unwrap();
    let t0 = Instant::now();
    let joined = quick.join_deadline(JOIN_BOUND);
    assert_eq!(joined, Some(Ok(200)), "must not fire early");
    assert!(t0.elapsed() < JOIN_BOUND, "and must not wait out the bound");

    // (b) A query that cannot finish inside a short deadline: the join
    // returns None no earlier than the deadline and well before forever.
    let slow = scheduler
        .submit(
            MorselPlan::new(4_000, 1),
            |_, m| {
                std::thread::sleep(Duration::from_millis(1));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let deadline = Duration::from_millis(80);
    let t0 = Instant::now();
    let joined = slow.join_deadline(deadline);
    let waited = t0.elapsed();
    assert!(joined.is_none(), "the slow query cannot make this deadline");
    assert!(
        waited >= deadline,
        "deadline fired early: waited {waited:?} of {deadline:?}"
    );
    assert!(
        waited < JOIN_BOUND,
        "deadline hung: waited {waited:?} for a {deadline:?} bound"
    );
    // Scheduler drop below still drains the abandoned slow query —
    // covered by the accounting assertion in Drop ordering tests.
}

/// Drop-vs-explicit-shutdown ordering: both paths finish every accepted
/// query (none lost, none leaked), and submitting after an explicit
/// shutdown is a typed error.
#[test]
fn drop_and_explicit_shutdown_both_drain_accepted_queries() {
    // Explicit shutdown first.
    let scheduler = Scheduler::new(3);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            scheduler
                .submit(
                    MorselPlan::new(3_000 + i * 100, 128),
                    |_, m| Ok::<usize, ()>(m.len),
                    |parts, _| parts.iter().sum::<usize>(),
                )
                .unwrap()
        })
        .collect();
    scheduler.shutdown();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(
            h.join_deadline(JOIN_BOUND).expect("lost query").unwrap(),
            3_000 + i * 100,
            "query {i} lost in shutdown"
        );
    }
    assert_eq!(
        scheduler
            .submit(
                MorselPlan::new(10, 1),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.len(),
            )
            .err(),
        Some(SubmitError::ShutDown)
    );
    let stats = scheduler.stats();
    assert_eq!(stats.queries_submitted, stats.queries_completed);
    drop(scheduler); // second teardown is a no-op

    // Pure Drop path: handles must still resolve after the scheduler is
    // gone (Drop finishes in-flight queries before joining workers).
    let handles: Vec<_> = {
        let scheduler = Scheduler::new(2);
        (0..6)
            .map(|_| {
                scheduler
                    .submit(
                        MorselPlan::new(10_000, 256),
                        |_, m| Ok::<usize, ()>(m.len),
                        |parts, _| parts.iter().sum::<usize>(),
                    )
                    .unwrap()
            })
            .collect()
        // scheduler drops here
    };
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(
            h.join_deadline(JOIN_BOUND).expect("lost query").unwrap(),
            10_000,
            "query {i} lost in Drop"
        );
    }
}

/// Cancellation propagates through the relational entry points: a
/// pre-cancelled token aborts the pipeline with the typed kernel/VM
/// error on both the scoped pool and the serving path.
#[test]
fn relational_pipelines_surface_typed_cancellation() {
    use adaptvm::kernels::{FilterFlavor, KernelError, MapMode};
    use adaptvm::parallel::CancelToken;
    use adaptvm::storage::gen;
    use adaptvm::vm::VmError;

    let token = CancelToken::new();
    token.cancel();
    let t = gen::measurements(8_000, 8, 3);
    let scoped = ParallelOpts::new(2, 1_000).with_cancel(&token);
    match parallel_filter_project_sum(
        &t,
        "group",
        2,
        "value",
        512,
        FilterFlavor::SelVecLoop,
        MapMode::Selective,
        scoped,
    ) {
        Err(KernelError::Cancelled) => {}
        other => panic!("expected KernelError::Cancelled, got {other:?}"),
    }

    let li = tpch::lineitem(6_000, 9);
    let service = QueryService::new(ServeConfig::default().with_workers(2));
    let served = ParallelOpts::new(2, 1_000)
        .with_service(&service, Priority::Interactive)
        .with_cancel(&token);
    match q6_parallel(&li, 1000, VmConfig::default(), served) {
        Err(VmError::Cancelled) => {}
        other => panic!("expected VmError::Cancelled, got {:?}", other.map(|_| ())),
    }
    service.shutdown();
}

/// A queued query's deadline resolves promptly — the dispatcher evicts
/// expired entries even while every running slot is taken, instead of
/// waiting for the entry's dispatch turn.
#[test]
fn queued_deadline_resolves_before_the_slot_frees() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1),
    );
    // A plug that holds the only slot for a long time.
    let plug = service
        .try_submit(
            ServeOpts::normal(),
            MorselPlan::new(1_000, 1),
            |_, m| {
                std::thread::sleep(Duration::from_millis(2));
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let doomed = service
        .try_submit(
            ServeOpts::batch().with_deadline(Duration::from_millis(20)),
            MorselPlan::new(1_000, 100),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .unwrap();
    let doomed_token = doomed.cancel_token().clone();
    let t0 = Instant::now();
    match doomed.join_deadline(JOIN_BOUND).expect("join hung") {
        Err(QueryError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "queued deadline must not wait for the ~2 s plug to free the slot \
         (waited {:?})",
        t0.elapsed()
    );
    // The token observed the expiry too.
    assert!(doomed_token.is_cancelled());
    plug.join_deadline(JOIN_BOUND).expect("plug hung").unwrap();
    service.shutdown();
}

/// A panicking gated pipeline releases its dispatch slot (counted as
/// Panicked) instead of wedging the service; drain still completes.
#[test]
fn panicking_gated_run_does_not_leak_its_slot() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1),
    );
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = service.run_gated(ServeOpts::interactive(), |_| {
            panic!("gated pipeline exploded");
        });
    }));
    assert!(boom.is_err());
    assert_eq!(service.stats().priority(Priority::Interactive).panicked, 1);
    // The slot was released: a follow-up query dispatches and completes.
    let h = service
        .try_submit(
            ServeOpts::normal(),
            MorselPlan::new(1_000, 100),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .unwrap();
    assert_eq!(
        h.join_deadline(JOIN_BOUND)
            .expect("service wedged")
            .unwrap(),
        1_000
    );
    let report = service.drain(JOIN_BOUND);
    assert!(report.clean, "{report:?}");
}

/// Gated task errors are counted as task errors, not completions.
#[test]
fn gated_task_errors_reach_the_telemetry() {
    use adaptvm::kernels::KernelError;
    let service = QueryService::new(ServeConfig::default().with_workers(2));
    let t = tpch::lineitem(4_000, 5);
    let served = ParallelOpts::new(2, 1_000).with_service(&service, Priority::Normal);
    // A bad column name fails inside the per-morsel stage.
    let r = parallel_filter_project_sum(
        &t,
        "no_such_column",
        2,
        "l_quantity",
        512,
        adaptvm::kernels::FilterFlavor::SelVecLoop,
        adaptvm::kernels::MapMode::Selective,
        served,
    );
    assert!(matches!(
        r,
        Err(KernelError::Storage(_)) | Err(KernelError::Precondition(_))
    ));
    let ps = service.stats();
    let normal = ps.priority(Priority::Normal);
    assert_eq!(normal.task_errors, 1, "{normal:?}");
    assert_eq!(normal.completed, 0, "{normal:?}");
    service.shutdown();
}

/// Mixed-priority load against one service with concurrent submitters:
/// accounting stays exact end to end.
#[test]
fn mixed_priority_load_accounts_exactly() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(64),
    );
    let compact = tpch::CompactLineitem::from_table(&tpch::lineitem(10_000, 3));
    let reference = q1_bits(&tpch::q1_adaptive(&compact, DEFAULT_CHUNK));
    std::thread::scope(|s| {
        for submitter in 0..4 {
            let service = &service;
            let compact = &compact;
            let reference = &reference;
            s.spawn(move || {
                for round in 0..3 {
                    let priority = Priority::ALL[(submitter + round) % 3];
                    // Borrowing pipeline through the admission gate.
                    let opts = ParallelOpts::new(2, 2_000).with_service(service, priority);
                    let rows = q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts).unwrap();
                    assert_eq!(&q1_bits(&rows), reference, "diverged under load");
                    // Plus an async raw submission at the same priority.
                    let h = service
                        .submit(
                            ServeOpts::new(priority),
                            MorselPlan::new(5_000, 250),
                            |_, m| Ok::<usize, ()>(m.len),
                            |parts, _| parts.iter().sum::<usize>(),
                        )
                        .expect("unbounded submit is admitted");
                    assert_eq!(
                        h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
                        5_000
                    );
                }
            });
        }
    });
    let stats = service.stats();
    let mut admitted = 0;
    let mut finished = 0;
    for p in Priority::ALL {
        let ps = stats.priority(p);
        assert_eq!(ps.rejected(), 0, "{p}: no rejections at this load");
        assert_eq!(ps.finished(), ps.admitted, "{p}: {ps:?}");
        admitted += ps.admitted;
        finished += ps.finished();
    }
    assert_eq!(admitted, finished);
    assert_eq!(admitted, 4 * 3 * 2, "2 admissions per round per submitter");
    let sched = stats.scheduler;
    assert_eq!(sched.queries_submitted, sched.queries_completed);
    let report = service.drain(JOIN_BOUND);
    assert!(report.clean, "{report:?}");
}
