//! Determinism of the morsel-parallel executor: parallel TPC-H Q1, Q3 and
//! Q6 must return results identical to the single-threaded engine for 1,
//! 2, 4 and 8 workers — bit-identical wherever the merge reproduces the
//! sequential addition tree (chunk-ordered merges, integer fixed point),
//! and within the repo's established float tolerance elsewhere.

use adaptvm::relational::join::{AdaptiveJoinChain, HashTable};
use adaptvm::relational::parallel::{
    parallel_build_hash_table, parallel_hash_join, q1_parallel_adaptive, q1_parallel_fused,
    q1_parallel_vectorized, q3_parallel, q6_parallel, ParallelJoinChain, ParallelOpts,
};
use adaptvm::relational::tpch;
use adaptvm::storage::{Array, DEFAULT_CHUNK};
use adaptvm::vm::{Strategy, Vm, VmConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rows_bits(rows: &[tpch::Q1Row]) -> Vec<(i64, i64, u64, u64, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.group,
                r.count,
                r.sum_qty.to_bits(),
                r.sum_base.to_bits(),
                r.sum_disc_price.to_bits(),
                r.sum_charge.to_bits(),
            )
        })
        .collect()
}

#[test]
fn q1_vectorized_bit_identical_for_all_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let sequential = rows_bits(&tpch::q1_vectorized(&t, DEFAULT_CHUNK));
    for workers in WORKER_COUNTS {
        let par = q1_parallel_vectorized(
            &t,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows: 8 * DEFAULT_CHUNK,
            },
        );
        assert_eq!(
            rows_bits(&par),
            sequential,
            "vectorized Q1 diverged at {workers} workers"
        );
    }
}

#[test]
fn q1_adaptive_bit_identical_for_all_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let compact = tpch::CompactLineitem::from_table(&t);
    let sequential = rows_bits(&tpch::q1_adaptive(&compact, DEFAULT_CHUNK));
    for workers in WORKER_COUNTS {
        // Integer fixed-point accumulators: exact for any morsel size.
        let par = q1_parallel_adaptive(
            &compact,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows: 3000 + workers * 1000,
            },
        );
        assert_eq!(
            rows_bits(&par),
            sequential,
            "adaptive Q1 diverged at {workers} workers"
        );
    }
}

#[test]
fn q1_fused_deterministic_across_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let reference_bits = rows_bits(&q1_parallel_fused(
        &t,
        ParallelOpts {
            workers: 1,
            morsel_rows: 8192,
        },
    ));
    for workers in WORKER_COUNTS {
        let par = q1_parallel_fused(
            &t,
            ParallelOpts {
                workers,
                morsel_rows: 8192,
            },
        );
        // Bit-identical across worker counts (same morsel partials, same
        // ordered merge)…
        assert_eq!(rows_bits(&par), reference_bits, "workers={workers}");
        // …and equal to the sequential fused loop within fp tolerance.
        assert!(
            tpch::q1_results_match(&tpch::q1_fused(&t), &par),
            "fused Q1 diverged at {workers} workers"
        );
    }
}

/// Q6 with one-chunk morsels: the revenue fold reproduces the sequential
/// VM's addition tree, so results are bit-identical to the single-threaded
/// engine under every execution strategy.
#[test]
fn q6_bit_identical_to_single_threaded_engine_every_strategy() {
    let t = tpch::lineitem(30_000, 7);
    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        // Single-threaded engine run.
        let vm = Vm::new(config.clone());
        let (out, _) = vm
            .run(
                &tpch::q6_program(t.rows() as i64, 1000),
                tpch::q6_buffers(&t),
            )
            .unwrap();
        let sequential = out.output("revenue").unwrap().as_f64().unwrap()[0];

        for workers in WORKER_COUNTS {
            let (rev, report) = q6_parallel(
                &t,
                1000,
                config.clone(),
                ParallelOpts {
                    workers,
                    morsel_rows: config.chunk_size,
                },
            )
            .unwrap();
            assert_eq!(
                rev.to_bits(),
                sequential.to_bits(),
                "{strategy:?} Q6 diverged at {workers} workers"
            );
            assert_eq!(
                report.per_worker_morsels.iter().sum::<u64>(),
                report.morsels as u64
            );
        }
    }
}

/// The Q3-style join: exact fixed-point revenue makes the morsel-parallel
/// partitioned hash join bit-identical to the sequential one for every
/// worker count, every probe strategy, and Bloom on/off.
#[test]
fn q3_join_bit_identical_for_all_worker_counts_and_strategies() {
    let li = tpch::lineitem_q3(60_000, 10_000, 42);
    let ord = tpch::orders(10_000, 42);
    let date = tpch::SHIPDATE_MAX / 2;
    let reference = tpch::q3_reference(&li, &ord, date);
    let mut bits: Option<u64> = None;
    for strategy in tpch::JoinStrategy::ALL {
        for bloom in [false, true] {
            let seq = tpch::q3_hash(&li, &ord, date, strategy, DEFAULT_CHUNK, bloom).unwrap();
            assert!(
                (seq - reference).abs() / reference.abs().max(1.0) < 1e-9,
                "{strategy:?} bloom={bloom}: {seq} vs {reference}"
            );
            // One fixed-point total across every strategy/bloom variant.
            match bits {
                None => bits = Some(seq.to_bits()),
                Some(b) => assert_eq!(seq.to_bits(), b, "{strategy:?} bloom={bloom}"),
            }
            for workers in WORKER_COUNTS {
                let (rev, _) = q3_parallel(
                    &li,
                    &ord,
                    date,
                    strategy,
                    DEFAULT_CHUNK,
                    bloom,
                    ParallelOpts {
                        workers,
                        morsel_rows: 7_000 + workers * 500,
                    },
                )
                .unwrap();
                assert_eq!(
                    rev.to_bits(),
                    seq.to_bits(),
                    "{strategy:?} bloom={bloom} diverged at {workers} workers"
                );
            }
        }
    }
}

/// The materialized partitioned hash join (duplicate build keys included)
/// returns exactly the sequential probe output for every worker count.
#[test]
fn partitioned_join_output_bit_identical_for_all_worker_counts() {
    let build_keys = Array::from((0..40_000).map(|i| i % 3_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..40_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..80_000).map(|i| (i * 13) % 6_000).collect();
    let sequential = HashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = sequential.probe(&probe_keys);
    for workers in WORKER_COUNTS {
        let built = parallel_build_hash_table(
            &build_keys,
            &build_pays,
            true,
            ParallelOpts {
                workers,
                morsel_rows: 9_000,
            },
        )
        .unwrap();
        assert_eq!(built.len(), sequential.len(), "workers={workers}");
        let (_, out) = parallel_hash_join(
            &build_keys,
            &build_pays,
            &probe_keys,
            true,
            ParallelOpts {
                workers,
                morsel_rows: 9_000,
            },
        )
        .unwrap();
        assert_eq!(out.indices, seq_idx, "workers={workers}");
        assert_eq!(out.payloads, seq_pay, "workers={workers}");
    }
}

/// The parallel adaptive join chain returns the sequential chain's exact
/// results batch by batch, for every worker count, while its merged
/// selectivity stats still steer the order to the selective join.
#[test]
fn parallel_join_chain_bit_identical_and_still_adaptive() {
    let build = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 5).collect::<Vec<_>>()),
        )
        .unwrap()
    };
    let probes: Vec<i64> = (0..40_000).map(|i| i % 25_000).collect();
    let keys = [probes.clone(), probes.clone()];
    let mut seq = AdaptiveJoinChain::new(vec![build(20_000), build(2_000)], 2);
    let expected: Vec<_> = (0..8).map(|_| seq.probe_chunk(&keys)).collect();
    assert_eq!(seq.order(), &[1, 0]);
    for workers in WORKER_COUNTS {
        let mut par = ParallelJoinChain::new(vec![build(20_000), build(2_000)], 2);
        for (batch, want) in expected.iter().enumerate() {
            let got = par.probe_batch(
                &keys,
                ParallelOpts {
                    workers,
                    morsel_rows: 6_000,
                },
            );
            assert_eq!(&got, want, "workers={workers} batch={batch}");
        }
        assert_eq!(par.order(), &[1, 0], "workers={workers}");
    }
}

/// Larger (multi-chunk) morsels: still deterministic — the result depends
/// on the morsel plan, never on the worker count or scheduling.
#[test]
fn q6_worker_count_invariant_with_large_morsels() {
    let t = tpch::lineitem(50_000, 13);
    let expected = tpch::q6_reference(&t, 1000);
    let mut bits: Option<u64> = None;
    for workers in WORKER_COUNTS {
        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 4,
            ..VmConfig::default()
        };
        let (rev, _) = q6_parallel(
            &t,
            1000,
            config,
            ParallelOpts {
                workers,
                morsel_rows: 16 * DEFAULT_CHUNK,
            },
        )
        .unwrap();
        match bits {
            None => bits = Some(rev.to_bits()),
            Some(b) => assert_eq!(rev.to_bits(), b, "workers={workers}"),
        }
        assert!(
            (rev - expected).abs() / expected.abs().max(1.0) < 1e-9,
            "workers={workers}: {rev} vs {expected}"
        );
    }
}
