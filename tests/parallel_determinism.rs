//! Determinism of the morsel-parallel executor: parallel TPC-H Q1, Q3 and
//! Q6 must return results identical to the single-threaded engine for 1,
//! 2, 4 and 8 workers — bit-identical wherever the merge reproduces the
//! sequential addition tree (chunk-ordered merges, integer fixed point),
//! and within the repo's established float tolerance elsewhere.

use adaptvm::relational::join::{AdaptiveJoinChain, HashTable};
use adaptvm::relational::parallel::{
    parallel_build_hash_table, parallel_hash_join, q1_parallel_adaptive, q1_parallel_fused,
    q1_parallel_vectorized, q3_parallel, q6_parallel, ParallelJoinChain, ParallelOpts,
};
use adaptvm::relational::tpch;
use adaptvm::storage::{Array, DEFAULT_CHUNK};
use adaptvm::vm::{Strategy, Vm, VmConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rows_bits(rows: &[tpch::Q1Row]) -> Vec<(i64, i64, u64, u64, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.group,
                r.count,
                r.sum_qty.to_bits(),
                r.sum_base.to_bits(),
                r.sum_disc_price.to_bits(),
                r.sum_charge.to_bits(),
            )
        })
        .collect()
}

#[test]
fn q1_vectorized_bit_identical_for_all_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let sequential = rows_bits(&tpch::q1_vectorized(&t, DEFAULT_CHUNK));
    for workers in WORKER_COUNTS {
        let par = q1_parallel_vectorized(
            &t,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows: 8 * DEFAULT_CHUNK,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        assert_eq!(
            rows_bits(&par),
            sequential,
            "vectorized Q1 diverged at {workers} workers"
        );
    }
}

#[test]
fn q1_adaptive_bit_identical_for_all_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let compact = tpch::CompactLineitem::from_table(&t);
    let sequential = rows_bits(&tpch::q1_adaptive(&compact, DEFAULT_CHUNK));
    for workers in WORKER_COUNTS {
        // Integer fixed-point accumulators: exact for any morsel size.
        let par = q1_parallel_adaptive(
            &compact,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows: 3000 + workers * 1000,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        assert_eq!(
            rows_bits(&par),
            sequential,
            "adaptive Q1 diverged at {workers} workers"
        );
    }
}

#[test]
fn q1_fused_deterministic_across_worker_counts() {
    let t = tpch::lineitem(60_000, 42);
    let reference_bits = rows_bits(
        &q1_parallel_fused(
            &t,
            ParallelOpts {
                workers: 1,
                morsel_rows: 8192,
                ..ParallelOpts::default()
            },
        )
        .unwrap(),
    );
    for workers in WORKER_COUNTS {
        let par = q1_parallel_fused(
            &t,
            ParallelOpts {
                workers,
                morsel_rows: 8192,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        // Bit-identical across worker counts (same morsel partials, same
        // ordered merge)…
        assert_eq!(rows_bits(&par), reference_bits, "workers={workers}");
        // …and equal to the sequential fused loop within fp tolerance.
        assert!(
            tpch::q1_results_match(&tpch::q1_fused(&t), &par),
            "fused Q1 diverged at {workers} workers"
        );
    }
}

/// Q6 with one-chunk morsels: the revenue fold reproduces the sequential
/// VM's addition tree, so results are bit-identical to the single-threaded
/// engine under every execution strategy.
#[test]
fn q6_bit_identical_to_single_threaded_engine_every_strategy() {
    let t = tpch::lineitem(30_000, 7);
    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        // Single-threaded engine run.
        let vm = Vm::new(config.clone());
        let (out, _) = vm
            .run(
                &tpch::q6_program(t.rows() as i64, 1000),
                tpch::q6_buffers(&t),
            )
            .unwrap();
        let sequential = out.output("revenue").unwrap().as_f64().unwrap()[0];

        for workers in WORKER_COUNTS {
            let (rev, report) = q6_parallel(
                &t,
                1000,
                config.clone(),
                ParallelOpts {
                    workers,
                    morsel_rows: config.chunk_size,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert_eq!(
                rev.to_bits(),
                sequential.to_bits(),
                "{strategy:?} Q6 diverged at {workers} workers"
            );
            assert_eq!(
                report.per_worker_morsels.iter().sum::<u64>(),
                report.morsels as u64
            );
        }
    }
}

/// The Q3-style join: exact fixed-point revenue makes the morsel-parallel
/// partitioned hash join bit-identical to the sequential one for every
/// worker count, every probe strategy, and Bloom on/off.
#[test]
fn q3_join_bit_identical_for_all_worker_counts_and_strategies() {
    let li = tpch::lineitem_q3(60_000, 10_000, 42);
    let ord = tpch::orders(10_000, 42);
    let date = tpch::SHIPDATE_MAX / 2;
    let reference = tpch::q3_reference(&li, &ord, date);
    let mut bits: Option<u64> = None;
    for strategy in tpch::JoinStrategy::ALL {
        for bloom in [false, true] {
            let seq = tpch::q3_hash(&li, &ord, date, strategy, DEFAULT_CHUNK, bloom).unwrap();
            assert!(
                (seq - reference).abs() / reference.abs().max(1.0) < 1e-9,
                "{strategy:?} bloom={bloom}: {seq} vs {reference}"
            );
            // One fixed-point total across every strategy/bloom variant.
            match bits {
                None => bits = Some(seq.to_bits()),
                Some(b) => assert_eq!(seq.to_bits(), b, "{strategy:?} bloom={bloom}"),
            }
            for workers in WORKER_COUNTS {
                let (rev, _) = q3_parallel(
                    &li,
                    &ord,
                    date,
                    strategy,
                    DEFAULT_CHUNK,
                    bloom,
                    ParallelOpts {
                        workers,
                        morsel_rows: 7_000 + workers * 500,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    rev.to_bits(),
                    seq.to_bits(),
                    "{strategy:?} bloom={bloom} diverged at {workers} workers"
                );
            }
        }
    }
}

/// The materialized partitioned hash join (duplicate build keys included)
/// returns exactly the sequential probe output for every worker count.
#[test]
fn partitioned_join_output_bit_identical_for_all_worker_counts() {
    let build_keys = Array::from((0..40_000).map(|i| i % 3_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..40_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..80_000).map(|i| (i * 13) % 6_000).collect();
    let sequential = HashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = sequential.probe(&probe_keys);
    for workers in WORKER_COUNTS {
        let built = parallel_build_hash_table(
            &build_keys,
            &build_pays,
            true,
            ParallelOpts {
                workers,
                morsel_rows: 9_000,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        assert_eq!(built.len(), sequential.len(), "workers={workers}");
        let (_, out) = parallel_hash_join(
            &build_keys,
            &build_pays,
            &probe_keys,
            true,
            ParallelOpts {
                workers,
                morsel_rows: 9_000,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        assert_eq!(out.indices, seq_idx, "workers={workers}");
        assert_eq!(out.payloads, seq_pay, "workers={workers}");
    }
}

/// The parallel adaptive join chain returns the sequential chain's exact
/// results batch by batch, for every worker count, while its merged
/// selectivity stats still steer the order to the selective join.
#[test]
fn parallel_join_chain_bit_identical_and_still_adaptive() {
    let build = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 5).collect::<Vec<_>>()),
        )
        .unwrap()
    };
    let probes: Vec<i64> = (0..40_000).map(|i| i % 25_000).collect();
    let keys = [probes.clone(), probes.clone()];
    let mut seq = AdaptiveJoinChain::new(vec![build(20_000), build(2_000)], 2);
    let expected: Vec<_> = (0..8).map(|_| seq.probe_chunk(&keys)).collect();
    assert_eq!(seq.order(), &[1, 0]);
    for workers in WORKER_COUNTS {
        let mut par = ParallelJoinChain::new(vec![build(20_000), build(2_000)], 2);
        for (batch, want) in expected.iter().enumerate() {
            let got = par
                .probe_batch(
                    &keys,
                    ParallelOpts {
                        workers,
                        morsel_rows: 6_000,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap();
            assert_eq!(&got, want, "workers={workers} batch={batch}");
        }
        assert_eq!(par.order(), &[1, 0], "workers={workers}");
    }
}

/// Larger (multi-chunk) morsels: still deterministic — the result depends
/// on the morsel plan, never on the worker count or scheduling.
#[test]
fn q6_worker_count_invariant_with_large_morsels() {
    let t = tpch::lineitem(50_000, 13);
    let expected = tpch::q6_reference(&t, 1000);
    let mut bits: Option<u64> = None;
    for workers in WORKER_COUNTS {
        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 4,
            ..VmConfig::default()
        };
        let (rev, _) = q6_parallel(
            &t,
            1000,
            config,
            ParallelOpts {
                workers,
                morsel_rows: 16 * DEFAULT_CHUNK,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        match bits {
            None => bits = Some(rev.to_bits()),
            Some(b) => assert_eq!(rev.to_bits(), b, "workers={workers}"),
        }
        assert!(
            (rev - expected).abs() / expected.abs().max(1.0) < 1e-9,
            "workers={workers}: {rev} vs {expected}"
        );
    }
}

// ---------------------------------------------------------------------------
// Scheduler determinism: every scheduler-based entry point must be
// bit-identical across 1/2/4/8 workers, across interleaved concurrent
// submission of multiple queries, and identical to the scoped-pool path.
// ---------------------------------------------------------------------------

use adaptvm::parallel::Scheduler;

/// Every entry point, scheduler-backed, for every worker count: results
/// bit-identical to the scoped pool over the same plan.
#[test]
fn scheduler_entry_points_bit_identical_across_worker_counts() {
    let t = tpch::lineitem(40_000, 31);
    let compact = tpch::CompactLineitem::from_table(&t);
    let li = tpch::lineitem_q3(30_000, 5_000, 31);
    let ord = tpch::orders(5_000, 31);
    let date = tpch::SHIPDATE_MAX / 2;
    let morsel_rows = 6_000;

    let scoped = ParallelOpts::new(1, morsel_rows);
    let q1v_ref = rows_bits(&q1_parallel_vectorized(&t, DEFAULT_CHUNK, scoped).unwrap());
    let q1a_ref = rows_bits(&q1_parallel_adaptive(&compact, DEFAULT_CHUNK, scoped).unwrap());
    let q1f_ref = rows_bits(&q1_parallel_fused(&t, scoped).unwrap());
    let (q3_ref, _) = q3_parallel(
        &li,
        &ord,
        date,
        tpch::JoinStrategy::Adaptive,
        DEFAULT_CHUNK,
        true,
        scoped,
    )
    .unwrap();

    for workers in WORKER_COUNTS {
        let scheduler = Scheduler::new(workers);
        let opts = ParallelOpts::new(workers, morsel_rows).with_scheduler(&scheduler);
        assert_eq!(
            rows_bits(&q1_parallel_vectorized(&t, DEFAULT_CHUNK, opts).unwrap()),
            q1v_ref,
            "vectorized Q1 diverged at {workers} scheduler workers"
        );
        assert_eq!(
            rows_bits(&q1_parallel_adaptive(&compact, DEFAULT_CHUNK, opts).unwrap()),
            q1a_ref,
            "adaptive Q1 diverged at {workers} scheduler workers"
        );
        assert_eq!(
            rows_bits(&q1_parallel_fused(&t, opts).unwrap()),
            q1f_ref,
            "fused Q1 diverged at {workers} scheduler workers"
        );
        let (q3, _) = q3_parallel(
            &li,
            &ord,
            date,
            tpch::JoinStrategy::Adaptive,
            DEFAULT_CHUNK,
            true,
            opts,
        )
        .unwrap();
        assert_eq!(
            q3.to_bits(),
            q3_ref.to_bits(),
            "Q3 diverged at {workers} scheduler workers"
        );
    }
}

/// Q6 through the VM on a scheduler, every strategy, every worker count:
/// bit-identical to the single-threaded engine (one-chunk morsels make the
/// revenue fold reproduce the sequential addition tree).
#[test]
fn scheduler_q6_bit_identical_to_single_threaded_engine() {
    let t = tpch::lineitem(30_000, 7);
    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        let vm = Vm::new(config.clone());
        let (out, _) = vm
            .run(
                &tpch::q6_program(t.rows() as i64, 1000),
                tpch::q6_buffers(&t),
            )
            .unwrap();
        let sequential = out.output("revenue").unwrap().as_f64().unwrap()[0];
        for workers in WORKER_COUNTS {
            let scheduler = Scheduler::new(workers);
            let opts = ParallelOpts::new(workers, config.chunk_size).with_scheduler(&scheduler);
            let (rev, report) = q6_parallel(&t, 1000, config.clone(), opts).unwrap();
            assert_eq!(
                rev.to_bits(),
                sequential.to_bits(),
                "{strategy:?} Q6 diverged at {workers} scheduler workers"
            );
            assert_eq!(report.workers, workers);
            assert_eq!(
                report.per_worker_morsels.iter().sum::<u64>(),
                report.morsels as u64
            );
        }
    }
}

/// The materialized join and the adaptive join chain on a scheduler:
/// bit-identical to the sequential probe, for every worker count.
#[test]
fn scheduler_joins_bit_identical_to_sequential() {
    let build_keys = Array::from((0..30_000).map(|i| i % 2_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..30_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..60_000).map(|i| (i * 13) % 4_000).collect();
    let sequential = HashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = sequential.probe(&probe_keys);

    let chain_build = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 5).collect::<Vec<_>>()),
        )
        .unwrap()
    };
    let probes: Vec<i64> = (0..30_000).map(|i| i % 20_000).collect();
    let chain_keys = [probes.clone(), probes.clone()];
    let mut seq_chain = AdaptiveJoinChain::new(vec![chain_build(15_000), chain_build(1_500)], 2);
    let chain_expected: Vec<_> = (0..6).map(|_| seq_chain.probe_chunk(&chain_keys)).collect();

    for workers in WORKER_COUNTS {
        let scheduler = Scheduler::new(workers);
        let opts = ParallelOpts::new(workers, 7_000).with_scheduler(&scheduler);
        let built = parallel_build_hash_table(&build_keys, &build_pays, true, opts).unwrap();
        assert_eq!(built.len(), sequential.len(), "workers={workers}");
        let (_, out) =
            parallel_hash_join(&build_keys, &build_pays, &probe_keys, true, opts).unwrap();
        assert_eq!(out.indices, seq_idx, "workers={workers}");
        assert_eq!(out.payloads, seq_pay, "workers={workers}");

        let mut par = ParallelJoinChain::new(vec![chain_build(15_000), chain_build(1_500)], 2);
        for (batch, want) in chain_expected.iter().enumerate() {
            let got = par.probe_batch(&chain_keys, opts).unwrap();
            assert_eq!(&got, want, "workers={workers} batch={batch}");
        }
        assert_eq!(par.order(), seq_chain.order(), "workers={workers}");
    }
}

/// Interleaved concurrent submission: six submitter threads fire Q1/Q3/Q6
/// into ONE shared scheduler at once, twice each. Every concurrent result
/// must be bit-identical to the quiet (single-query) scheduler result and
/// to the scoped-pool result.
#[test]
fn interleaved_concurrent_queries_stay_bit_identical() {
    let scheduler = Scheduler::new(4);
    let t = tpch::lineitem(30_000, 77);
    let compact = tpch::CompactLineitem::from_table(&t);
    let li = tpch::lineitem_q3(25_000, 4_000, 77);
    let ord = tpch::orders(4_000, 77);
    let date = tpch::SHIPDATE_MAX / 2;
    let morsel_rows = 4_000;

    // Quiet references (same scheduler, one query at a time).
    let opts = ParallelOpts::new(4, morsel_rows).with_scheduler(&scheduler);
    let q1_ref = rows_bits(&q1_parallel_vectorized(&t, DEFAULT_CHUNK, opts).unwrap());
    let q1a_ref = rows_bits(&q1_parallel_adaptive(&compact, DEFAULT_CHUNK, opts).unwrap());
    let (q3_ref, _) = q3_parallel(
        &li,
        &ord,
        date,
        tpch::JoinStrategy::Vectorized,
        DEFAULT_CHUNK,
        true,
        opts,
    )
    .unwrap();
    let q6_config = VmConfig {
        strategy: Strategy::Adaptive,
        hot_threshold: 3,
        ..VmConfig::default()
    };
    let (q6_ref, _) = q6_parallel(&t, 1000, q6_config.clone(), opts).unwrap();

    // Interleave: every submitter hammers a different query shape.
    std::thread::scope(|s| {
        for round in 0..2 {
            let mut handles = Vec::new();
            for submitter in 0..6 {
                let scheduler = &scheduler;
                let (t, compact, li, ord) = (&t, &compact, &li, &ord);
                let (q1_ref, q1a_ref) = (&q1_ref, &q1a_ref);
                let q6_config = q6_config.clone();
                handles.push(s.spawn(move || {
                    let opts = ParallelOpts::new(4, morsel_rows).with_scheduler(scheduler);
                    match submitter % 4 {
                        0 => assert_eq!(
                            &rows_bits(&q1_parallel_vectorized(t, DEFAULT_CHUNK, opts).unwrap()),
                            q1_ref,
                            "concurrent vectorized Q1 diverged (round {round})"
                        ),
                        1 => assert_eq!(
                            &rows_bits(
                                &q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts).unwrap()
                            ),
                            q1a_ref,
                            "concurrent adaptive Q1 diverged (round {round})"
                        ),
                        2 => {
                            let (q3, _) = q3_parallel(
                                li,
                                ord,
                                date,
                                tpch::JoinStrategy::Vectorized,
                                DEFAULT_CHUNK,
                                true,
                                opts,
                            )
                            .unwrap();
                            assert_eq!(
                                q3.to_bits(),
                                q3_ref.to_bits(),
                                "concurrent Q3 diverged (round {round})"
                            );
                        }
                        _ => {
                            let (q6, _) = q6_parallel(t, 1000, q6_config.clone(), opts).unwrap();
                            assert_eq!(
                                q6.to_bits(),
                                q6_ref.to_bits(),
                                "concurrent Q6 diverged (round {round})"
                            );
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("submitter panicked");
            }
        }
    });
    let stats = scheduler.stats();
    assert_eq!(stats.queries_submitted, stats.queries_completed);
}

// ---------------------------------------------------------------------------
// Q18 / Q9 determinism sweeps (workers × morsel sizes × Bloom × spill
// budgets) and skew regression properties.
// ---------------------------------------------------------------------------

use adaptvm::parallel::MemoryBudget;
use adaptvm::relational::parallel::{q18_parallel, q9_parallel};
use adaptvm::relational::spill::MAX_SPILL_DEPTH;
use adaptvm::relational::tpch::KeyDist;
use proptest::prelude::*;

fn q18_bits(rows: &[tpch::Q18Row]) -> Vec<(i64, i64, u64, i64)> {
    rows.iter()
        .map(|r| {
            (
                r.o_orderkey,
                r.o_orderdate,
                r.total_qty.to_bits(),
                r.line_count,
            )
        })
        .collect()
}

#[test]
fn q18_bit_identical_across_workers_morsels_and_budgets() {
    for dist in [KeyDist::Uniform, KeyDist::Zipf] {
        let orders = tpch::orders(400, 7);
        let li = tpch::lineitem_q18(30_000, 400, dist, 11);
        let reference = q18_bits(&tpch::q18_reference(&li, &orders, 900.0));
        assert!(!reference.is_empty(), "{dist:?}: degenerate reference");
        for workers in WORKER_COUNTS {
            for morsel_rows in [1_000, 4 * DEFAULT_CHUNK] {
                for budget_bytes in [None, Some(4_000usize), Some(0usize)] {
                    let budget = budget_bytes.map(MemoryBudget::bytes);
                    let mut opts = ParallelOpts::new(workers, morsel_rows);
                    if let Some(b) = budget.as_ref() {
                        opts = opts.with_budget(b);
                    }
                    let label = format!(
                        "{dist:?} workers={workers} morsel={morsel_rows} budget={budget_bytes:?}"
                    );
                    let (rows, spill) = q18_parallel(&li, &orders, 900.0, opts).unwrap();
                    assert_eq!(q18_bits(&rows), reference, "{label}");
                    match budget_bytes {
                        Some(0) => assert!(spill.spilled(), "{label}: {spill:?}"),
                        None => assert!(!spill.spilled(), "{label}: {spill:?}"),
                        _ => {}
                    }
                    assert!(
                        spill.max_recursion_depth <= MAX_SPILL_DEPTH,
                        "{label}: {spill:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn q9_identical_across_workers_bloom_and_batch_sizes() {
    for dist in [KeyDist::Uniform, KeyDist::Zipf] {
        let data = tpch::q9_data(16_000, 200, 64, 8, dist, 23);
        let reference = tpch::q9_reference(&data);
        assert!(!reference.is_empty(), "{dist:?}: degenerate reference");
        for workers in WORKER_COUNTS {
            for bloom in [false, true] {
                for batch_rows in [512, 4_096] {
                    let opts = ParallelOpts::new(workers, 2_048);
                    let (rows, _reorders) = q9_parallel(&data, batch_rows, bloom, 2, opts).unwrap();
                    assert_eq!(
                        rows, reference,
                        "{dist:?} workers={workers} bloom={bloom} batch={batch_rows}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zipf-skewed Q18 under an arbitrary tight budget: the spill path
    /// must stay exact, and grace-hash recursion must stay within its
    /// hard depth cap no matter how hot the hottest key is.
    #[test]
    fn q18_zipf_skew_spills_stay_exact_and_bounded(
        seed in 0u64..64,
        workers in 1usize..5,
        budget_bytes in 0usize..6_000,
    ) {
        let orders = tpch::orders(64, seed);
        let li = tpch::lineitem_q18(6_000, 64, KeyDist::Zipf, seed.wrapping_add(1));
        let reference = q18_bits(&tpch::q18_reference(&li, &orders, 120.0));
        let budget = MemoryBudget::bytes(budget_bytes);
        let opts = ParallelOpts::new(workers, 1_024).with_budget(&budget);
        let (rows, spill) = q18_parallel(&li, &orders, 120.0, opts).unwrap();
        prop_assert_eq!(q18_bits(&rows), reference);
        prop_assert!(spill.max_recursion_depth <= MAX_SPILL_DEPTH, "{:?}", spill);
        // A forced build happens at most once per unsplittable leaf; with
        // 64 distinct keys the leaves are bounded by the key count.
        prop_assert!(spill.forced_builds <= 64, "{:?}", spill);
    }

    /// The all-duplicate-key extreme: every lineitem hits ONE order. The
    /// hot partition can never be split by rehashing, so a zero budget
    /// must take the forced-build path — and still be bit-identical.
    #[test]
    fn q18_single_hot_key_bit_identical_under_forced_builds(
        seed in 0u64..64,
        workers in 1usize..5,
    ) {
        let orders = tpch::orders(1, seed);
        let li = tpch::lineitem_q18(4_000, 1, KeyDist::Uniform, seed.wrapping_add(1));
        let reference = q18_bits(&tpch::q18_reference(&li, &orders, 0.0));
        prop_assert_eq!(reference.len(), 1);
        let budget = MemoryBudget::bytes(0);
        let opts = ParallelOpts::new(workers, 512).with_budget(&budget);
        let (rows, spill) = q18_parallel(&li, &orders, 0.0, opts).unwrap();
        prop_assert_eq!(q18_bits(&rows), reference);
        prop_assert!(spill.spilled(), "{:?}", spill);
        prop_assert!(spill.forced_builds >= 1, "{:?}", spill);
        prop_assert!(spill.max_recursion_depth <= MAX_SPILL_DEPTH, "{:?}", spill);
    }

    /// Zipf-skewed Q9 with a tiny part domain (hot probe keys): Bloom
    /// filters and worker counts must not change the integer-cents
    /// profit totals.
    #[test]
    fn q9_zipf_skew_matches_reference(
        seed in 0u64..64,
        workers in 1usize..5,
        bloom in any::<bool>(),
    ) {
        let data = tpch::q9_data(4_000, 2, 8, 4, KeyDist::Zipf, seed);
        let reference = tpch::q9_reference(&data);
        let opts = ParallelOpts::new(workers, 512);
        let (rows, _) = q9_parallel(&data, 1_024, bloom, 2, opts).unwrap();
        prop_assert_eq!(rows, reference);
    }
}

// ---------------------------------------------------------------------
// Order-by / top-k: external sort sweeps against the stable oracle
// ---------------------------------------------------------------------

use adaptvm::parallel::SpillStats;
use adaptvm::relational::sort::{external_sort, external_top_k, sort_rows};
use adaptvm::relational::workload::Workload;
use adaptvm::storage::ScalarType;

/// Duplicate-heavy keys so stability is load-bearing: equal keys must
/// keep input (morsel) order through every merge shape.
fn dup_heavy_rows(n: usize, seed: i64) -> (Vec<i64>, Vec<i64>) {
    let keys: Vec<i64> = (0..n as i64).map(|i| (i * 131 + seed) % 97).collect();
    let payloads: Vec<i64> = (0..n as i64).collect();
    (keys, payloads)
}

fn check_spill(spill: &SpillStats, budget_bytes: Option<usize>, label: &str) {
    match budget_bytes {
        Some(0) => assert!(spill.spilled(), "{label}: {spill:?}"),
        None => assert!(!spill.spilled(), "{label}: {spill:?}"),
        _ => {}
    }
    assert!(
        spill.max_recursion_depth <= MAX_SPILL_DEPTH,
        "{label}: {spill:?}"
    );
}

#[test]
fn order_by_bit_identical_across_workers_morsels_and_budgets() {
    let (keys, payloads) = dup_heavy_rows(20_000, 7);
    let reference = sort_rows(&keys, &payloads);
    for workers in WORKER_COUNTS {
        for morsel_rows in [512, 4 * DEFAULT_CHUNK] {
            for budget_bytes in [None, Some(16_000usize), Some(0usize)] {
                let budget = budget_bytes.map(MemoryBudget::bytes);
                let mut opts = ParallelOpts::new(workers, morsel_rows);
                if let Some(b) = budget.as_ref() {
                    opts = opts.with_budget(b);
                }
                let label =
                    format!("workers={workers} morsel={morsel_rows} budget={budget_bytes:?}");
                let (got, spill) = external_sort(&keys, &payloads, opts).unwrap();
                assert_eq!(got, reference, "{label}");
                check_spill(&spill, budget_bytes, &label);
            }
        }
    }
}

#[test]
fn top_k_is_the_oracle_prefix_across_workers_and_budgets() {
    let (keys, payloads) = dup_heavy_rows(12_000, 3);
    let (ok, op) = sort_rows(&keys, &payloads);
    for workers in WORKER_COUNTS {
        for k in [0usize, 1, 100, keys.len(), 2 * keys.len()] {
            for budget_bytes in [None, Some(0usize)] {
                let budget = budget_bytes.map(MemoryBudget::bytes);
                let mut opts = ParallelOpts::new(workers, 1_000);
                if let Some(b) = budget.as_ref() {
                    opts = opts.with_budget(b);
                }
                let label = format!("workers={workers} k={k} budget={budget_bytes:?}");
                let ((tk, tp), spill) = external_top_k(&keys, &payloads, k, opts).unwrap();
                let cut = k.min(ok.len());
                assert_eq!(tk.as_slice(), &ok[..cut], "{label}");
                assert_eq!(tp.as_slice(), &op[..cut], "{label}");
                check_spill(&spill, budget_bytes, &label);
            }
        }
    }
}

/// TPC-H Q18's ORDER BY total_qty DESC LIMIT 10 tail: aggregate with the
/// spill-capable join, then top-k on the negated (integer-valued) totals.
/// The ranking must be identical at every worker count and budget.
#[test]
fn q18_order_by_total_desc_top_k_matches_oracle() {
    let orders = tpch::orders(400, 7);
    let li = tpch::lineitem_q18(30_000, 400, KeyDist::Zipf, 11);
    let reference_rows = tpch::q18_reference(&li, &orders, 300.0);
    assert!(reference_rows.len() > 10, "degenerate reference");
    // Totals are integer-valued f64 (sums of 1..=50 quantities), so a
    // negated-i64 key gives an exact descending order; payload keeps the
    // orderkey as a stable tiebreak witness.
    let keys: Vec<i64> = reference_rows
        .iter()
        .map(|r| -(r.total_qty as i64))
        .collect();
    let payloads: Vec<i64> = reference_rows.iter().map(|r| r.o_orderkey).collect();
    let oracle = sort_rows(&keys, &payloads);
    for workers in WORKER_COUNTS {
        for budget_bytes in [None, Some(0usize)] {
            let budget = budget_bytes.map(MemoryBudget::bytes);
            let mut opts = ParallelOpts::new(workers, 1_000);
            if let Some(b) = budget.as_ref() {
                opts = opts.with_budget(b);
            }
            let label = format!("workers={workers} budget={budget_bytes:?}");
            let ((tk, tp), spill) = external_top_k(&keys, &payloads, 10, opts).unwrap();
            assert_eq!(tk.as_slice(), &oracle.0[..10], "{label}");
            assert_eq!(tp.as_slice(), &oracle.1[..10], "{label}");
            check_spill(&spill, budget_bytes, &label);
        }
    }
}

/// Order-by over a **DSL-computed** column: the chunked-loop workload
/// computes `3x + 1` per row (through whatever tier the host supports —
/// native machine code where available), and the computed column feeds
/// the external sort. End to end the ranking must be bit-identical at
/// every worker count, with and without the native tier.
#[test]
fn dsl_computed_column_order_by_is_worker_and_tier_invariant() {
    const SCHEMA: &[(&str, ScalarType)] = &[("xs", ScalarType::I64), ("oi", ScalarType::I64)];
    const SRC: &str = "\
mut i
i := 0
loop {
  let x = read i xs in {
    let scaled = map (\\a -> a * 3 + 1) x in {
      write oi i scaled
      i := i + len(x)
    }
  }
  if i >= 8192 then { break }
}
";
    let workload = Workload::compile(SRC, SCHEMA).unwrap();
    let xs: Vec<i64> = (0..8192i64).map(|k| (k * 37) % 193 - 50).collect();
    let inputs = [("xs", Array::from(xs.clone()))];
    let payloads: Vec<i64> = (0..xs.len() as i64).collect();
    let mut reference: Option<(Vec<i64>, Vec<i64>)> = None;
    for native in [false, true] {
        for workers in WORKER_COUNTS {
            let config = VmConfig {
                strategy: Strategy::Adaptive,
                hot_threshold: 2,
                native,
                ..VmConfig::default()
            };
            let opts = ParallelOpts::new(workers, 1_000);
            let (out, _report) = workload.run(&inputs, config, opts).unwrap();
            let keys = out["oi"].to_i64_vec().expect("oi is i64");
            assert_eq!(keys.len(), xs.len(), "native={native} workers={workers}");
            let sorted = sort_rows(&keys, &payloads);
            let ((gk, gp), _) =
                external_top_k(&keys, &payloads, 64, ParallelOpts::new(workers, 1_000)).unwrap();
            assert_eq!(
                gk.as_slice(),
                &sorted.0[..64],
                "native={native} workers={workers}"
            );
            assert_eq!(
                gp.as_slice(),
                &sorted.1[..64],
                "native={native} workers={workers}"
            );
            match &reference {
                None => reference = Some(sorted),
                Some(r) => {
                    assert_eq!(
                        &sorted, r,
                        "native={native} workers={workers}: ranking diverged"
                    )
                }
            }
        }
    }
}
