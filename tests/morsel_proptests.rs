//! Property-based tests of the morsel layer: every plan — whatever the
//! table size, chunk size, morsel size, or elasticity history — covers
//! every row exactly once, with no gaps and no overlaps.

use adaptvm::parallel::scheduler::{ElasticityConfig, MorselElasticity, ProfileWindow};
use adaptvm::parallel::{MorselPlan, Scheduler};
use proptest::prelude::*;

/// Assert the plan tiles `[0, rows)` exactly: contiguous, ordered,
/// dense-indexed, no gaps, no overlaps, nothing past the end.
fn assert_exact_cover(plan: &MorselPlan, rows: usize) {
    let mut next_start = 0usize;
    for (i, m) in plan.morsels().iter().enumerate() {
        assert_eq!(m.index, i, "dense morsel indices");
        assert_eq!(m.start, next_start, "no gap/overlap at morsel {i}");
        assert!(m.len > 0, "empty morsel {i}");
        next_start = m.end();
    }
    assert_eq!(next_start, rows, "plan must end exactly at the table end");
    let covered: usize = plan.morsels().iter().map(|m| m.len).sum();
    assert_eq!(covered, rows, "every row exactly once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary `(rows, morsel_rows)`: exact coverage.
    #[test]
    fn plan_covers_every_row_exactly_once(
        rows in 0usize..50_000,
        morsel_rows in 0usize..5_000,
    ) {
        let plan = MorselPlan::new(rows, morsel_rows);
        assert_exact_cover(&plan, rows);
    }

    /// Chunk-aligned plans: exact coverage plus alignment of every morsel
    /// but the last.
    #[test]
    fn chunk_aligned_plan_covers_and_aligns(
        rows in 0usize..50_000,
        morsel_rows in 0usize..5_000,
        chunk_rows in 1usize..3_000,
    ) {
        let plan = MorselPlan::chunk_aligned(rows, morsel_rows, chunk_rows);
        assert_exact_cover(&plan, rows);
        prop_assert_eq!(plan.morsel_rows() % chunk_rows, 0, "aligned size");
        if plan.len() > 1 {
            for m in &plan.morsels()[..plan.len() - 1] {
                prop_assert_eq!(m.len % chunk_rows, 0, "all but the last aligned");
            }
        }
    }

    /// The elastic resizing path: drive a `MorselElasticity` controller
    /// through an arbitrary window history and re-plan after every step.
    /// Whatever size the controller lands on, it stays inside its bounds,
    /// stays aligned, and the re-sliced plan still covers exactly.
    #[test]
    fn elastic_resizing_never_breaks_coverage(
        rows in 1usize..60_000,
        start_rows in 1usize..20_000,
        events in prop::collection::vec((0u64..40, 0u64..200, 0u64..60), 1..25),
    ) {
        let config = ElasticityConfig::default();
        let elasticity = MorselElasticity::new(config, start_rows);
        for (steals, trace_executions, fallbacks) in events {
            let window = ProfileWindow {
                morsels: 32,
                steals,
                trace_executions,
                fallbacks,
            };
            let new_rows = elasticity.record(&window);
            prop_assert_eq!(new_rows, elasticity.rows());
            prop_assert!(new_rows >= config.min_rows, "below floor: {}", new_rows);
            prop_assert!(new_rows <= config.max_rows, "above ceiling: {}", new_rows);
            prop_assert_eq!(new_rows % config.align_rows, 0, "unaligned: {}", new_rows);
            let plan = MorselPlan::new(rows, new_rows);
            assert_exact_cover(&plan, rows);
            let aligned = MorselPlan::chunk_aligned(rows, new_rows, config.align_rows);
            assert_exact_cover(&aligned, rows);
        }
    }

    /// Scheduler execution over arbitrary plans: every row is processed
    /// exactly once (sum of per-morsel row counts, and a per-row touch
    /// count), matching the scoped-pool contract.
    #[test]
    fn scheduler_processes_every_row_exactly_once(
        rows in 1usize..20_000,
        morsel_rows in 1usize..3_000,
        workers in 1usize..6,
    ) {
        let scheduler = Scheduler::new(workers);
        let plan = MorselPlan::new(rows, morsel_rows);
        let (per_morsel, stats) = scheduler
            .run(&plan, |_, m| Ok::<(usize, usize), ()>((m.start, m.len)))
            .unwrap();
        prop_assert_eq!(per_morsel.len(), plan.len());
        let mut touched = vec![0u8; rows];
        for (start, len) in per_morsel {
            for t in &mut touched[start..start + len] {
                *t += 1;
            }
        }
        prop_assert!(touched.iter().all(|&c| c == 1), "row touched != once");
        prop_assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
    }
}
