//! Out-of-core aggregation and external sort correctness: every operator
//! on the `SpillableOp` protocol must be **bit-identical** to its
//! sequential oracle whatever the budget — across worker counts and
//! morsel sizes, with budgets forcing zero, some, and all partitions to
//! spill, recursion at least two levels deep, zero budgets, mid-flight
//! cancellation, and a per-tenant budget governing the whole query shape
//! — and budgets must balance to zero afterwards.

use std::sync::Arc;

use adaptvm::kernels::KernelError;
use adaptvm::parallel::{
    CancelToken, MemoryBudget, Priority, QueryService, ServeConfig, TenantQuota, TenantRegistry,
};
use adaptvm::relational::agg::{aggregate_rows, GroupState};
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::sort::{external_sort, external_top_k, sort_rows, SORT_ROW_BYTES};
use adaptvm::relational::spill::{parallel_hash_aggregate_spill, AGG_ROW_BYTES};
use adaptvm::storage::{gen, Array, Field, ScalarType, Schema, Table};
use proptest::prelude::*;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn table_of(keys: Vec<i64>, values: Vec<f64>) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("group", ScalarType::I64),
            Field::new("value", ScalarType::F64),
        ]),
        vec![Array::from(keys), Array::from(values)],
    )
    .unwrap()
}

fn measurement_oracle(table: &Table) -> Vec<(i64, GroupState)> {
    let keys = table.column_by_name("group").unwrap().to_i64_vec().unwrap();
    let values = table
        .column_by_name("value")
        .unwrap()
        .as_f64()
        .unwrap()
        .to_vec();
    aggregate_rows(&keys, &values)
}

#[test]
fn spilled_aggregation_bit_identical_across_workers_and_budgets() {
    // 30k rows over 500 groups of real f64 values: bit-identity means the
    // sums' accumulation order must survive spilling.
    let table = gen::measurements(30_000, 500, 11);
    let oracle = measurement_oracle(&table);

    let footprint = 30_000 * AGG_ROW_BYTES;
    for (label, limit) in [
        ("fits", usize::MAX),
        ("half", footprint / 2),
        ("tiny", 1_000),
        ("zero", 0),
    ] {
        for workers in WORKERS {
            let budget = MemoryBudget::bytes(limit);
            let opts = ParallelOpts::new(workers, 4_096).with_budget(&budget);
            let (groups, spill) =
                parallel_hash_aggregate_spill(&table, "group", "value", opts).unwrap();
            assert_eq!(groups, oracle, "{label} workers={workers}");
            assert_eq!(budget.used(), 0, "{label}: charges must balance");
            match label {
                "fits" => {
                    assert!(!spill.spilled(), "workers={workers}: {spill:?}");
                    assert_eq!(spill.bytes_written, 0);
                }
                "half" => {
                    assert!(spill.spilled(), "half budget must spill something");
                    assert!(
                        spill.partitions_spilled < 16,
                        "half budget must keep some partitions resident: {spill:?}"
                    );
                }
                _ => {
                    assert!(
                        spill.partitions_spilled >= 16,
                        "{label} budget must spill every top-level partition: {spill:?}"
                    );
                    assert!(spill.bytes_read >= spill.bytes_written / 2);
                }
            }
        }
    }
}

#[test]
fn spilled_aggregation_recurses_at_least_two_levels() {
    // 40k distinct keys against a 600-byte budget: a top-level partition
    // holds ~2.5k rows (~140kB), a level-1 sub-partition ~156 rows
    // (~8.7kB) — both above budget, so settling must re-partition at
    // least twice before level-2 sub-partitions (~10 rows) fit.
    let table = gen::measurements(40_000, 40_000, 3);
    let oracle = measurement_oracle(&table);
    let budget = MemoryBudget::bytes(600);
    let (groups, spill) = parallel_hash_aggregate_spill(
        &table,
        "group",
        "value",
        ParallelOpts::new(4, 8_192).with_budget(&budget),
    )
    .unwrap();
    assert_eq!(groups, oracle);
    assert!(
        spill.max_recursion_depth >= 2,
        "expected ≥2 recursion levels: {spill:?}"
    );
    assert!(spill.bytes_read > 0 && spill.bytes_written > 0);
    assert_eq!(budget.used(), 0);
}

#[test]
fn zero_budget_single_group_forces_build() {
    // Every row shares one key (one hash): the partition can never be
    // split, so a zero budget must fall back to a forced build — and
    // still fold the group's rows in exact input order.
    let values: Vec<f64> = (0..500).map(|i| i as f64 * 0.25 - 30.0).collect();
    let table = table_of(vec![7i64; 500], values.clone());
    let budget = MemoryBudget::bytes(0);
    let (groups, spill) = parallel_hash_aggregate_spill(
        &table,
        "group",
        "value",
        ParallelOpts::new(2, 64).with_budget(&budget),
    )
    .unwrap();
    assert_eq!(groups, aggregate_rows(&vec![7i64; 500], &values));
    assert!(spill.forced_builds >= 1, "{spill:?}");
    assert_eq!(budget.used(), 0);
}

#[test]
fn spilled_sort_bit_identical_across_workers_and_budgets() {
    // Duplicate-heavy keys so stability is load-bearing: equal keys must
    // keep their input order through run generation and the k-way merge.
    let keys: Vec<i64> = (0..30_000).map(|i| (i * 7) % 2_000).collect();
    let payloads: Vec<i64> = (0..30_000).collect();
    let oracle = sort_rows(&keys, &payloads);

    let footprint = 30_000 * SORT_ROW_BYTES;
    for (label, limit) in [
        ("fits", usize::MAX),
        ("half", footprint / 2),
        ("tiny", 1_000),
        ("zero", 0),
    ] {
        for workers in WORKERS {
            let budget = MemoryBudget::bytes(limit);
            let opts = ParallelOpts::new(workers, 4_096).with_budget(&budget);
            let (got, spill) = external_sort(&keys, &payloads, opts).unwrap();
            assert_eq!(got, oracle, "{label} workers={workers}");
            assert_eq!(budget.used(), 0, "{label}: charges must balance");
            match label {
                "fits" => assert!(!spill.spilled(), "workers={workers}: {spill:?}"),
                "half" => assert!(spill.spilled(), "half budget must spill something"),
                _ => {
                    // Every sorted run spills (morsel_rows = 4096 → 8 runs).
                    assert!(spill.partitions_spilled >= 4, "{label}: {spill:?}");
                    assert!(spill.bytes_written > 0 && spill.bytes_read > 0);
                }
            }
        }
    }
}

#[test]
fn spilled_top_k_is_a_prefix_of_the_oracle() {
    let keys: Vec<i64> = (0..20_000).map(|i| (i * 131) % 3_000).collect();
    let payloads: Vec<i64> = (0..20_000).collect();
    let oracle = sort_rows(&keys, &payloads);
    let budget = MemoryBudget::bytes(1_000);
    let ((tk, tp), spill) = external_top_k(
        &keys,
        &payloads,
        250,
        ParallelOpts::new(4, 2_048).with_budget(&budget),
    )
    .unwrap();
    assert!(spill.spilled(), "{spill:?}");
    assert_eq!(tk.as_slice(), &oracle.0[..250]);
    assert_eq!(tp.as_slice(), &oracle.1[..250]);
    assert_eq!(budget.used(), 0);
}

#[test]
fn pre_cancelled_spill_agg_and_sort_fail_typed_and_balanced() {
    let table = gen::measurements(5_000, 100, 1);
    let keys: Vec<i64> = (0..5_000).collect();
    let token = CancelToken::new();
    token.cancel();
    let budget = MemoryBudget::bytes(1_000);
    let err = parallel_hash_aggregate_spill(
        &table,
        "group",
        "value",
        ParallelOpts::new(2, 512)
            .with_budget(&budget)
            .with_cancel(&token),
    )
    .unwrap_err();
    assert_eq!(err, KernelError::Cancelled);
    assert_eq!(budget.used(), 0, "aborted aggregation must not leak");
    let err = external_sort(
        &keys,
        &keys,
        ParallelOpts::new(2, 512)
            .with_budget(&budget)
            .with_cancel(&token),
    )
    .unwrap_err();
    assert_eq!(err, KernelError::Cancelled);
    assert_eq!(budget.used(), 0, "aborted sort must not leak");
}

#[test]
fn mid_flight_cancel_is_typed_or_complete() {
    // Cancellation racing a spilling aggregation must either complete
    // exactly or fail typed — never panic, never leak budget.
    let table = gen::measurements(60_000, 1_000, 5);
    let oracle = measurement_oracle(&table);
    let token = CancelToken::new();
    let budget = MemoryBudget::bytes(60_000 * AGG_ROW_BYTES / 2);
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        })
    };
    let result = parallel_hash_aggregate_spill(
        &table,
        "group",
        "value",
        ParallelOpts::new(4, 4_096)
            .with_budget(&budget)
            .with_cancel(&token),
    );
    canceller.join().unwrap();
    match result {
        Ok((groups, _)) => assert_eq!(groups, oracle),
        Err(e) => assert_eq!(e, KernelError::Cancelled),
    }
    assert_eq!(budget.used(), 0);
}

#[test]
fn tenant_budget_governs_group_by_and_sort() {
    // The acceptance bar of the serve layer: a tenant's registered
    // MemoryBudget must bound *any* query shape — here a group-by and a
    // sort, with no explicit budget passed — while staying exact.
    let shared = Arc::new(MemoryBudget::bytes(8 * 1024));
    let mut reg = TenantRegistry::new();
    let tenant = reg.register("etl", TenantQuota::new().with_budget(shared.clone()));
    let service = QueryService::with_tenants(ServeConfig::default().with_workers(2), reg);

    let table = gen::measurements(20_000, 200, 9);
    let oracle = measurement_oracle(&table);
    let opts = ParallelOpts::served(&service, Priority::Normal).with_tenant(tenant);
    let (groups, spill) = parallel_hash_aggregate_spill(&table, "group", "value", opts).unwrap();
    assert_eq!(groups, oracle);
    assert!(
        spill.spilled(),
        "an 8kB tenant budget must force the group-by out of core: {spill:?}"
    );

    let keys: Vec<i64> = (0..20_000).map(|i| (i * 13) % 1_500).collect();
    let payloads: Vec<i64> = (0..20_000).collect();
    let (got, spill) = external_sort(&keys, &payloads, opts).unwrap();
    assert_eq!(got, sort_rows(&keys, &payloads));
    assert!(
        spill.spilled(),
        "the same tenant budget must force the sort out of core: {spill:?}"
    );
    assert_eq!(shared.used(), 0, "tenant budget balances after both");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the data, budget (including zero: everything spills),
    /// morsel size, and worker count: the spilled aggregation equals the
    /// sequential row-order fold bit for bit and the budget balances.
    #[test]
    fn spilled_aggregation_matches_row_order_oracle(
        keys in prop::collection::vec(-20i64..20, 0..300),
        budget_limit in 0usize..20_000,
        morsel_rows in 1usize..200,
        workers in 1usize..5,
    ) {
        let values: Vec<f64> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| i as f64 * 0.75 - k as f64 * 1.5)
            .collect();
        let table = table_of(keys.clone(), values.clone());
        let budget = MemoryBudget::bytes(budget_limit);
        let (groups, _) = parallel_hash_aggregate_spill(
            &table,
            "group",
            "value",
            ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
        ).unwrap();
        prop_assert_eq!(groups, aggregate_rows(&keys, &values));
        prop_assert_eq!(budget.used(), 0);
    }

    /// The external sort equals the stable in-memory sort, and top-k is
    /// always a prefix of it, across budgets, morsel sizes, and workers.
    #[test]
    fn spilled_sort_matches_stable_oracle(
        keys in prop::collection::vec(-50i64..50, 0..400),
        budget_limit in 0usize..10_000,
        morsel_rows in 1usize..150,
        workers in 1usize..5,
        k in 0usize..64,
    ) {
        let payloads: Vec<i64> = (0..keys.len() as i64).collect();
        let oracle = sort_rows(&keys, &payloads);
        let budget = MemoryBudget::bytes(budget_limit);
        let opts = ParallelOpts::new(workers, morsel_rows).with_budget(&budget);
        let (full, _) = external_sort(&keys, &payloads, opts).unwrap();
        prop_assert_eq!(&full, &oracle);
        let ((tk, tp), _) = external_top_k(&keys, &payloads, k, opts).unwrap();
        let cut = k.min(keys.len());
        prop_assert_eq!(tk.as_slice(), &full.0[..cut]);
        prop_assert_eq!(tp.as_slice(), &full.1[..cut]);
        prop_assert_eq!(budget.used(), 0);
    }
}
