//! Property-based query fuzzer: random **well-typed** DSL programs are
//! printed to concrete syntax, re-parsed, run through the naive
//! tree-walking interpreter oracle ([`adaptvm::dsl::oracle`]), and
//! compared against the engine under every VM strategy × worker count ×
//! memory budget, via the DSL→engine bridge
//! ([`adaptvm::relational::workload::Workload`]).
//!
//! Comparison contract (the oracle's documented contract):
//! * ok-ness must match — if the engine errors, the oracle must error
//!   (variants need not match), and vice versa;
//! * `Ok` results must be **bit-identical** (f64 compared by bits).
//!
//! On a divergence the failing program is shrunk — statements dropped,
//! expressions replaced by their own subexpressions, data halved — to a
//! (locally) minimal reproducer, re-verified at every step with the real
//! typechecker, and printed as DSL text via the printer.
//!
//! `QUERY_FUZZ_CASES` overrides the per-suite case count (default 256;
//! CI's debug job sets a smaller quick-mode count, the release job runs
//! the full default).

use std::collections::HashMap;

use adaptvm::dsl::ast::{
    build, ConflictFn, Expr, FoldFn, Lambda, MergeKind, Program, ScalarOp, Stmt,
};
use adaptvm::dsl::oracle::{Oracle, OracleBuffers};
use adaptvm::dsl::parser::parse_program;
use adaptvm::dsl::printer::print_program;
use adaptvm::dsl::typecheck::{check_program, TypeEnv};
use adaptvm::parallel::{MemoryBudget, Priority, QueryService, Scheduler, ServeConfig};
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::workload::Workload;
use adaptvm::storage::{Array, Scalar, ScalarType};
use adaptvm::vm::{Strategy, VmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Fixed buffer schema
// ---------------------------------------------------------------------

const SCHEMA: &[(&str, ScalarType)] = &[
    ("xs", ScalarType::I64),
    ("ys", ScalarType::I64),
    ("fs", ScalarType::F64),
    ("bs", ScalarType::Bool),
    ("ss", ScalarType::Str),
    ("sa", ScalarType::I64), // sorted (merge fodder)
    ("sb", ScalarType::I64), // sorted (merge fodder)
    ("oi", ScalarType::I64),
    ("of", ScalarType::F64),
    ("ob", ScalarType::Bool),
    ("os", ScalarType::Str),
];

fn type_env() -> TypeEnv {
    let mut env = TypeEnv::new();
    for (name, ty) in SCHEMA {
        env = env.with_buffer(name, *ty);
    }
    env
}

fn cases() -> usize {
    std::env::var("QUERY_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

// ---------------------------------------------------------------------
// Random input data
// ---------------------------------------------------------------------

fn gen_data(rng: &mut StdRng) -> Vec<(String, Array)> {
    let n = rng.gen_range(8usize..=48);
    let ints = |rng: &mut StdRng, n: usize| {
        Array::from(
            (0..n)
                .map(|_| rng.gen_range(-1000i64..1000))
                .collect::<Vec<_>>(),
        )
    };
    let xs = ints(rng, n);
    let ys = ints(rng, n);
    let fs = Array::from(
        (0..n)
            .map(|_| rng.gen_range(-200i64..200) as f64 * 0.5)
            .collect::<Vec<f64>>(),
    );
    let bs = Array::from((0..n).map(|_| rng.gen_bool(0.5)).collect::<Vec<bool>>());
    let ss = Array::from(
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0usize..4);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect::<String>()
            })
            .collect::<Vec<String>>(),
    );
    let sorted = |rng: &mut StdRng, n: usize| {
        let mut v: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..50)).collect();
        v.sort_unstable();
        Array::from(v)
    };
    let sa = sorted(rng, n);
    let sb = sorted(rng, n);
    vec![
        ("xs".into(), xs),
        ("ys".into(), ys),
        ("fs".into(), fs),
        ("bs".into(), bs),
        ("ss".into(), ss),
        ("sa".into(), sa),
        ("sb".into(), sb),
    ]
}

// ---------------------------------------------------------------------
// Well-typed program generator
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ty {
    elem: ScalarType,
    array: bool,
}

#[derive(Clone, Default)]
struct Ctx {
    vars: Vec<(String, Ty)>,
    next_id: usize,
}

impl Ctx {
    fn fresh(&mut self, prefix: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("{prefix}{id}")
    }

    fn scalar_var(&self, rng: &mut StdRng, t: ScalarType) -> Option<Expr> {
        let hits: Vec<&String> = self
            .vars
            .iter()
            .filter(|(_, ty)| !ty.array && ty.elem == t)
            .map(|(n, _)| n)
            .collect();
        if hits.is_empty() {
            None
        } else {
            Some(build::var(hits[rng.gen_range(0..hits.len())]))
        }
    }
}

/// Bias knobs per suite: the merge/scatter suite leans on movement
/// skeletons, the general suite on scalar/map/filter/fold shapes.
#[derive(Clone, Copy)]
struct Bias {
    merge_heavy: bool,
}

fn scalar_const(rng: &mut StdRng, t: ScalarType) -> Expr {
    match t {
        ScalarType::F64 => build::float(rng.gen_range(-40i64..40) as f64 * 0.5),
        ScalarType::Bool => build::boolean(rng.gen_bool(0.5)),
        ScalarType::Str => {
            let len = rng.gen_range(0usize..3);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                .collect();
            Expr::Const(Scalar::Str(s))
        }
        _ => build::int(rng.gen_range(-50i64..50)),
    }
}

fn int_buf(rng: &mut StdRng) -> &'static str {
    ["xs", "ys", "sa", "sb"][rng.gen_range(0usize..4)]
}

fn buf_for(rng: &mut StdRng, t: ScalarType) -> &'static str {
    match t {
        ScalarType::F64 => "fs",
        ScalarType::Bool => "bs",
        ScalarType::Str => "ss",
        _ => int_buf(rng),
    }
}

/// An index array guaranteed in-bounds for every input buffer
/// (`abs(v) % 4`, data lengths are ≥ 8): `map (\g -> abs(g) % 4) xs`.
fn safe_index_array(rng: &mut StdRng, ctx: &mut Ctx) -> Expr {
    let p = ctx.fresh("g");
    build::map(
        Lambda::new(
            vec![&p],
            build::bin(
                ScalarOp::Rem,
                build::un(ScalarOp::Abs, build::var(&p)),
                build::int(4),
            ),
        ),
        vec![build::read(build::int(0), int_buf(rng))],
    )
}

fn numeric_operand_types(rng: &mut StdRng, t: ScalarType) -> (ScalarType, ScalarType) {
    if t == ScalarType::F64 {
        // promote(a, b) must be F64: at least one F64 operand.
        match rng.gen_range(0u8..3) {
            0 => (ScalarType::F64, ScalarType::F64),
            1 => (ScalarType::F64, ScalarType::I64),
            _ => (ScalarType::I64, ScalarType::F64),
        }
    } else {
        (ScalarType::I64, ScalarType::I64)
    }
}

const ARITH: [ScalarOp; 7] = [
    ScalarOp::Add,
    ScalarOp::Sub,
    ScalarOp::Mul,
    ScalarOp::Div,
    ScalarOp::Rem,
    ScalarOp::Min,
    ScalarOp::Max,
];

const CMP: [ScalarOp; 6] = [
    ScalarOp::Eq,
    ScalarOp::Ne,
    ScalarOp::Lt,
    ScalarOp::Le,
    ScalarOp::Gt,
    ScalarOp::Ge,
];

fn gen_scalar(
    rng: &mut StdRng,
    ctx: &mut Ctx,
    t: ScalarType,
    depth: usize,
    bias: Bias,
    lam: bool,
) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        if rng.gen_bool(0.4) {
            if let Some(v) = ctx.scalar_var(rng, t) {
                return v;
            }
        }
        return scalar_const(rng, t);
    }
    let d = depth - 1;
    // Inside lambda bodies (`lam`) the body-shape rule forbids nested
    // skeletons, so the fold and len arms are off the menu there.
    match t {
        ScalarType::I64 => match if lam {
            [0u8, 1, 2, 3, 4, 6][rng.gen_range(0usize..6)]
        } else {
            rng.gen_range(0u8..8)
        } {
            0 | 1 => {
                let op = ARITH[rng.gen_range(0..ARITH.len())];
                build::bin(
                    op,
                    gen_scalar(rng, ctx, ScalarType::I64, d, bias, lam),
                    gen_scalar(rng, ctx, ScalarType::I64, d, bias, lam),
                )
            }
            2 => build::un(
                [ScalarOp::Neg, ScalarOp::Abs][rng.gen_range(0usize..2)],
                gen_scalar(rng, ctx, ScalarType::I64, d, bias, lam),
            ),
            3 => {
                let ht = [
                    ScalarType::I64,
                    ScalarType::F64,
                    ScalarType::Bool,
                    ScalarType::Str,
                ][rng.gen_range(0usize..4)];
                build::un(ScalarOp::Hash, gen_scalar(rng, ctx, ht, d, bias, lam))
            }
            4 => build::un(
                ScalarOp::StrLen,
                gen_scalar(rng, ctx, ScalarType::Str, d, bias, lam),
            ),
            5 => {
                let et = random_elem(rng);
                Expr::Len(Box::new(gen_array(rng, ctx, et, d, true, bias)))
            }
            6 => {
                let st =
                    [ScalarType::I64, ScalarType::F64, ScalarType::Bool][rng.gen_range(0usize..3)];
                build::un(
                    ScalarOp::Cast(ScalarType::I64),
                    gen_scalar(rng, ctx, st, d, bias, lam),
                )
            }
            _ => {
                // A numeric fold or a count.
                if rng.gen_bool(0.4) {
                    let et = random_elem(rng);
                    build::fold(
                        FoldFn::Count,
                        build::int(rng.gen_range(0i64..5)),
                        gen_array(rng, ctx, et, d, true, bias),
                    )
                } else {
                    let f = [FoldFn::Sum, FoldFn::Min, FoldFn::Max][rng.gen_range(0usize..3)];
                    build::fold(
                        f,
                        gen_scalar(rng, ctx, ScalarType::I64, 0, bias, lam),
                        gen_array(rng, ctx, ScalarType::I64, d, true, bias),
                    )
                }
            }
        },
        ScalarType::F64 => match rng.gen_range(0u8..if lam { 3 } else { 4 }) {
            0 | 1 => {
                let op = ARITH[rng.gen_range(0..ARITH.len())];
                let (a, b) = numeric_operand_types(rng, ScalarType::F64);
                build::bin(
                    op,
                    gen_scalar(rng, ctx, a, d, bias, lam),
                    gen_scalar(rng, ctx, b, d, bias, lam),
                )
            }
            2 => {
                let st = [ScalarType::I64, ScalarType::F64][rng.gen_range(0usize..2)];
                build::un(ScalarOp::Sqrt, gen_scalar(rng, ctx, st, d, bias, lam))
            }
            _ => {
                let f = [FoldFn::Sum, FoldFn::Min, FoldFn::Max][rng.gen_range(0usize..3)];
                build::fold(
                    f,
                    scalar_const(rng, ScalarType::F64),
                    gen_array(rng, ctx, ScalarType::F64, d, true, bias),
                )
            }
        },
        ScalarType::Bool => match rng.gen_range(0u8..if lam { 3 } else { 4 }) {
            0 | 1 => {
                let op = CMP[rng.gen_range(0..CMP.len())];
                let str_cmp = rng.gen_bool(0.25);
                let (a, b) = if str_cmp {
                    (ScalarType::Str, ScalarType::Str)
                } else {
                    let nt = [ScalarType::I64, ScalarType::F64][rng.gen_range(0usize..2)];
                    numeric_operand_types(rng, nt)
                };
                build::bin(
                    op,
                    gen_scalar(rng, ctx, a, d, bias, lam),
                    gen_scalar(rng, ctx, b, d, bias, lam),
                )
            }
            2 => {
                if rng.gen_bool(0.5) {
                    build::bin(
                        [ScalarOp::And, ScalarOp::Or][rng.gen_range(0usize..2)],
                        gen_scalar(rng, ctx, ScalarType::Bool, d, bias, lam),
                        gen_scalar(rng, ctx, ScalarType::Bool, d, bias, lam),
                    )
                } else {
                    build::un(
                        ScalarOp::Not,
                        gen_scalar(rng, ctx, ScalarType::Bool, d, bias, lam),
                    )
                }
            }
            _ => build::fold(
                [FoldFn::All, FoldFn::Any][rng.gen_range(0usize..2)],
                build::boolean(rng.gen_bool(0.5)),
                gen_array(rng, ctx, ScalarType::Bool, d, true, bias),
            ),
        },
        _ => {
            // Str
            if rng.gen_bool(0.5) {
                build::bin(
                    ScalarOp::Concat,
                    gen_scalar(rng, ctx, ScalarType::Str, d, bias, lam),
                    gen_scalar(rng, ctx, ScalarType::Str, d, bias, lam),
                )
            } else {
                scalar_const(rng, ScalarType::Str)
            }
        }
    }
}

fn random_elem(rng: &mut StdRng) -> ScalarType {
    [
        ScalarType::I64,
        ScalarType::F64,
        ScalarType::Bool,
        ScalarType::Str,
    ][rng.gen_range(0usize..4)]
}

/// A sorted-by-construction i64 array: reads of the sorted buffers
/// composed under merges (every merge kind preserves sortedness).
fn gen_sorted(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return build::read(build::int(0), ["sa", "sb"][rng.gen_range(0usize..2)]);
    }
    let kind = [
        MergeKind::Union,
        MergeKind::Intersect,
        MergeKind::Diff,
        MergeKind::JoinLeftIdx,
        MergeKind::JoinRightIdx,
    ][rng.gen_range(0usize..5)];
    build::merge(kind, gen_sorted(rng, depth - 1), gen_sorted(rng, depth - 1))
}

fn gen_array(
    rng: &mut StdRng,
    ctx: &mut Ctx,
    t: ScalarType,
    depth: usize,
    aligned: bool,
    bias: Bias,
) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return build::read(build::int(0), buf_for(rng, t));
    }
    let d = depth - 1;
    if !aligned
        && t == ScalarType::I64
        && (bias.merge_heavy || rng.gen_bool(0.2))
        && rng.gen_bool(0.6)
    {
        return gen_sorted(rng, d.min(2) + 1);
    }
    let max_choice = if aligned { 4 } else { 7 };
    match rng.gen_range(0u8..max_choice) {
        0 => {
            // map, arity 1 or 2
            let arity = if rng.gen_bool(0.3) { 2 } else { 1 };
            let mut params = Vec::new();
            let mut inputs = Vec::new();
            let mut inner = ctx.clone();
            for _ in 0..arity {
                let pt = random_elem(rng);
                let p = ctx.fresh("p");
                inner.vars.push((
                    p.clone(),
                    Ty {
                        elem: pt,
                        array: false,
                    },
                ));
                params.push(p);
                inputs.push(gen_array(rng, ctx, pt, d, true, bias));
            }
            let body = gen_scalar(rng, &mut inner, t, d, bias, true);
            ctx.next_id = ctx.next_id.max(inner.next_id);
            build::map(
                Lambda::new(params.iter().map(|s| s.as_str()).collect(), body),
                inputs,
            )
        }
        1 => {
            // filter over a t-array; sometimes the kernel fast path shape
            // (a bare comparison of the parameter against a constant).
            let flow = gen_array(rng, ctx, t, d, true, bias);
            let p = ctx.fresh("q");
            let body = if rng.gen_bool(0.5) && t.is_numeric() {
                build::bin(
                    CMP[rng.gen_range(0..CMP.len())],
                    build::var(&p),
                    scalar_const(rng, t),
                )
            } else {
                let mut inner = ctx.clone();
                inner.vars.push((
                    p.clone(),
                    Ty {
                        elem: t,
                        array: false,
                    },
                ));
                let b = gen_scalar(rng, &mut inner, ScalarType::Bool, d.min(2), bias, true);
                ctx.next_id = ctx.next_id.max(inner.next_id);
                b
            };
            build::filter(Lambda::new(vec![&p], body), flow)
        }
        2 => {
            // lifted scalar op over arrays (implicit map)
            if t.is_numeric() {
                let op = ARITH[rng.gen_range(0..ARITH.len())];
                let (a, b) = numeric_operand_types(rng, t);
                let left = gen_array(rng, ctx, a, d, true, bias);
                let right = if rng.gen_bool(0.5) {
                    gen_array(rng, ctx, b, d, true, bias)
                } else {
                    gen_scalar(rng, ctx, b, d, bias, false)
                };
                build::bin(op, left, right)
            } else if t == ScalarType::Bool {
                let op = CMP[rng.gen_range(0..CMP.len())];
                let et = [ScalarType::I64, ScalarType::F64][rng.gen_range(0usize..2)];
                build::bin(
                    op,
                    gen_array(rng, ctx, et, d, true, bias),
                    gen_scalar(rng, ctx, et, d, bias, false),
                )
            } else {
                build::bin(
                    ScalarOp::Concat,
                    gen_array(rng, ctx, ScalarType::Str, d, true, bias),
                    gen_scalar(rng, ctx, ScalarType::Str, d, bias, false),
                )
            }
        }
        3 => {
            // gather through a guaranteed-in-bounds index array
            let idx = safe_index_array(rng, ctx);
            build::gather(idx, buf_for(rng, t))
        }
        4 => {
            // gen: f over 0..k (identity fast path included when the
            // body degenerates to the parameter)
            let p = ctx.fresh("i");
            let mut inner = ctx.clone();
            inner.vars.push((
                p.clone(),
                Ty {
                    elem: ScalarType::I64,
                    array: false,
                },
            ));
            let body = if t == ScalarType::I64 && rng.gen_bool(0.25) {
                build::var(&p)
            } else {
                gen_scalar(rng, &mut inner, t, d.min(2), bias, true)
            };
            ctx.next_id = ctx.next_id.max(inner.next_id);
            build::gen(
                Lambda::new(vec![&p], body),
                build::int(rng.gen_range(0i64..12)),
            )
        }
        5 => build::condense(gen_array(rng, ctx, t, d, true, bias)),
        _ => {
            // read at a non-zero offset (length-skew fodder)
            build::read(build::int(rng.gen_range(0i64..3)), buf_for(rng, t))
        }
    }
}

fn out_buf(t: ScalarType) -> &'static str {
    match t {
        ScalarType::F64 => "of",
        ScalarType::Bool => "ob",
        ScalarType::Str => "os",
        _ => "oi",
    }
}

fn gen_write(rng: &mut StdRng, ctx: &mut Ctx, bias: Bias) -> Stmt {
    let t = random_elem(rng);
    let pos = build::int(rng.gen_range(0i64..3));
    let depth = rng.gen_range(1usize..4);
    let value = if rng.gen_bool(0.6) {
        gen_array(rng, ctx, t, depth, false, bias)
    } else {
        gen_scalar(rng, ctx, t, depth, bias, false)
    };
    build::write(out_buf(t), pos, value)
}

fn gen_scatter(rng: &mut StdRng, ctx: &mut Ctx, bias: Bias) -> Stmt {
    let t = random_elem(rng);
    let conflict = if t == ScalarType::Str {
        ConflictFn::LastWins
    } else {
        [
            ConflictFn::LastWins,
            ConflictFn::Add,
            ConflictFn::Min,
            ConflictFn::Max,
        ][rng.gen_range(0usize..4)]
    };
    let indices = safe_index_array(rng, ctx);
    // The engine's scatter-add on integers is a plain (non-wrapping) add:
    // keep integer add values small so debug builds cannot overflow.
    let value = if t == ScalarType::I64 && conflict == ConflictFn::Add {
        let p = ctx.fresh("s");
        build::map(
            Lambda::new(
                vec![&p],
                build::bin(ScalarOp::Rem, build::var(&p), build::int(1000)),
            ),
            vec![build::read(build::int(0), int_buf(rng))],
        )
    } else if rng.gen_bool(0.7) {
        // Same physical length as the index array (both read whole
        // buffers of the common row count).
        let p = ctx.fresh("s");
        let mut inner = ctx.clone();
        inner.vars.push((
            p.clone(),
            Ty {
                elem: ScalarType::I64,
                array: false,
            },
        ));
        let body = gen_scalar(rng, &mut inner, t, 2, bias, true);
        ctx.next_id = ctx.next_id.max(inner.next_id);
        build::map(
            Lambda::new(vec![&p], body),
            vec![build::read(build::int(0), int_buf(rng))],
        )
    } else {
        gen_array(rng, ctx, t, 2, false, bias)
    };
    Stmt::Scatter {
        target: out_buf(t).to_string(),
        indices,
        value,
        conflict,
    }
}

fn gen_stmts(rng: &mut StdRng, ctx: &mut Ctx, budget: usize, bias: Bias) -> Vec<Stmt> {
    let mut out = Vec::new();
    let n = rng.gen_range(1usize..=budget);
    for _ in 0..n {
        let scatter_p = if bias.merge_heavy { 0.35 } else { 0.15 };
        if rng.gen_bool(scatter_p) {
            out.push(gen_scatter(rng, ctx, bias));
        } else if rng.gen_bool(0.2) && budget > 1 {
            // let-bound intermediate (array or scalar)
            let name = ctx.fresh("v");
            let t = random_elem(rng);
            let depth = rng.gen_range(1usize..3);
            let (value, ty) = if rng.gen_bool(0.5) {
                (
                    gen_array(rng, ctx, t, depth, false, bias),
                    Ty {
                        elem: t,
                        array: true,
                    },
                )
            } else {
                (
                    gen_scalar(rng, ctx, t, depth, bias, false),
                    Ty {
                        elem: t,
                        array: false,
                    },
                )
            };
            let mut inner = ctx.clone();
            inner.vars.push((name.clone(), ty));
            let body = gen_stmts(rng, &mut inner, budget - 1, bias);
            ctx.next_id = ctx.next_id.max(inner.next_id);
            out.push(build::let_in(&name, value, body));
        } else if rng.gen_bool(0.15) {
            // if over a scalar bool
            let cond = gen_scalar(rng, ctx, ScalarType::Bool, 2, bias, false);
            let then = vec![gen_write(rng, ctx, bias)];
            let els = if rng.gen_bool(0.5) {
                vec![gen_write(rng, ctx, bias)]
            } else {
                Vec::new()
            };
            out.push(Stmt::If { cond, then, els });
        } else if rng.gen_bool(0.1) {
            // mut + assign, variable visible to later statements
            let name = ctx.fresh("m");
            let t = random_elem(rng);
            let value = gen_scalar(rng, ctx, t, 2, bias, false);
            out.push(build::declare_mut(&name));
            out.push(build::assign(&name, value));
            ctx.vars.push((
                name,
                Ty {
                    elem: t,
                    array: false,
                },
            ));
        } else {
            out.push(gen_write(rng, ctx, bias));
        }
    }
    out
}

fn gen_program(rng: &mut StdRng, bias: Bias) -> Program {
    let mut ctx = Ctx::default();
    Program::new(gen_stmts(rng, &mut ctx, 4, bias))
}

// ---------------------------------------------------------------------
// Oracle-vs-engine comparison
// ---------------------------------------------------------------------

fn arrays_bit_eq(a: &Array, b: &Array) -> bool {
    if a.scalar_type() != b.scalar_type() || a.len() != b.len() {
        return false;
    }
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return x.iter().zip(y).all(|(l, r)| l.to_bits() == r.to_bits());
    }
    a == b
}

fn maps_bit_eq(a: &HashMap<String, Array>, b: &HashMap<String, Array>) -> Option<String> {
    for (k, av) in a {
        match b.get(k) {
            None => return Some(format!("output {k} missing on one side")),
            Some(bv) if !arrays_bit_eq(av, bv) => {
                return Some(format!("output {k} differs: {av:?} vs {bv:?}"))
            }
            _ => {}
        }
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            return Some(format!("output {k} missing on one side"));
        }
    }
    None
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STRATEGIES: [Strategy; 3] = [
    Strategy::Interpret,
    Strategy::CompiledPipeline,
    Strategy::Adaptive,
];

/// JIT tiers to sweep: on hosts with the native x86-64 backend, every
/// cell runs both natively-dispatched and pinned to the interpreted
/// trace tier (they must be bit-identical); elsewhere only interpreted.
fn native_axis() -> &'static [bool] {
    if adaptvm::vm::native_available() {
        &[true, false]
    } else {
        &[false]
    }
}

/// Run `text` against `data` on oracle and engine matrix. `Ok(())` when
/// every cell agrees with the oracle; `Err(description)` on the first
/// divergence.
fn compare_all(text: &str, data: &[(String, Array)]) -> Result<(), String> {
    let parsed =
        parse_program(text).map_err(|e| format!("printed program fails to reparse: {e}"))?;
    check_program(&parsed, &type_env())
        .map_err(|e| format!("printed program fails to recheck: {e}"))?;

    let mut obuf = OracleBuffers::new();
    for (name, a) in data {
        obuf = obuf.with_input(name, a.clone());
    }
    let oracle_out = Oracle::new(1024).run(&parsed, obuf);

    let workload = match Workload::compile(text, SCHEMA) {
        Ok(w) => w,
        Err(e) => return Err(format!("bridge compile failed after typecheck passed: {e}")),
    };
    let inputs: Vec<(&str, Array)> = data.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();

    let zero = MemoryBudget::bytes(0);
    let tight = MemoryBudget::bytes(256);
    for strategy in STRATEGIES {
        for &native in native_axis() {
            let config = VmConfig {
                strategy,
                native,
                ..VmConfig::default()
            };
            for workers in WORKER_COUNTS {
                for budget in [None, Some(&zero), Some(&tight)] {
                    let mut opts = ParallelOpts {
                        workers,
                        ..ParallelOpts::default()
                    };
                    if let Some(b) = budget {
                        opts = opts.with_budget(b);
                    }
                    let engine = workload.run(&inputs, config.clone(), opts);
                    let cell = format!(
                        "strategy={strategy:?} native={native} workers={workers} budget={:?}",
                        budget.map(|b| b.limit())
                    );
                    match (&oracle_out, engine) {
                        (Err(_), Err(_)) => {}
                        (Ok(o), Ok((e, _))) => {
                            if let Some(diff) = maps_bit_eq(o.outputs(), &e) {
                                return Err(format!("[{cell}] {diff}"));
                            }
                        }
                        (Ok(_), Err(e)) => {
                            return Err(format!("[{cell}] engine errored ({e}), oracle succeeded"))
                        }
                        (Err(e), Ok(_)) => {
                            return Err(format!("[{cell}] oracle errored ({e}), engine succeeded"))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shrinking (the proptest shim has no shrinking — greedy structural
// reduction, candidates re-validated with the real typechecker)
// ---------------------------------------------------------------------

fn expr_children(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Const(_) | Expr::Var(_) => Vec::new(),
        Expr::Apply(_, args) => args.clone(),
        Expr::Len(inner) | Expr::Condense(inner) => vec![(**inner).clone()],
        Expr::Map { f, inputs } => {
            let mut v = inputs.clone();
            v.push(f.body.as_ref().clone());
            v
        }
        Expr::Filter { p, inputs } => {
            let mut v = inputs.clone();
            v.push(p.body.as_ref().clone());
            v
        }
        Expr::Fold { init, input, .. } => vec![(**init).clone(), (**input).clone()],
        Expr::Read { pos, len, .. } => {
            let mut v = vec![(**pos).clone()];
            if let Some(l) = len {
                v.push((**l).clone());
            }
            v
        }
        Expr::Gather { indices, .. } => vec![(**indices).clone()],
        Expr::Gen { f, len } => vec![(**len).clone(), f.body.as_ref().clone()],
        Expr::Merge { left, right, .. } => vec![(**left).clone(), (**right).clone()],
    }
}

fn with_child(e: &Expr, idx: usize, new: Expr) -> Expr {
    let mut out = e.clone();
    match &mut out {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Apply(_, args) => args[idx] = new,
        Expr::Len(inner) | Expr::Condense(inner) => **inner = new,
        Expr::Map { f, inputs } => {
            if idx < inputs.len() {
                inputs[idx] = new;
            } else {
                *f.body = new;
            }
        }
        Expr::Filter { p, inputs } => {
            if idx < inputs.len() {
                inputs[idx] = new;
            } else {
                *p.body = new;
            }
        }
        Expr::Fold { init, input, .. } => {
            if idx == 0 {
                **init = new;
            } else {
                **input = new;
            }
        }
        Expr::Read { pos, len, .. } => {
            if idx == 0 {
                **pos = new;
            } else if let Some(l) = len {
                **l = new;
            }
        }
        Expr::Gather { indices, .. } => **indices = new,
        Expr::Gen { f, len } => {
            if idx == 0 {
                **len = new;
            } else {
                *f.body = new;
            }
        }
        Expr::Merge { left, right, .. } => {
            if idx == 0 {
                **left = new;
            } else {
                **right = new;
            }
        }
    }
    out
}

/// All one-step reductions of an expression: replace the node by one of
/// its children, or reduce a child in place.
fn expr_reductions(e: &Expr) -> Vec<Expr> {
    let children = expr_children(e);
    let mut out = children.clone();
    for (i, c) in children.iter().enumerate() {
        for r in expr_reductions(c) {
            out.push(with_child(e, i, r));
        }
    }
    out
}

fn stmt_reductions(s: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Write { target, pos, value } => {
            for r in expr_reductions(pos) {
                out.push(Stmt::Write {
                    target: target.clone(),
                    pos: r,
                    value: value.clone(),
                });
            }
            for r in expr_reductions(value) {
                out.push(Stmt::Write {
                    target: target.clone(),
                    pos: pos.clone(),
                    value: r,
                });
            }
        }
        Stmt::Scatter {
            target,
            indices,
            value,
            conflict,
        } => {
            for r in expr_reductions(indices) {
                out.push(Stmt::Scatter {
                    target: target.clone(),
                    indices: r,
                    value: value.clone(),
                    conflict: *conflict,
                });
            }
            for r in expr_reductions(value) {
                out.push(Stmt::Scatter {
                    target: target.clone(),
                    indices: indices.clone(),
                    value: r,
                    conflict: *conflict,
                });
            }
        }
        Stmt::Assign { name, expr } => {
            for r in expr_reductions(expr) {
                out.push(Stmt::Assign {
                    name: name.clone(),
                    expr: r,
                });
            }
        }
        Stmt::ExprStmt(e) => {
            for r in expr_reductions(e) {
                out.push(Stmt::ExprStmt(r));
            }
        }
        Stmt::Let { name, expr, body } => {
            for r in expr_reductions(expr) {
                out.push(Stmt::Let {
                    name: name.clone(),
                    expr: r,
                    body: body.clone(),
                });
            }
            for b in stmts_reductions(body) {
                out.push(Stmt::Let {
                    name: name.clone(),
                    expr: expr.clone(),
                    body: b,
                });
            }
        }
        Stmt::If { cond, then, els } => {
            for r in expr_reductions(cond) {
                out.push(Stmt::If {
                    cond: r,
                    then: then.clone(),
                    els: els.clone(),
                });
            }
            for b in stmts_reductions(then) {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then: b,
                    els: els.clone(),
                });
            }
            for b in stmts_reductions(els) {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then: then.clone(),
                    els: b,
                });
            }
        }
        Stmt::Loop(body) => {
            for b in stmts_reductions(body) {
                out.push(Stmt::Loop(b));
            }
        }
        Stmt::DeclareMut { .. } | Stmt::Break => {}
    }
    out
}

fn stmts_reductions(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut removed = stmts.to_vec();
        removed.remove(i);
        out.push(removed);
        for r in stmt_reductions(&stmts[i]) {
            let mut v = stmts.to_vec();
            v[i] = r;
            out.push(v);
        }
    }
    out
}

fn halve_data(data: &[(String, Array)]) -> Option<Vec<(String, Array)>> {
    let n = data.iter().map(|(_, a)| a.len()).max().unwrap_or(0);
    if n <= 4 {
        return None;
    }
    Some(
        data.iter()
            .map(|(name, a)| (name.clone(), a.slice(0, (a.len() / 2).max(4))))
            .collect(),
    )
}

/// Greedy shrink to a fixpoint: keep any candidate (smaller program, or
/// halved data) that still diverges and still typechecks.
fn shrink(
    mut program: Program,
    mut data: Vec<(String, Array)>,
) -> (Program, Vec<(String, Array)>, String) {
    let env = type_env();
    let mut last_err = compare_all(&print_program(&program), &data)
        .expect_err("shrink called on a non-diverging case");
    loop {
        let mut improved = false;
        let before = print_program(&program).len();
        for body in stmts_reductions(&program.stmts) {
            let cand = Program::new(body);
            if check_program(&cand, &env).is_err() {
                continue;
            }
            let text = print_program(&cand);
            if text.len() >= before {
                continue;
            }
            if let Err(e) = compare_all(&text, &data) {
                program = cand;
                last_err = e;
                improved = true;
                break;
            }
        }
        if !improved {
            if let Some(smaller) = halve_data(&data) {
                if let Err(e) = compare_all(&print_program(&program), &smaller) {
                    data = smaller;
                    last_err = e;
                    continue;
                }
            }
            return (program, data, last_err);
        }
    }
}

fn describe_data(data: &[(String, Array)]) -> String {
    data.iter()
        .map(|(n, a)| format!("  {n}: {a:?}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_suite(name: &str, seed_base: u64, bias: Bias) {
    let env = type_env();
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(seed_base.wrapping_add(case as u64));
        let program = gen_program(&mut rng, bias);
        // Generator invariant: every program typechecks as built.
        if let Err(e) = check_program(&program, &env) {
            panic!(
                "{name} case {case}: generator produced an ill-typed program ({e}):\n{}",
                print_program(&program)
            );
        }
        let text = print_program(&program);
        let data = gen_data(&mut rng);
        if let Err(first_err) = compare_all(&text, &data) {
            let (min_p, min_d, min_err) = shrink(program, data);
            panic!(
                "{name} case {case} diverged: {first_err}\n\
                 minimized divergence: {min_err}\n\
                 minimized program:\n{}\nminimized data:\n{}",
                print_program(&min_p),
                describe_data(&min_d)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------

#[test]
fn fuzz_general_programs_match_oracle() {
    run_suite("general", 0x51AD_F00D, Bias { merge_heavy: false });
}

#[test]
fn fuzz_merge_scatter_programs_match_oracle() {
    run_suite("merge-scatter", 0xB0B0_CAFE, Bias { merge_heavy: true });
}

/// Reachability audit: across a fixed generator sweep every `ScalarOp`,
/// `FoldFn`, and `MergeKind` arm must occur (Cast counted once).
#[test]
fn every_op_arm_is_reachable() {
    use std::collections::HashSet;
    let mut ops: HashSet<String> = HashSet::new();
    let mut folds: HashSet<String> = HashSet::new();
    let mut merges: HashSet<String> = HashSet::new();

    fn walk_expr(
        e: &Expr,
        ops: &mut HashSet<String>,
        folds: &mut HashSet<String>,
        merges: &mut HashSet<String>,
    ) {
        if let Expr::Apply(op, _) = e {
            let label = match op {
                ScalarOp::Cast(_) => "cast".to_string(),
                other => other.name().to_string(),
            };
            ops.insert(label);
        }
        if let Expr::Fold { r, .. } = e {
            folds.insert(r.name().to_string());
        }
        if let Expr::Merge { kind, .. } = e {
            merges.insert(kind.name().to_string());
        }
        for c in expr_children(e) {
            walk_expr(&c, ops, folds, merges);
        }
    }
    fn walk_stmts(
        stmts: &[Stmt],
        ops: &mut HashSet<String>,
        folds: &mut HashSet<String>,
        merges: &mut HashSet<String>,
    ) {
        for s in stmts {
            match s {
                Stmt::Write { pos, value, .. } => {
                    walk_expr(pos, ops, folds, merges);
                    walk_expr(value, ops, folds, merges);
                }
                Stmt::Scatter { indices, value, .. } => {
                    walk_expr(indices, ops, folds, merges);
                    walk_expr(value, ops, folds, merges);
                }
                Stmt::Assign { expr, .. } | Stmt::ExprStmt(expr) => {
                    walk_expr(expr, ops, folds, merges)
                }
                Stmt::Let { expr, body, .. } => {
                    walk_expr(expr, ops, folds, merges);
                    walk_stmts(body, ops, folds, merges);
                }
                Stmt::If { cond, then, els } => {
                    walk_expr(cond, ops, folds, merges);
                    walk_stmts(then, ops, folds, merges);
                    walk_stmts(els, ops, folds, merges);
                }
                Stmt::Loop(body) => walk_stmts(body, ops, folds, merges),
                Stmt::DeclareMut { .. } | Stmt::Break => {}
            }
        }
    }

    for suite in [Bias { merge_heavy: false }, Bias { merge_heavy: true }] {
        for case in 0..1024u64 {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ case);
            let p = gen_program(&mut rng, suite);
            walk_stmts(&p.stmts, &mut ops, &mut folds, &mut merges);
        }
    }

    let want_ops = [
        "add", "sub", "mul", "div", "rem", "sqrt", "abs", "neg", "min", "max", "eq", "ne", "lt",
        "le", "gt", "ge", "and", "or", "not", "hash", "cast", "strlen", "concat",
    ];
    for w in want_ops {
        assert!(
            ops.contains(w),
            "ScalarOp arm {w} never generated ({ops:?})"
        );
    }
    for w in ["sum", "min", "max", "count", "all", "any"] {
        assert!(
            folds.contains(w),
            "FoldFn arm {w} never generated ({folds:?})"
        );
    }
    for w in ["union", "intersect", "diff", "join_left", "join_right"] {
        assert!(
            merges.contains(w),
            "MergeKind arm {w} never generated ({merges:?})"
        );
    }
}

// ---------------------------------------------------------------------
// Acceptance: one DSL string, every strategy × executor × budget cell
// bit-identical to the interpreter oracle.
// ---------------------------------------------------------------------

#[test]
fn acceptance_one_program_every_strategy_executor_budget_matches_oracle() {
    const SRC: &str = "\
let base = read 0 xs in {
  let idx = map (\\g -> abs(g) % 4) base in {
    let doubled = map (\\x y -> x * 2 + y) base (read 0 ys) in {
      write oi 0 (condense (filter (\\v -> v > 0) doubled))
      write of 0 (map (\\f -> f * 0.5 + 1.0) (read 0 fs))
      write ob 0 (map (\\x -> x > 1) base)
      write oi 100 (merge union (read 0 sa) (read 0 sb))
      write oi 300 (gather idx xs)
      write oi 500 (fold sum 0 doubled)
    }
  }
}
";
    let mut rng = StdRng::seed_from_u64(0xACCE_97ED);
    let data = gen_data(&mut rng);

    let mut obuf = OracleBuffers::new();
    for (name, a) in &data {
        obuf = obuf.with_input(name, a.clone());
    }
    let oracle = Oracle::new(1024)
        .run(&parse_program(SRC).unwrap(), obuf)
        .expect("oracle must run the acceptance program");

    let workload = Workload::compile(SRC, SCHEMA).unwrap();
    let inputs: Vec<(&str, Array)> = data.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();

    let scheduler = Scheduler::new(4);
    let service = QueryService::new(ServeConfig::default());
    let zero = MemoryBudget::bytes(0);
    let tight = MemoryBudget::bytes(256);
    for strategy in STRATEGIES {
        for &native in native_axis() {
            let config = VmConfig {
                strategy,
                native,
                ..VmConfig::default()
            };
            for workers in [1usize, 4] {
                for executor in ["scoped", "scheduler", "service"] {
                    for budget in [None, Some(&zero), Some(&tight)] {
                        let mut opts = ParallelOpts {
                            workers,
                            ..ParallelOpts::default()
                        };
                        opts = match executor {
                            "scoped" => opts,
                            "scheduler" => opts.with_scheduler(&scheduler),
                            _ => opts.with_service(&service, Priority::Normal),
                        };
                        if let Some(b) = budget {
                            opts = opts.with_budget(b);
                        }
                        let cell = format!(
                            "strategy={strategy:?} native={native} workers={workers} \
                             executor={executor} budget={:?}",
                            budget.map(|b| b.limit())
                        );
                        let (out, _) = workload
                            .run(&inputs, config.clone(), opts)
                            .unwrap_or_else(|e| panic!("[{cell}] engine errored: {e}"));
                        if let Some(diff) = maps_bit_eq(oracle.outputs(), &out) {
                            panic!("[{cell}] diverged from oracle: {diff}");
                        }
                    }
                }
            }
        }
    }
    assert_eq!(zero.used(), 0, "budget charges must be released");
    assert_eq!(tight.used(), 0, "budget charges must be released");
}
