//! Native x86-64 JIT tier: deopt stress and bit-identity.
//!
//! The native tier's contract is that it is **invisible** except for
//! speed: every query answer must be bit-identical to the interpreted
//! trace tier, whether native code runs a chunk to completion or guard-
//! deopts half-way through (type guards, output-capacity guards, and the
//! test-only "fail after N lanes" budget hook). These tests drive whole
//! DSL workloads through the engine at 1/2/4/8 workers with the deopt
//! hooks armed and compare against the interpreted tier bit-for-bit,
//! plus a proptest of the linear-scan allocator invariant (two live
//! intervals never share a register).
//!
//! On hosts without the native backend (non-x86-64, or
//! `ADAPTVM_NATIVE=0`) the engine silently pins the interpreted tier;
//! every test still passes through the fallback path.

use std::collections::HashMap;
use std::sync::Mutex;

use adaptvm::jit::regalloc::{allocate, Interval, Loc};
use adaptvm::jit::{set_native_capacity_limit, set_native_guard_budget};
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::workload::Workload;
use adaptvm::storage::{Array, ScalarType};
use adaptvm::vm::{native_available, Strategy, VmConfig};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The native deopt hooks are process-global; serialize every test that
/// arms them (or depends on them being disarmed).
static HOOKS: Mutex<()> = Mutex::new(());

/// RAII disarm: a panicking assertion must not leave a poisoned budget
/// behind for the next test.
struct Armed;

impl Armed {
    fn guard_budget(lanes: u64) -> Armed {
        set_native_guard_budget(Some(lanes));
        Armed
    }

    fn capacity(limit: u64) -> Armed {
        set_native_capacity_limit(Some(limit));
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        set_native_guard_budget(None);
        set_native_capacity_limit(None);
    }
}

// ---------------------------------------------------------------------
// Workload fixture: i64 + f64 maps, a filter with compaction, folds.
// ---------------------------------------------------------------------

const SCHEMA: &[(&str, ScalarType)] = &[
    ("xs", ScalarType::I64),
    ("fs", ScalarType::F64),
    ("oi", ScalarType::I64),
    ("of", ScalarType::F64),
    ("oacc", ScalarType::I64),
    ("ofacc", ScalarType::F64),
];

const ROWS: usize = 4096;

/// Chunked-loop shape (the fig2 / TPC-H Q6 idiom) so the loop body gets
/// hot, is traced, and — with `native: true` on a capable host — runs as
/// machine code: i64 map + filter + condense (array outputs exercise the
/// capacity guard), a guarded fold over the filtered flow (exercises the
/// guard budget), and an f64 map + fold.
const SRC: &str = "\
mut i
mut k
mut acc
mut facc
i := 0
k := 0
acc := 0
facc := 0.0
loop {
  let x = read i xs in {
    let f = read i fs in {
      let scaled = map (\\a -> a * 3 + 1) x in {
        let t = filter (\\v -> v > 40) scaled in {
          let c = condense t in {
            let g = map (\\a -> a * 0.5 + 1.25) f in {
              let s = fold sum 0 t in {
                let m = fold sum 0.0 g in {
                  write oi k c
                  write of i g
                  acc := acc + s
                  facc := facc + m
                  i := i + len(x)
                  k := k + len(c)
                }
              }
            }
          }
        }
      }
    }
  }
  if i >= 4096 then { break }
}
write oacc 0 acc
write ofacc 0 facc
";

fn fixture_inputs(n: usize, seed: i64) -> Vec<(String, Array)> {
    let xs: Vec<i64> = (0..n as i64).map(|k| (k * 37 + seed) % 97 - 20).collect();
    let fs: Vec<f64> = (0..n as i64)
        .map(|k| ((k * 13 + seed) % 61 - 30) as f64 * 0.375)
        .collect();
    vec![
        ("xs".into(), Array::from(xs)),
        ("fs".into(), Array::from(fs)),
    ]
}

fn run_fixture(
    native: bool,
    workers: usize,
) -> (HashMap<String, Array>, adaptvm::parallel::ParallelRunReport) {
    let workload = Workload::compile(SRC, SCHEMA).unwrap();
    let data = fixture_inputs(ROWS, 5);
    let inputs: Vec<(&str, Array)> = data.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();
    let config = VmConfig {
        strategy: Strategy::Adaptive,
        hot_threshold: 2,
        chunk_size: 64,
        native,
        ..VmConfig::default()
    };
    workload
        .run(
            &inputs,
            config,
            ParallelOpts {
                workers,
                morsel_rows: 256,
                ..ParallelOpts::default()
            },
        )
        .unwrap()
}

fn bits_of(out: &HashMap<String, Array>) -> Vec<(String, Vec<u64>)> {
    let mut v: Vec<(String, Vec<u64>)> = out
        .iter()
        .map(|(k, a)| {
            let bits = match a.as_f64() {
                Some(fs) => fs.iter().map(|f| f.to_bits()).collect(),
                None => a
                    .to_i64_vec()
                    .expect("fixture outputs are numeric")
                    .into_iter()
                    .map(|x| x as u64)
                    .collect(),
            };
            (k.clone(), bits)
        })
        .collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------
// Bit-identity: native vs interpreted tier across worker counts.
// ---------------------------------------------------------------------

#[test]
fn native_tier_bit_identical_across_worker_counts() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    let (reference, _) = run_fixture(false, 1);
    for workers in WORKER_COUNTS {
        let (interp, _) = run_fixture(false, workers);
        assert_eq!(
            bits_of(&reference),
            bits_of(&interp),
            "interpreted tier not deterministic at {workers} workers"
        );
        let (native, report) = run_fixture(true, workers);
        assert_eq!(
            bits_of(&reference),
            bits_of(&native),
            "native tier diverged at {workers} workers"
        );
        if native_available() {
            assert!(
                report.native_trace_executions > 0,
                "native tier never dispatched at {workers} workers: {report:?}"
            );
            assert_eq!(report.native_deopts, 0, "unexpected deopt: {report:?}");
        } else {
            assert_eq!(report.native_trace_executions, 0);
        }
    }
}

#[test]
fn interpreted_pin_reports_no_native_activity() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    let (_, report) = run_fixture(false, 4);
    assert_eq!(report.native_trace_executions, 0);
    assert_eq!(report.native_deopts, 0);
}

// ---------------------------------------------------------------------
// Deopt stress: every guard fires, the answer never changes.
// ---------------------------------------------------------------------

/// The "fail after N lanes" hook: every native chunk run aborts after 7
/// lanes and re-runs interpreted. Results stay bit-identical at every
/// worker count and the deopts are visible in the report.
#[test]
fn guard_budget_deopt_is_bit_identical_across_worker_counts() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    let (reference, _) = run_fixture(false, 1);
    for workers in WORKER_COUNTS {
        let armed = Armed::guard_budget(7);
        let (out, report) = run_fixture(true, workers);
        drop(armed);
        assert_eq!(
            bits_of(&reference),
            bits_of(&out),
            "guard-budget deopt changed results at {workers} workers"
        );
        if native_available() {
            assert!(
                report.native_deopts > 0,
                "a 7-lane budget must deopt guarded chunks: {report:?}"
            );
        }
    }
}

/// Output-capacity guards: native buffers are capped at 3 entries, so
/// every chunk whose filter passes more than 3 lanes deopts mid-write.
/// The partial native buffers are discarded; results stay bit-identical.
#[test]
fn capacity_guard_deopt_is_bit_identical_across_worker_counts() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    let (reference, _) = run_fixture(false, 1);
    for workers in WORKER_COUNTS {
        let armed = Armed::capacity(3);
        let (out, report) = run_fixture(true, workers);
        drop(armed);
        assert_eq!(
            bits_of(&reference),
            bits_of(&out),
            "capacity deopt changed results at {workers} workers"
        );
        if native_available() {
            assert!(
                report.native_deopts > 0,
                "3-entry capacity must deopt compacting chunks: {report:?}"
            );
        }
    }
}

/// A budget larger than any chunk never fires: full native service, zero
/// deopts, and bit-identity with the armed-but-idle hook in place.
#[test]
fn oversized_guard_budget_never_fires() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    let (reference, _) = run_fixture(false, 1);
    let armed = Armed::guard_budget(1 << 40);
    let (out, report) = run_fixture(true, 2);
    drop(armed);
    assert_eq!(bits_of(&reference), bits_of(&out));
    if native_available() {
        assert_eq!(report.native_deopts, 0, "{report:?}");
        assert!(report.native_trace_executions > 0, "{report:?}");
    }
}

/// Type guards: inputs the native code cannot consume deopt *before* the
/// call and fall back to the interpreter — which reproduces the exact
/// interpreted outcome (here: an error), never a wrong answer.
#[test]
fn type_guard_falls_back_to_interpreted_outcome() {
    let _lock = HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    use adaptvm::dsl::depgraph::{scalar_uses, DepGraph};
    use adaptvm::dsl::partition::Region;
    use adaptvm::dsl::programs;
    use adaptvm::jit::build_fragment;
    use adaptvm::jit::compiler::{compile, CostModel};

    let p = programs::fig2_example();
    let body = programs::loop_body(&p).unwrap();
    let g = DepGraph::from_stmts(body);
    let region = Region {
        nodes: (0..g.len()).collect(),
        seed: 0,
        cost: 0.0,
    };
    let frag = build_fragment(&g, &region, &scalar_uses(body), &HashMap::new()).unwrap();
    let trace = compile(frag, &CostModel::untimed());

    // Numeric input: tiered and interpreted agree bit-for-bit.
    let xs = Array::from(vec![3i64, -7, 12, 0, 44]);
    let interp = trace.run(&[&xs], None).unwrap();
    let (tiered, _) = trace.run_tiered(&[&xs], None, true).unwrap();
    assert_eq!(format!("{interp:?}"), format!("{tiered:?}"));

    // String input: the native tier type-deopts and the interpreter's
    // error surfaces unchanged.
    let ss = Array::from(vec!["a".to_string(), "b".to_string()]);
    let ie = trace.run(&[&ss], None).unwrap_err();
    let te = trace.run_tiered(&[&ss], None, true).unwrap_err();
    assert_eq!(format!("{ie}"), format!("{te}"));
}

// ---------------------------------------------------------------------
// Linear-scan allocator invariant.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the interval shapes and pool size: two simultaneously
    /// live intervals never share a register, and call-crossing
    /// (`needs_stack`) intervals always land on the stack.
    #[test]
    fn linear_scan_never_double_books_a_register(
        pool in 1u8..8,
        raw in prop::collection::vec((0u32..80, 1u32..12, any::<bool>()), 0..60),
    ) {
        let intervals: Vec<Interval> = raw
            .iter()
            .map(|&(start, len, needs_stack)| Interval {
                start,
                end: start + len,
                needs_stack,
            })
            .collect();
        let alloc = allocate(&intervals, pool);
        prop_assert_eq!(alloc.locs.len(), intervals.len());
        for (iv, loc) in intervals.iter().zip(&alloc.locs) {
            if iv.needs_stack {
                prop_assert!(
                    matches!(loc, Loc::Stack(_)),
                    "call-crossing interval {:?} got {:?}", iv, loc
                );
            }
            if let Loc::Reg(r) = loc {
                prop_assert!(*r < pool, "register {} out of pool {}", r, pool);
            }
        }
        for i in 0..intervals.len() {
            for j in i + 1..intervals.len() {
                if let (Loc::Reg(ri), Loc::Reg(rj)) = (alloc.locs[i], alloc.locs[j]) {
                    if intervals[i].overlaps(&intervals[j]) {
                        prop_assert!(
                            ri != rj,
                            "{:?} and {:?} overlap but share r{}",
                            intervals[i], intervals[j], ri
                        );
                    }
                }
            }
        }
    }
}
