//! Integration tests for the unified query tracing subsystem
//! (`adaptvm::parallel::obs`): the acceptance path (one TPC-H query
//! through the admission-controlled service yields a profile with
//! admission, morsel, JIT, and spill events), a byte-stable Chrome
//! trace-event golden, and the determinism contracts — merged profiles
//! fingerprint-identical across worker counts and repeated runs, and
//! traced runs bit-identical to untraced ones.

use adaptvm::parallel::serve::{QueryService, ServeConfig};
use adaptvm::parallel::{EventKind, MemoryBudget, Priority, Trace};
use adaptvm::relational::parallel::{
    q18_parallel, q18_parallel_vm, q1_parallel_vectorized, q3_parallel, ParallelOpts,
};
use adaptvm::relational::tpch::{self, KeyDist};
use adaptvm::storage::DEFAULT_CHUNK;
use adaptvm::vm::{Strategy, VmConfig};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn q18_bits(rows: &[tpch::Q18Row]) -> Vec<(i64, i64, u64, i64)> {
    rows.iter()
        .map(|r| {
            (
                r.o_orderkey,
                r.o_orderdate,
                r.total_qty.to_bits(),
                r.line_count,
            )
        })
        .collect()
}

fn q1_bits(rows: &[tpch::Q1Row]) -> Vec<(i64, i64, u64, u64, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.group,
                r.count,
                r.sum_qty.to_bits(),
                r.sum_base.to_bits(),
                r.sum_disc_price.to_bits(),
                r.sum_charge.to_bits(),
            )
        })
        .collect()
}

/// The acceptance path: TPC-H Q18 through the admission-controlled
/// service, with a budget tight enough to spill and the HAVING clause
/// re-evaluated through the adaptive VM. One traced call must produce
/// admission, morsel, JIT, budget, and spill events in a single merged
/// profile — and the traced result must still match the sequential
/// reference bit for bit.
#[test]
fn traced_q18_through_service_captures_every_family() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2),
    );
    let orders = tpch::orders(256, 7);
    let li = tpch::lineitem_q18(20_000, 256, KeyDist::Zipf, 11);
    let reference = q18_bits(&tpch::q18_reference(&li, &orders, 900.0));
    assert!(!reference.is_empty(), "degenerate reference");

    let budget = MemoryBudget::bytes(4_000);
    let trace = Trace::new();
    // Small chunks over the ~256 group sums give the VM loop enough
    // iterations to cross the hot threshold and JIT the HAVING fragment.
    let config = VmConfig {
        chunk_size: 64,
        strategy: Strategy::Adaptive,
        hot_threshold: 2,
        ..VmConfig::default()
    };
    let opts = ParallelOpts::served(&service, Priority::Normal)
        .with_budget(&budget)
        .with_trace(&trace);
    let (rows, spill) = q18_parallel_vm(&li, &orders, 900.0, config, opts).unwrap();
    assert_eq!(q18_bits(&rows), reference);
    assert!(spill.spilled(), "{spill:?}: the 4 kB budget must spill");

    let profile = trace.profile();
    assert_eq!(profile.dropped, 0, "no lane overflowed");
    let r = profile.rollup();
    assert!(r.submitted >= 1, "service admission recorded: {r:?}");
    assert!(r.admitted >= 1, "{r:?}");
    assert!(r.dispatched >= 1, "{r:?}");
    assert!(r.completed >= 1, "{r:?}");
    assert!(r.morsels > 0, "morsel execution recorded: {r:?}");
    assert!(r.rows > 0, "{r:?}");
    assert!(
        r.jit_compiles + r.jit_cache_hits > 0,
        "the VM leg must compile (or cache-inject) the HAVING fragment: {r:?}"
    );
    assert!(r.budget_refusals > 0, "the tight budget refused: {r:?}");
    assert!(r.spill_writes > 0 && r.spill_reads > 0, "{r:?}");
    assert_eq!(
        r.spill_bytes_written, spill.bytes_written,
        "profile and SpillStats agree on bytes out"
    );
    // Spill I/O carries operator attribution from the aggregate.
    assert!(
        profile.any(|k| matches!(k, EventKind::SpillWrite { op: "agg", .. })),
        "spill writes are attributed to the aggregate"
    );
    assert!(profile.any(|k| matches!(k, EventKind::SpillRead { op: "agg", .. })));
    // The exports render without panicking and carry the event stream.
    let summary = profile.summary();
    assert!(summary.contains("query profile:"), "{summary}");
    let json = profile.chrome_trace();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"cat\":\"spill\""));
    assert!(json.contains("\"cat\":\"serve\""));
    service.shutdown();
}

/// The Chrome trace-event export golden: a single-worker Q1 run under a
/// logical clock is a pure function of the plan, so its JSON export is
/// byte-stable. Any change to the export format is a deliberate golden
/// update, not drift.
#[test]
fn chrome_trace_export_matches_golden() {
    let t = tpch::lineitem(4 * DEFAULT_CHUNK, 42);
    let trace = Trace::logical();
    let opts = ParallelOpts::new(1, DEFAULT_CHUNK).with_trace(&trace);
    q1_parallel_vectorized(&t, DEFAULT_CHUNK, opts).unwrap();
    let got = trace.profile().chrome_trace();
    let want = include_str!("golden/obs_chrome_trace.json").trim_end();
    assert_eq!(got, want, "Chrome trace export drifted from the golden");
}

/// Tracing must never change results: traced and untraced runs of Q1,
/// Q3, and (spilling) Q18 are bit-identical.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    // Q1: chunk-ordered merge, bit-exact at any worker count.
    let li_q1 = tpch::lineitem(30_000, 42);
    let untraced = q1_bits(
        &q1_parallel_vectorized(&li_q1, DEFAULT_CHUNK, ParallelOpts::new(4, 5_000)).unwrap(),
    );
    let trace = Trace::new();
    let traced = q1_bits(
        &q1_parallel_vectorized(
            &li_q1,
            DEFAULT_CHUNK,
            ParallelOpts::new(4, 5_000).with_trace(&trace),
        )
        .unwrap(),
    );
    assert_eq!(traced, untraced, "Q1 traced vs untraced");
    assert!(
        trace.profile().rollup().morsels > 0,
        "Q1 was actually traced"
    );

    // Q3: integer fixed-point revenue through the partitioned hash join.
    let li_q3 = tpch::lineitem_q3(25_000, 4_000, 77);
    let ord = tpch::orders(4_000, 77);
    let date = tpch::SHIPDATE_MAX / 2;
    let (rev_untraced, _) = q3_parallel(
        &li_q3,
        &ord,
        date,
        tpch::JoinStrategy::Adaptive,
        DEFAULT_CHUNK,
        false,
        ParallelOpts::new(4, 6_000),
    )
    .unwrap();
    let trace = Trace::new();
    let (rev_traced, _) = q3_parallel(
        &li_q3,
        &ord,
        date,
        tpch::JoinStrategy::Adaptive,
        DEFAULT_CHUNK,
        false,
        ParallelOpts::new(4, 6_000).with_trace(&trace),
    )
    .unwrap();
    assert_eq!(
        rev_traced.to_bits(),
        rev_untraced.to_bits(),
        "Q3 traced vs untraced"
    );
    assert!(
        trace.profile().rollup().morsels > 0,
        "Q3 was actually traced"
    );

    // Q18 under a tight budget: the traced run must take the same spill
    // decisions and produce the same rows.
    let orders = tpch::orders(64, 3);
    let li = tpch::lineitem_q18(6_000, 64, KeyDist::Zipf, 4);
    let budget = MemoryBudget::bytes(3_000);
    let (rows_untraced, spill_untraced) = q18_parallel(
        &li,
        &orders,
        120.0,
        ParallelOpts::new(4, 1_024).with_budget(&budget),
    )
    .unwrap();
    let trace = Trace::new();
    let (rows_traced, spill_traced) = q18_parallel(
        &li,
        &orders,
        120.0,
        ParallelOpts::new(4, 1_024)
            .with_budget(&budget)
            .with_trace(&trace),
    )
    .unwrap();
    assert_eq!(q18_bits(&rows_traced), q18_bits(&rows_untraced));
    assert_eq!(
        spill_traced.bytes_written, spill_untraced.bytes_written,
        "tracing must not change spill decisions"
    );
    assert!(
        spill_traced.spilled(),
        "the budget actually forced spilling"
    );
    let r = trace.profile().rollup();
    assert!(r.spill_writes > 0, "Q18 spill traffic was actually traced");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The merged profile's deterministic fingerprint — morsel work,
    /// spill frames, budget traffic, admission outcomes — is identical
    /// across repeated runs at 1, 2, 4, and 8 workers. (Budget and spill
    /// events are deterministic because the spillable driver charges and
    /// settles sequentially in morsel order.)
    #[test]
    fn q18_profile_fingerprint_is_worker_and_run_invariant(seed in 0u64..32) {
        let orders = tpch::orders(64, seed);
        let li = tpch::lineitem_q18(6_000, 64, KeyDist::Zipf, seed.wrapping_add(1));
        let budget = MemoryBudget::bytes(3_000);
        let mut reference: Option<Vec<String>> = None;
        for workers in WORKER_COUNTS {
            for run in 0..2 {
                let trace = Trace::new();
                let opts = ParallelOpts::new(workers, 1_024)
                    .with_budget(&budget)
                    .with_trace(&trace);
                q18_parallel(&li, &orders, 120.0, opts).unwrap();
                let fp = trace.profile().fingerprint();
                prop_assert!(!fp.is_empty(), "empty fingerprint");
                match &reference {
                    None => reference = Some(fp),
                    Some(r) => prop_assert_eq!(
                        &fp, r,
                        "fingerprint diverged at workers={} run={}", workers, run
                    ),
                }
            }
        }
    }

    /// Q1's fingerprint is likewise run- and worker-invariant — the
    /// pure in-memory pipeline records exactly one morsel line per plan
    /// entry, independent of who executed it.
    #[test]
    fn q1_profile_fingerprint_is_worker_and_run_invariant(seed in 0u64..32) {
        let t = tpch::lineitem(8_000, seed);
        let mut reference: Option<Vec<String>> = None;
        for workers in WORKER_COUNTS {
            for _run in 0..2 {
                let trace = Trace::new();
                let opts = ParallelOpts::new(workers, 1_024).with_trace(&trace);
                q1_parallel_vectorized(&t, DEFAULT_CHUNK, opts).unwrap();
                let fp = trace.profile().fingerprint();
                prop_assert_eq!(fp.len(), 8, "8 morsels of 1024 rows");
                match &reference {
                    None => reference = Some(fp),
                    Some(r) => prop_assert_eq!(&fp, r, "workers={}", workers),
                }
            }
        }
    }
}
