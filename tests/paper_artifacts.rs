//! End-to-end checks of the paper's own artifacts: Table I, Fig. 1,
//! Fig. 2 and Fig. 3 (experiment ids T1, F1, F2, F3 in DESIGN.md).

use adaptvm::dsl::depgraph::DepGraph;
use adaptvm::dsl::partition::{partition, PartitionConfig};
use adaptvm::dsl::programs;
use adaptvm::prelude::*;
use adaptvm::vm::engine::VmState;

/// T1 — every Table I skeleton has pre-compiled kernels.
#[test]
fn t1_table1_conformance() {
    let kernels = adaptvm::kernels::registry::all_kernels();
    for skeleton in ["read", "write", "gather", "scatter", "gen", "condense"] {
        assert!(
            kernels.iter().any(|k| k.op == skeleton),
            "Table I skeleton `{skeleton}` missing from the kernel registry"
        );
    }
    for family in ["map", "filter", "fold", "merge"] {
        assert!(
            kernels.iter().any(|k| k.family == family),
            "Table I family `{family}` missing"
        );
    }
    assert!(kernels.len() > 200, "registry too small: {}", kernels.len());
}

/// F1 — the Fig. 1 state machine goes Interpret → Optimize → GenerateCode
/// → InjectFunctions and keeps producing correct output afterwards.
#[test]
fn f1_state_machine() {
    let n = 128 * 1024i64;
    let data: Vec<i64> = (0..n).map(|i| (i % 11) - 5).collect();
    let config = VmConfig {
        hot_threshold: 6,
        ..VmConfig::default()
    };
    let vm = Vm::new(config);
    let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
    let (out, report) = vm
        .run(&programs::fig2_with_limit(n - 4096), buffers)
        .unwrap();

    let states: Vec<VmState> = report.transitions.iter().map(|t| t.state).collect();
    assert_eq!(
        states,
        vec![
            VmState::Interpret,
            VmState::Optimize,
            VmState::GenerateCode,
            VmState::InjectFunctions
        ]
    );
    // The optimize decision fired exactly at the hot threshold.
    assert_eq!(report.transitions[1].iteration, 6);
    // Compiled execution took over.
    assert!(report.trace_executions > report.iterations / 2);
    // And the answer is still right.
    let (v, w) = programs::fig2_reference(&data, (n - 4096) as usize);
    assert_eq!(out.output("v").unwrap().to_i64_vec().unwrap(), v);
    assert_eq!(out.output("w").unwrap().to_i64_vec().unwrap(), w);
}

/// F2 — the Fig. 2 program produces byte-identical output under every
/// execution strategy and chunk-size regime (footnote 1's claim).
#[test]
fn f2_strategy_equivalence() {
    let n = 32 * 1024i64;
    let data: Vec<i64> = (0..n).map(|i| (i * 37 % 199) - 99).collect();
    let limit = n - 8192;
    let mut reference: Option<(Vec<i64>, Vec<i64>)> = None;
    for (strategy, chunk) in [
        (Strategy::Interpret, 1024),
        (Strategy::Interpret, 1),        // tuple-at-a-time interpretation
        (Strategy::CompiledPipeline, 1), // tuple-at-a-time compiled
        (Strategy::CompiledPipeline, 1024),
        (Strategy::CompiledPipeline, n as usize), // column-at-a-time
        (Strategy::Adaptive, 1024),
    ] {
        let config = VmConfig {
            strategy,
            chunk_size: chunk,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
        let (out, _) = vm.run(&programs::fig2_with_limit(limit), buffers).unwrap();
        let v = out.output("v").unwrap().to_i64_vec().unwrap();
        let w = out.output("w").unwrap().to_i64_vec().unwrap();
        // Processed length depends on the chunk size (whole chunks are
        // consumed before the break check); w must always be the positive
        // subset of v.
        assert_eq!(
            w,
            v.iter().copied().filter(|&x| x > 0).collect::<Vec<_>>(),
            "{strategy:?}/{chunk}"
        );
        if chunk == 1024 {
            match &reference {
                None => reference = Some((v, w)),
                Some((rv, rw)) => {
                    assert_eq!(*rv, v, "{strategy:?} diverged");
                    assert_eq!(*rw, w, "{strategy:?} diverged");
                }
            }
        }
    }
}

/// F3 — the greedy partitioner reproduces the Fig. 3 split exactly.
#[test]
fn f3_partitioning() {
    let p = programs::fig2_example();
    let body = programs::loop_body(&p).unwrap();
    let g = DepGraph::from_stmts(body);
    let parts = partition(&g, &PartitionConfig::default());
    assert_eq!(parts.regions.len(), 2);
    assert!(parts.interpreted.is_empty());
    let mut sets: Vec<Vec<String>> = parts
        .regions
        .iter()
        .map(|r| {
            let mut v: Vec<String> = r.nodes.iter().map(|&id| g.node(id).label.clone()).collect();
            v.sort();
            v
        })
        .collect();
    sets.sort();
    assert_eq!(
        sets,
        vec![
            vec!["condense", "filter", "write w"],
            vec!["map (\\x -> …)", "read some_data", "write v"],
        ]
        .into_iter()
        .map(|v| v.into_iter().map(String::from).collect::<Vec<_>>())
        .collect::<Vec<_>>()
    );
}

/// The §III-A normalization example: sqrt(a²+b²) splits into four
/// single-op functions and still computes correctly through the VM.
#[test]
fn normalization_example_runs() {
    let program = programs::hypot_whole_array();
    let normalized = adaptvm::dsl::normalize::normalize_program(&program);
    let printed = adaptvm::dsl::printer::print_program(&normalized);
    assert_eq!(printed.matches("map (").count(), 4, "{printed}");

    let vm = Vm::adaptive();
    let buffers = Buffers::new()
        .with_input("xs", Array::from(vec![3.0, 5.0, 8.0]))
        .with_input("ys", Array::from(vec![4.0, 12.0, 15.0]));
    let (out, _) = vm.run(&normalized, buffers).unwrap();
    assert_eq!(
        out.output("out").unwrap(),
        &Array::from(vec![5.0, 13.0, 17.0])
    );
}

/// Parse → print → parse round-trip on the Fig. 2 source.
#[test]
fn fig2_parser_roundtrip() {
    let p = programs::fig2_example();
    let printed = adaptvm::dsl::printer::print_program(&p);
    let reparsed = adaptvm::dsl::parser::parse_program(&printed).unwrap();
    assert_eq!(p, reparsed);
}
