//! Concurrency smoke tests: hammer the shared JIT code cache and compile
//! server from many threads at once. These tests assert invariants (no
//! lost inserts beyond capacity, consistent stats, every ticket resolved)
//! rather than timing; under `cargo test` they double as a data-race
//! canary for the `Arc`-shared JIT structures.

use std::collections::HashMap;
use std::sync::Arc;

use adaptvm::dsl::depgraph::{scalar_uses, DepGraph};
use adaptvm::dsl::partition::Region;
use adaptvm::dsl::programs;
use adaptvm::jit::cache::TraceKey;
use adaptvm::jit::compiler::{compile, CompileServer, CompiledTrace, CostModel};
use adaptvm::jit::CodeCache;

fn a_trace() -> Arc<CompiledTrace> {
    let p = programs::fig2_example();
    let body = programs::loop_body(&p).unwrap();
    let g = DepGraph::from_stmts(body);
    let region = Region {
        nodes: (0..g.len()).collect(),
        seed: 0,
        cost: 0.0,
    };
    let frag =
        adaptvm::jit::build_fragment(&g, &region, &scalar_uses(body), &HashMap::new()).unwrap();
    Arc::new(compile(frag, &CostModel::untimed()))
}

fn key(fp: u64, situation: &str) -> TraceKey {
    TraceKey {
        fingerprint: fp,
        situation: situation.to_string(),
    }
}

#[test]
fn code_cache_survives_concurrent_hammering() {
    let cache = Arc::new(CodeCache::new(32));
    let trace = a_trace();
    let threads = 8;
    let rounds = 500;

    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = cache.clone();
            let trace = trace.clone();
            s.spawn(move || {
                for i in 0..rounds {
                    let fp = ((t * rounds + i) % 48) as u64;
                    match i % 4 {
                        0 => cache.insert(key(fp, "a"), trace.clone()),
                        1 => {
                            let _ = cache.get(&key(fp, "a"));
                        }
                        2 => {
                            let _ = cache.situations(fp);
                        }
                        _ => {
                            let (_, _) = cache.get_or_compile(key(fp, "b"), || trace.clone());
                        }
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    // Capacity is a hard bound even under racing inserts.
    assert!(stats.entries <= 32, "{stats:?}");
    // Every get accounted as hit or miss.
    assert!(stats.hits + stats.misses > 0);
    // The cache still works after the storm.
    cache.insert(key(999, "post"), trace.clone());
    assert!(cache.get(&key(999, "post")).is_some());
}

#[test]
fn code_cache_clear_races_with_readers() {
    let cache = Arc::new(CodeCache::new(16));
    let trace = a_trace();
    std::thread::scope(|s| {
        for t in 0..4 {
            let cache = cache.clone();
            let trace = trace.clone();
            s.spawn(move || {
                for i in 0..300 {
                    let fp = (i % 8) as u64;
                    if t == 0 && i % 50 == 0 {
                        cache.clear();
                    } else {
                        cache.insert(key(fp, "x"), trace.clone());
                        let _ = cache.get(&key(fp, "x"));
                    }
                }
            });
        }
    });
    assert!(cache.stats().entries <= 16);
}

#[test]
fn compile_server_resolves_every_ticket_under_concurrency() {
    let server = Arc::new(CompileServer::start(CostModel::untimed()));
    let p = programs::fig2_example();
    let body = programs::loop_body(&p).unwrap();
    let g = DepGraph::from_stmts(body);
    let uses = scalar_uses(body);

    let traces: Vec<Arc<CompiledTrace>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let server = server.clone();
                let g = &g;
                let uses = &uses;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..8 {
                        let region = Region {
                            nodes: (0..g.len()).collect(),
                            seed: 0,
                            cost: 0.0,
                        };
                        let frag = adaptvm::jit::build_fragment(g, &region, uses, &HashMap::new())
                            .unwrap();
                        let ticket = server.submit(frag).unwrap();
                        got.push(server.wait(ticket).unwrap());
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(traces.len(), 48);
    // All compilations of the same fragment agree structurally.
    let fp = traces[0].fingerprint;
    assert!(traces.iter().all(|t| t.fingerprint == fp));
}
