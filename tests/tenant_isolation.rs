//! Multi-tenant serving: isolation, quotas, shedding, elasticity.
//!
//! The properties ISSUE 6 demands of `adaptvm_parallel::serve::tenant`:
//!
//! * **Accounting is exact**: per tenant and per priority,
//!   `admitted + rejected + shed (+ timeouts) == submitted`, and at drain
//!   `finished == admitted` — no submission is double- or un-counted,
//!   even under concurrent hammering.
//! * **Isolation**: one tenant flooding the service at saturation cannot
//!   move a well-behaved tenant's p99 beyond the documented bound
//!   ([`GOLD_P99_BOUND`]), and cannot reject a single one of its queries.
//! * **Shed order** is Batch → Normal → Interactive, driven by sustained
//!   `QueueFull` pressure, with recovery once the backlog drains.
//! * **Determinism**: a tenant-attributed query returns results
//!   bit-identical to the same query submitted anonymously, at 1/2/4/8
//!   workers.
//! * **Quota mechanics**: per-tenant in-flight caps serialize a tenant's
//!   queries without idling the service; queue-depth quotas reject typed
//!   (`TenantQuota`, not `QueueFull`); weights split a contended lane's
//!   dispatches proportionally.
//! * **Elasticity**: the live concurrent-query limit grows under deep
//!   backlog with saturated slots and shrinks back once drained.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use adaptvm::parallel::serve::{
    AdmissionError, Priority, QueryService, ServeConfig, SubmitOpts as ServeOpts, TenantQuota,
    TenantRegistry,
};
use adaptvm::parallel::MorselPlan;
use adaptvm::relational::parallel::{q1_parallel_adaptive, q3_parallel, ParallelOpts};
use adaptvm::relational::tpch;
use adaptvm::storage::DEFAULT_CHUNK;

/// Liveness bound: generous (CI containers are slow, possibly
/// single-core) but finite — a deadlock fails instead of hanging.
const JOIN_BOUND: Duration = Duration::from_secs(120);

/// The documented isolation bound (see ARCHITECTURE.md): with one tenant
/// flooding the service at saturation, a well-behaved tenant submitting
/// short Interactive queries keeps its p99 end-to-end latency under this.
/// Typical observed values are single-digit milliseconds; the bound is
/// generous for slow CI hardware while still far below the unisolated
/// alternative (queue-depth × query-duration behind the flood).
const GOLD_P99_BOUND: Duration = Duration::from_secs(5);

/// Trivial short query: ~`rows` rows in `rows / 10` morsels.
fn short_query(
    service: &QueryService,
    opts: ServeOpts,
    rows: usize,
) -> Result<adaptvm::parallel::serve::ServeHandle<usize, ()>, AdmissionError> {
    service.try_submit(
        opts,
        MorselPlan::new(rows, (rows / 10).max(1)),
        |_, m| Ok::<usize, ()>(m.len),
        |parts, _| parts.iter().sum::<usize>(),
    )
}

/// `unwrap_err` needs `Debug` on the success side; handles are opaque.
#[track_caller]
fn refusal<T, E>(r: Result<T, E>) -> E {
    match r {
        Ok(_) => panic!("expected the submission to be refused"),
        Err(e) => e,
    }
}

/// Exact per-tenant accounting under concurrent mixed-priority hammering:
/// for every tenant (and every priority class),
/// `admitted + rejected + shed == submitted`, and once the service is
/// idle `finished == admitted`.
#[test]
fn per_tenant_accounting_is_exact_under_hammering() {
    let mut reg = TenantRegistry::new();
    let ids = [
        reg.register("acme", TenantQuota::new().with_weight(4)),
        reg.register("burst", TenantQuota::new().with_max_queued(6)),
        reg.register("probe", TenantQuota::new().with_max_in_flight(1)),
    ];
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(8),
        reg,
    );
    let locally_submitted: [AtomicU64; 3] = Default::default();
    std::thread::scope(|s| {
        for (t, &id) in ids.iter().enumerate() {
            for part in 0..2 {
                let service = &service;
                let locally_submitted = &locally_submitted;
                s.spawn(move || {
                    let mut handles = Vec::new();
                    for round in 0..40 {
                        let p = Priority::ALL[(t + part + round) % 3];
                        locally_submitted[t].fetch_add(1, Ordering::Relaxed);
                        match short_query(service, ServeOpts::new(p).with_tenant(id), 1_000) {
                            Ok(h) => handles.push(h),
                            // Any typed refusal is fine — the point is the
                            // counting, not the outcome mix.
                            Err(
                                AdmissionError::QueueFull(_)
                                | AdmissionError::Shed(_)
                                | AdmissionError::TenantQuota(_),
                            ) => {}
                            Err(other) => panic!("unexpected refusal: {other}"),
                        }
                        if handles.len() >= 4 {
                            for h in handles.drain(..) {
                                assert_eq!(
                                    h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
                                    1_000
                                );
                            }
                        }
                    }
                    for h in handles {
                        assert_eq!(
                            h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
                            1_000
                        );
                    }
                });
            }
        }
    });
    let stats = service.stats();
    assert_eq!(stats.tenants.len(), 3);
    for (t, ts) in stats.tenants.iter().enumerate() {
        assert_eq!(
            ts.submitted,
            locally_submitted[t].load(Ordering::Relaxed),
            "{}: every submission counted",
            ts.name
        );
        assert_eq!(
            ts.admitted + ts.rejected() + ts.shed,
            ts.submitted,
            "{}: admitted + rejected + shed == submitted: {ts:?}",
            ts.name
        );
        assert_eq!(
            ts.finished(),
            ts.admitted,
            "{}: all admitted queries reached a terminal outcome: {ts:?}",
            ts.name
        );
        assert_eq!(ts.queued, 0, "{}: idle service has empty queues", ts.name);
        assert_eq!(ts.in_flight, 0, "{}: idle service runs nothing", ts.name);
        assert_eq!(ts.latency.count, ts.finished(), "{}", ts.name);
    }
    // The priority dimension balances too (it additionally saw nothing
    // anonymous here).
    let mut submitted = 0;
    for p in Priority::ALL {
        let ps = stats.priority(p);
        assert_eq!(ps.admitted + ps.rejected() + ps.shed, ps.submitted, "{p}");
        submitted += ps.submitted;
    }
    assert_eq!(
        submitted,
        locally_submitted
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum::<u64>()
    );
    let report = service.drain(JOIN_BOUND);
    assert!(report.clean, "{report:?}");
}

/// The headline isolation property: a flooding tenant saturating the
/// service (to the point of mass rejection) cannot push a well-behaved
/// tenant's p99 past [`GOLD_P99_BOUND`], and cannot cause it a single
/// rejection. The gold tenant outweighs the flooder 16:1 and the flooder
/// is capped to one concurrent query, so gold queries overtake the flood
/// in the queues and only ever wait behind at most a few short queries.
#[test]
fn flooding_tenant_cannot_move_neighbor_p99() {
    let mut reg = TenantRegistry::new();
    let gold = reg.register("gold", TenantQuota::new().with_weight(16));
    let flood = reg.register(
        "flood",
        TenantQuota::new().with_weight(1).with_max_in_flight(1),
    );
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(16),
        reg,
    );
    let stop = AtomicBool::new(false);
    let gold_latencies = Mutex::new(Vec::<Duration>::new());
    std::thread::scope(|s| {
        // Two open-loop flooders hammering Batch and Normal as fast as
        // try_submit returns, ignoring every refusal.
        for _ in 0..2 {
            let service = &service;
            let stop = &stop;
            s.spawn(move || {
                let mut handles = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for p in [Priority::Batch, Priority::Normal] {
                        if let Ok(h) =
                            short_query(service, ServeOpts::new(p).with_tenant(flood), 2_000)
                        {
                            handles.push(h);
                        }
                    }
                    // Reap occasionally so handles don't pile up unbounded.
                    if handles.len() > 64 {
                        for h in handles.drain(..) {
                            let _ = h.join_deadline(JOIN_BOUND).expect("flood query hung");
                        }
                    }
                }
                for h in handles {
                    let _ = h.join_deadline(JOIN_BOUND).expect("flood query hung");
                }
            });
        }
        // The well-behaved tenant: 40 closed-loop Interactive queries.
        let service = &service;
        let gold_latencies = &gold_latencies;
        let stop = &stop;
        s.spawn(move || {
            for _ in 0..40 {
                let t0 = Instant::now();
                let h = service
                    .submit(
                        ServeOpts::interactive().with_tenant(gold),
                        MorselPlan::new(1_000, 100),
                        |_, m| Ok::<usize, ()>(m.len),
                        |parts, _| parts.iter().sum::<usize>(),
                    )
                    .expect("the well-behaved tenant is never refused");
                assert_eq!(
                    h.join_deadline(JOIN_BOUND)
                        .expect("gold query hung")
                        .unwrap(),
                    1_000
                );
                gold_latencies.lock().unwrap().push(t0.elapsed());
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    let mut lat = gold_latencies.into_inner().unwrap();
    lat.sort();
    let p99 = lat[lat.len() * 99 / 100];
    assert!(
        p99 <= GOLD_P99_BOUND,
        "gold p99 {p99:?} exceeded the documented bound {GOLD_P99_BOUND:?}"
    );

    let stats = service.stats();
    let gold_stats = stats.tenant("gold").unwrap();
    let flood_stats = stats.tenant("flood").unwrap();
    assert_eq!(gold_stats.submitted, 40);
    assert_eq!(gold_stats.admitted, 40, "gold is never refused");
    assert_eq!(gold_stats.completed, 40);
    assert_eq!(gold_stats.rejected() + gold_stats.shed, 0);
    // The flood genuinely saturated the service: it was refused (or shed)
    // many times, so the isolation above was earned, not vacuous.
    assert!(
        flood_stats.rejected() + flood_stats.shed > 0,
        "the flood must actually hit the service's limits: {flood_stats:?}"
    );
    assert!(flood_stats.submitted > flood_stats.admitted);
    let report = service.drain(JOIN_BOUND);
    assert!(report.clean, "{report:?}");
}

/// Shed escalation and order, deterministically: with the only slot
/// plugged and every lane full, sustained `QueueFull` rejections shed
/// Batch first, then Normal; Interactive is never shed (it only sees its
/// own `QueueFull`). Once the backlog drains, shedding recovers.
#[test]
fn shed_order_is_batch_then_normal_never_interactive() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1)
            .with_queue_capacity(1),
    );
    // Plug the single slot until released.
    static RELEASE: AtomicBool = AtomicBool::new(false);
    let plug = service
        .try_submit(
            ServeOpts::interactive(),
            MorselPlan::new(1, 1),
            |_, m| {
                while !RELEASE.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    // Wait until the plug holds the slot (its queue entry dispatched).
    let t0 = Instant::now();
    while service.stats().running < 1 {
        assert!(t0.elapsed() < JOIN_BOUND, "plug never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Fill each lane to its capacity of 1.
    let queued: Vec<_> = Priority::ALL
        .iter()
        .map(|&p| short_query(&service, ServeOpts::new(p), 100).unwrap())
        .collect();

    // 8 consecutive Batch QueueFulls escalate to level 1 …
    for i in 0..8 {
        assert_eq!(
            refusal(short_query(&service, ServeOpts::batch(), 100)),
            AdmissionError::QueueFull(Priority::Batch),
            "rejection {i} still pre-shed"
        );
    }
    // … so Batch is now shed (typed), while Normal still sees QueueFull.
    assert_eq!(
        refusal(short_query(&service, ServeOpts::batch(), 100)),
        AdmissionError::Shed(Priority::Batch)
    );
    assert_eq!(service.stats().shed_level, 1);
    for i in 0..8 {
        assert_eq!(
            refusal(short_query(&service, ServeOpts::normal(), 100)),
            AdmissionError::QueueFull(Priority::Normal),
            "rejection {i} at level 1"
        );
    }
    // Level 2: Normal is shed too; Interactive is still only QueueFull.
    assert_eq!(
        refusal(short_query(&service, ServeOpts::normal(), 100)),
        AdmissionError::Shed(Priority::Normal)
    );
    assert_eq!(service.stats().shed_level, 2);
    assert_eq!(
        refusal(short_query(&service, ServeOpts::interactive(), 100)),
        AdmissionError::QueueFull(Priority::Interactive),
        "interactive is never shed"
    );
    let shed_stats = service.stats();
    assert_eq!(shed_stats.priority(Priority::Batch).shed, 1);
    assert_eq!(shed_stats.priority(Priority::Normal).shed, 1);
    assert_eq!(shed_stats.priority(Priority::Interactive).shed, 0);

    // Recovery: release the plug, let the backlog drain to zero, and the
    // next submission resets the shed level and is admitted.
    RELEASE.store(true, Ordering::Relaxed);
    plug.join_deadline(JOIN_BOUND).expect("plug hung").unwrap();
    for h in queued {
        h.join_deadline(JOIN_BOUND)
            .expect("queued query hung")
            .unwrap();
    }
    let h = short_query(&service, ServeOpts::batch(), 100).expect("shedding must recover");
    h.join_deadline(JOIN_BOUND).expect("query hung").unwrap();
    assert_eq!(service.stats().shed_level, 0);
    service.shutdown();
}

/// Determinism: tenant-attributed pipelines return bit-identical results
/// to anonymous submission of the same query, at 1/2/4/8 workers —
/// tenancy decides when a query starts, never what it computes.
#[test]
fn tenant_attributed_results_bit_identical_to_anonymous() {
    let t = tpch::lineitem(24_000, 41);
    let compact = tpch::CompactLineitem::from_table(&t);
    let li = tpch::lineitem_q3(18_000, 2_500, 41);
    let ord = tpch::orders(2_500, 41);
    let date = tpch::SHIPDATE_MAX / 2;
    for workers in [1usize, 2, 4, 8] {
        let mut reg = TenantRegistry::new();
        let id = reg.register(
            "det",
            TenantQuota::new()
                .with_weight(7)
                .with_max_in_flight(2)
                .with_max_queued(32),
        );
        let service = QueryService::with_tenants(ServeConfig::default().with_workers(workers), reg);
        let anon = ParallelOpts::new(workers, 5_000).with_service(&service, Priority::Normal);
        let tenanted = anon.with_tenant(id);

        let a = q1_parallel_adaptive(&compact, DEFAULT_CHUNK, anon).unwrap();
        let b = q1_parallel_adaptive(&compact, DEFAULT_CHUNK, tenanted).unwrap();
        let bits = |rows: &[tpch::Q1Row]| {
            rows.iter()
                .map(|r| (r.group, r.count, r.sum_disc_price.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b), "Q1 at {workers} workers");

        let (ra, _) = q3_parallel(
            &li,
            &ord,
            date,
            tpch::JoinStrategy::Fused,
            DEFAULT_CHUNK,
            true,
            anon,
        )
        .unwrap();
        let (rb, _) = q3_parallel(
            &li,
            &ord,
            date,
            tpch::JoinStrategy::Fused,
            DEFAULT_CHUNK,
            true,
            tenanted,
        )
        .unwrap();
        assert_eq!(ra.to_bits(), rb.to_bits(), "Q3 at {workers} workers");

        // Attribution is visible in the right dimensions: the tenant saw
        // exactly the tenanted submissions (Q1 is one service query, Q3
        // is two — join build + probe), the lane saw both runs, and the
        // anonymous half mirrors the tenanted half exactly.
        let stats = service.stats();
        let ts = stats.tenant("det").unwrap();
        assert!(ts.admitted >= 2, "{ts:?}");
        assert_eq!(ts.completed, ts.admitted, "{ts:?}");
        assert_eq!(ts.rejected() + ts.shed, 0, "{ts:?}");
        assert_eq!(stats.priority(Priority::Normal).completed, 2 * ts.completed);
        service.shutdown();
    }
}

/// A tenant's `max_in_flight = 1` serializes *its* queries (their
/// execution windows never overlap) without idling the rest of the
/// service: an uncapped tenant's queries run concurrently with them.
#[test]
fn in_flight_cap_serializes_one_tenant_without_idling_the_service() {
    let mut reg = TenantRegistry::new();
    let capped = reg.register("capped", TenantQuota::new().with_max_in_flight(1));
    let free = reg.register("free", TenantQuota::new());
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(4)
            .with_queue_capacity(32),
        reg,
    );
    // (start, end) execution windows of the capped tenant's queries:
    // start is stamped by the first morsel task, end by the merge.
    let windows: &'static Mutex<Vec<(Instant, Option<Instant>)>> =
        Box::leak(Box::new(Mutex::new(Vec::new())));
    let mut handles = Vec::new();
    for _ in 0..4 {
        handles.push(
            service
                .submit(
                    ServeOpts::normal().with_tenant(capped),
                    MorselPlan::new(20, 1),
                    move |_, m| {
                        if m.index == 0 {
                            windows.lock().unwrap().push((Instant::now(), None));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                        Ok::<usize, ()>(m.len)
                    },
                    move |parts, _| {
                        windows.lock().unwrap().last_mut().unwrap().1 = Some(Instant::now());
                        parts.iter().sum::<usize>()
                    },
                )
                .unwrap(),
        );
    }
    for _ in 0..4 {
        handles.push(
            service
                .submit(
                    ServeOpts::normal().with_tenant(free),
                    MorselPlan::new(20, 1),
                    |_, m| {
                        std::thread::sleep(Duration::from_millis(2));
                        Ok::<usize, ()>(m.len)
                    },
                    |parts, _| parts.iter().sum::<usize>(),
                )
                .unwrap(),
        );
    }
    for h in handles {
        assert_eq!(
            h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
            20
        );
    }
    let windows = windows.lock().unwrap();
    assert_eq!(windows.len(), 4, "all capped queries ran");
    // The windows are pushed in start order (the cap serializes starts);
    // each must end before the next begins.
    for pair in windows.windows(2) {
        let end = pair[0].1.expect("window closed");
        assert!(
            end <= pair[1].0,
            "capped tenant's queries overlapped: {windows:?}"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.tenant("capped").unwrap().completed, 4);
    assert_eq!(stats.tenant("free").unwrap().completed, 4);
    service.shutdown();
}

/// A tenant at its queue-depth quota is refused with the *typed*
/// `TenantQuota` error — not `QueueFull` — and the refusal neither feeds
/// the shed escalation nor touches other tenants.
#[test]
fn queue_quota_rejects_typed_without_escalating_shed() {
    let mut reg = TenantRegistry::new();
    let small = reg.register("small", TenantQuota::new().with_max_queued(2));
    let other = reg.register("other", TenantQuota::new());
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1)
            .with_queue_capacity(16),
        reg,
    );
    static RELEASE: AtomicBool = AtomicBool::new(false);
    let plug = service
        .try_submit(
            ServeOpts::interactive(),
            MorselPlan::new(1, 1),
            |_, m| {
                while !RELEASE.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let t0 = Instant::now();
    while service.stats().running < 1 {
        assert!(t0.elapsed() < JOIN_BOUND, "plug never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Two queued submissions fill the tenant's quota (across lanes).
    let q1 = short_query(&service, ServeOpts::normal().with_tenant(small), 100).unwrap();
    let q2 = short_query(&service, ServeOpts::batch().with_tenant(small), 100).unwrap();
    // The third is the tenant's problem, typed as such.
    for _ in 0..20 {
        assert_eq!(
            refusal(short_query(
                &service,
                ServeOpts::normal().with_tenant(small),
                100
            )),
            AdmissionError::TenantQuota(small),
        );
    }
    // Even 20 consecutive quota refusals shed nothing…
    assert_eq!(service.stats().shed_level, 0);
    // …and the other tenant (and anonymous traffic) is untouched.
    let q3 = short_query(&service, ServeOpts::normal().with_tenant(other), 100).unwrap();
    let q4 = short_query(&service, ServeOpts::normal(), 100).unwrap();
    RELEASE.store(true, Ordering::Relaxed);
    plug.join_deadline(JOIN_BOUND).expect("plug hung").unwrap();
    for h in [q1, q2, q3, q4] {
        h.join_deadline(JOIN_BOUND).expect("query hung").unwrap();
    }
    let stats = service.stats();
    let ts = stats.tenant("small").unwrap();
    assert_eq!(ts.rejected_quota, 20, "{ts:?}");
    assert_eq!(ts.rejected_full, 0, "quota refusals are not QueueFull");
    assert_eq!(ts.admitted, 2);
    assert_eq!(stats.tenant("other").unwrap().rejected(), 0);
    service.shutdown();
}

/// Stride weights split a contended lane: with tenants of weight 4 and 1
/// backlogged in the same Batch lane behind a plug, the first 10
/// dispatches go ~4:1 to the heavier tenant.
#[test]
fn tenant_weights_split_a_contended_lane() {
    let mut reg = TenantRegistry::new();
    let heavy = reg.register("heavy", TenantQuota::new().with_weight(4));
    let light = reg.register("light", TenantQuota::new().with_weight(1));
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(1)
            .with_max_concurrent(1)
            .with_queue_capacity(32)
            // Keep lane-level aging out of the picture: one lane only.
            .with_age_rounds(10_000),
        reg,
    );
    static RELEASE: AtomicBool = AtomicBool::new(false);
    let plug = service
        .try_submit(
            ServeOpts::batch(),
            MorselPlan::new(1, 1),
            |_, m| {
                while !RELEASE.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok::<usize, ()>(m.len)
            },
            |parts, _| parts.len(),
        )
        .unwrap();
    let t0 = Instant::now();
    while service.stats().running < 1 {
        assert!(t0.elapsed() < JOIN_BOUND, "plug never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    let order: &'static Mutex<Vec<&'static str>> = Box::leak(Box::new(Mutex::new(Vec::new())));
    let mut handles = Vec::new();
    for (id, tag, n) in [(heavy, "heavy", 10), (light, "light", 10)] {
        for _ in 0..n {
            handles.push(
                service
                    .try_submit(
                        ServeOpts::batch().with_tenant(id),
                        MorselPlan::new(10, 10),
                        |_, m| Ok::<usize, ()>(m.len),
                        move |parts, _| {
                            order.lock().unwrap().push(tag);
                            parts.iter().sum::<usize>()
                        },
                    )
                    .unwrap(),
            );
        }
    }
    RELEASE.store(true, Ordering::Relaxed);
    plug.join_deadline(JOIN_BOUND).expect("plug hung").unwrap();
    for h in handles {
        h.join_deadline(JOIN_BOUND).expect("query hung").unwrap();
    }
    let order = order.lock().unwrap().clone();
    assert_eq!(order.len(), 20);
    let heavy_in_first_10 = order[..10].iter().filter(|t| **t == "heavy").count();
    assert!(
        (7..=9).contains(&heavy_in_first_10),
        "weight 4 tenant should take ~8 of the first 10 dispatches, got \
         {heavy_in_first_10}: {order:?}"
    );
    // Everyone finishes — weights share, they don't starve.
    assert_eq!(service.stats().tenant("light").unwrap().completed, 10);
    service.shutdown();
}

/// Concurrency elasticity: deep backlog with saturated slots grows the
/// live limit toward the ceiling; a drained service shrinks it back to
/// the configured floor.
#[test]
fn concurrency_limit_grows_under_backlog_and_shrinks_when_drained() {
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(1)
            .with_elastic_concurrency(4)
            .with_queue_capacity(32),
    );
    assert_eq!(service.stats().concurrent_limit, 1);
    // Saturate: enough slow-ish queries to hold a deep backlog.
    let handles: Vec<_> = (0..24)
        .map(|_| {
            service
                .try_submit(
                    ServeOpts::normal(),
                    MorselPlan::new(40, 1),
                    |_, m| {
                        std::thread::sleep(Duration::from_millis(1));
                        Ok::<usize, ()>(m.len)
                    },
                    |parts, _| parts.iter().sum::<usize>(),
                )
                .unwrap()
        })
        .collect();
    // The dispatcher must observe (backlog ≥ 2 × limit, all slots busy)
    // and double the limit at least once while the backlog lasts.
    let t0 = Instant::now();
    let mut grew = false;
    while t0.elapsed() < JOIN_BOUND {
        let stats = service.stats();
        if stats.grow_events >= 1 && stats.concurrent_limit > 1 {
            grew = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(grew, "elastic limit never grew: {:?}", service.stats());
    for h in handles {
        assert_eq!(
            h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
            40
        );
    }
    // Drained: the limit must come back down to the floor.
    let t0 = Instant::now();
    loop {
        let stats = service.stats();
        if stats.concurrent_limit == 1 && stats.shrink_events >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < JOIN_BOUND,
            "elastic limit never shrank: {stats:?}"
        );
        // Nudge the dispatcher awake with a trivial query.
        short_query(&service, ServeOpts::normal(), 10)
            .unwrap()
            .join_deadline(JOIN_BOUND)
            .expect("nudge query hung")
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = service.stats();
    assert!(stats.grow_events >= 1, "{stats:?}");
    assert!(stats.shrink_events >= 1, "{stats:?}");
    service.shutdown();
}
