//! Integration tests for the adaptive behaviours (experiments B2–B6, B9).

use adaptvm::hetsim::device::DeviceSpec;
use adaptvm::prelude::*;
use adaptvm::relational::compressed_exec::{sum_where_gt, ScanStrategy};
use adaptvm::relational::join::{AdaptiveJoinChain, HashTable};
use adaptvm::relational::tpch;
use adaptvm::storage::block::{Block, BlockColumn};
use adaptvm::storage::compress::Scheme;
use adaptvm::storage::gen;

/// B1/B2 — the micro-adaptive bandit run through the VM on a selective
/// program still computes the right answer, and explores flavors.
#[test]
fn bandit_policy_through_vm() {
    let n = 64 * 1024;
    let data: Vec<i64> = (0..n as i64).map(|i| (i % 100) - 50).collect();
    let program = adaptvm::dsl::programs::filter_sum(0, (n - 8192) as i64);
    let mut policy = BanditPolicy::epsilon_greedy(0.2, 3);
    let config = VmConfig {
        strategy: Strategy::Interpret, // keep filters in the interpreter
        ..VmConfig::default()
    };
    let vm = Vm::new(config);
    let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
    let (_, report) = vm.run_with_policy(&program, buffers, &mut policy).unwrap();
    assert!(report.iterations > 10);
    // One filter site observed with plausible selectivity (~0.49).
    let classes = report.profile.sel_classes();
    assert_eq!(classes.len(), 1);
}

/// B4 — adaptive compressed scan: correct under scheme changes, falls
/// back exactly once per new scheme.
#[test]
fn adaptive_compressed_scan() {
    let mut col = BlockColumn::new();
    let mut expected = 0i64;
    for b in 0..40usize {
        let (data, scheme) = match b % 3 {
            0 => (gen::runs_i64(2048, 32, b as u64), Scheme::Rle),
            1 => (gen::categorical_i64(2048, 4, b as u64), Scheme::Dict),
            _ => (gen::uniform_i64(2048, 0, 255, b as u64), Scheme::ForPack),
        };
        expected += data
            .to_i64_vec()
            .unwrap()
            .iter()
            .filter(|&&x| x > 50)
            .sum::<i64>();
        col.push_block(Block::compress(&data, scheme).unwrap());
    }
    let (total, stats) = sum_where_gt(&col, 50, ScanStrategy::Adaptive).unwrap();
    assert_eq!(total, expected);
    assert_eq!(stats.plans_cached, 3);
    assert!(stats.fast_path > stats.decompressed);
}

/// B3 — the join chain converges to the selective join and flips after a
/// shift, never changing results.
#[test]
fn join_chain_adapts_and_stays_correct() {
    let mk = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k + 1).collect::<Vec<_>>()),
        )
        .unwrap()
    };
    let mut chain = AdaptiveJoinChain::new(vec![mk(10_000), mk(100)], 4);
    let probes: Vec<i64> = (0..2048).collect();
    let mut survivor_count = None;
    for _ in 0..30 {
        let r = chain.probe_chunk(&[probes.clone(), probes.clone()]);
        match survivor_count {
            None => survivor_count = Some(r.indices.len()),
            Some(c) => assert_eq!(c, r.indices.len(), "results must not depend on order"),
        }
    }
    assert_eq!(chain.order(), &[1, 0], "selective join first");
    assert_eq!(survivor_count, Some(100));
}

/// B6 — placement through the VM: big chunks of a compute-heavy program
/// migrate off the CPU; outputs stay identical to the host-only run.
#[test]
fn placement_migrates_large_chunks() {
    let n = 1 << 21;
    let data: Vec<i64> = (0..n as i64).collect();
    let program = adaptvm::dsl::programs::map_chain((n - (1 << 18)) as i64);
    let run = |devices: Vec<DeviceSpec>| {
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            chunk_size: 1 << 20, // column-ish chunks: enough work to offload
            devices,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
        vm.run(&program, buffers).unwrap()
    };
    let (host_out, _) = run(vec![]);
    let (dev_out, report) = run(vec![DeviceSpec::cpu(), DeviceSpec::integrated_gpu()]);
    assert_eq!(host_out.output("out"), dev_out.output("out"));
    let igpu = report
        .device_decisions
        .iter()
        .find(|(n, _)| n == "igpu")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(
        igpu > 0,
        "wide chunks should be placed on the iGPU: {report:?}"
    );
}

/// B1 — the full Q1/Q6 stack: all variants agree at a non-trivial scale.
#[test]
fn tpch_stack_agrees() {
    let table = tpch::lineitem(100_000, 77);
    let fused = tpch::q1_fused(&table);
    assert!(tpch::q1_results_match(
        &fused,
        &tpch::q1_vectorized(&table, 2048)
    ));
    let compact = tpch::CompactLineitem::from_table(&table);
    assert!(tpch::q1_results_match(
        &fused,
        &tpch::q1_adaptive(&compact, 2048)
    ));

    let expected = tpch::q6_reference(&table, 1200);
    let vm = Vm::new(VmConfig {
        hot_threshold: 4,
        ..VmConfig::default()
    });
    let program = tpch::q6_program(table.rows() as i64, 1200);
    let (out, report) = vm.run(&program, tpch::q6_buffers(&table)).unwrap();
    let rev = out.output("revenue").unwrap().as_f64().unwrap()[0];
    assert!((rev - expected).abs() / expected.abs().max(1.0) < 1e-9);
    assert!(report.injected_traces > 0, "Q6 loop should get compiled");
}

/// Async background compilation (the Fig. 1 concurrency): outputs match
/// the synchronous run and injection happens mid-loop.
#[test]
fn async_compile_equivalence() {
    let n = 512 * 1024i64;
    let data: Vec<i64> = (0..n).map(|i| (i % 13) - 6).collect();
    let run = |async_compile: bool| {
        let config = VmConfig {
            hot_threshold: 2,
            async_compile,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
        vm.run(&adaptvm::dsl::programs::fig2_with_limit(n - 8192), buffers)
            .unwrap()
    };
    let (sync_out, _) = run(false);
    let (async_out, report) = run(true);
    assert_eq!(sync_out.output("v"), async_out.output("v"));
    assert_eq!(sync_out.output("w"), async_out.output("w"));
    assert!(report.injected_traces > 0);
}
