//! Property-based tests of the library's core invariants.

use adaptvm::dsl::ast::{FoldFn, ScalarOp};
use adaptvm::dsl::programs;
use adaptvm::kernels::{filter_cmp, fold_apply, FilterFlavor, Operand};
use adaptvm::prelude::*;
use adaptvm::storage::compress::{compress, decompress, Scheme};
// `Strategy` exists in both preludes (proptest's trait, adaptvm's enum);
// the VM enum is the one used below.
use adaptvm::storage::sel::{Bitmap, SelVec};
use adaptvm::vm::Strategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every integer codec round-trips arbitrary data.
    #[test]
    fn codec_roundtrip_i64(data in prop::collection::vec(any::<i64>(), 0..300)) {
        let arr = Array::from(data);
        for scheme in Scheme::ALL {
            let enc = compress(&arr, scheme).unwrap();
            prop_assert_eq!(decompress(&enc).unwrap(), arr.clone(), "{}", scheme);
        }
    }

    /// Narrow types survive compression round-trips.
    #[test]
    fn codec_roundtrip_i16(data in prop::collection::vec(any::<i16>(), 0..300)) {
        let arr = Array::I16(data);
        for scheme in Scheme::ALL {
            let enc = compress(&arr, scheme).unwrap();
            prop_assert_eq!(decompress(&enc).unwrap(), arr.clone(), "{}", scheme);
        }
    }

    /// SelVec ⟷ Bitmap conversions are lossless, and set algebra agrees.
    #[test]
    fn selection_representations_agree(bits in prop::collection::vec(any::<bool>(), 0..400)) {
        let bm = Bitmap::from_bools(&bits);
        let sel = bm.to_selvec();
        prop_assert_eq!(sel.len(), bm.count_ones());
        prop_assert_eq!(sel.to_bitmap(bits.len()), bm.clone());
        // Complement partitions the domain.
        prop_assert_eq!(bm.count_ones() + bm.not().count_ones(), bits.len());
    }

    /// All three filter flavors produce identical selections, with and
    /// without a pre-existing selection.
    #[test]
    fn filter_flavors_equivalent(
        data in prop::collection::vec(-1000i64..1000, 1..300),
        threshold in -1000i64..1000,
        keep_every in 1usize..4,
    ) {
        let arr = Array::from(data.clone());
        let existing = SelVec::new(
            (0..data.len() as u32).step_by(keep_every).collect()
        );
        let operands = [Operand::Col(&arr), Operand::Const(Scalar::I64(threshold))];
        let baseline = filter_cmp(ScalarOp::Gt, &operands, Some(&existing), FilterFlavor::SelVecLoop).unwrap();
        for flavor in [FilterFlavor::Bitmap, FilterFlavor::ComputeAll] {
            let sel = filter_cmp(ScalarOp::Gt, &operands, Some(&existing), flavor).unwrap();
            prop_assert_eq!(sel.indices(), baseline.indices());
        }
        // And the selection is correct.
        for &i in baseline.indices() {
            prop_assert!(data[i as usize] > threshold);
        }
    }

    /// Folds agree with the naive reference under arbitrary selections.
    #[test]
    fn folds_match_reference(
        data in prop::collection::vec(-10_000i64..10_000, 1..300),
        keep_every in 1usize..5,
    ) {
        let arr = Array::from(data.clone());
        let sel = SelVec::new((0..data.len() as u32).step_by(keep_every).collect());
        let selected: Vec<i64> = sel.indices().iter().map(|&i| data[i as usize]).collect();
        let sum = fold_apply(FoldFn::Sum, &Scalar::I64(0), &arr, Some(&sel)).unwrap();
        prop_assert_eq!(sum, Scalar::I64(selected.iter().sum::<i64>()));
        let min = fold_apply(FoldFn::Min, &Scalar::I64(i64::MAX), &arr, Some(&sel)).unwrap();
        prop_assert_eq!(min, Scalar::I64(*selected.iter().min().unwrap()));
        let count = fold_apply(FoldFn::Count, &Scalar::I64(0), &arr, Some(&sel)).unwrap();
        prop_assert_eq!(count, Scalar::I64(selected.len() as i64));
    }

    /// The headline invariant: the Fig. 2-family program computes the same
    /// result under interpretation, whole-pipeline compilation, and the
    /// adaptive state machine, for arbitrary data and thresholds.
    #[test]
    fn strategy_equivalence_random_programs(
        data in prop::collection::vec(-500i64..500, 64..2048),
        factor in 1i64..20,
        threshold in -400i64..400,
    ) {
        // Program: y = factor*x; keep y > threshold; also sum the kept.
        let n = data.len() as i64;
        let src = format!(
            "mut i\nmut k\nmut acc\ni := 0\nk := 0\nacc := 0\nloop {{\n  let x = read i xs in {{\n    let y = map (\\v -> {factor} * v) x in {{\n      let t = filter (\\v -> v > {threshold}) y in {{\n        let b = condense t in {{\n          let s = fold sum 0 b in {{\n            write out i y\n            write kept k b\n            acc := acc + s\n            i := i + len(x)\n            k := k + len(b)\n          }}\n        }}\n      }}\n    }}\n  }}\n  if i >= {n} then {{ break }}\n}}"
        );
        let program = adaptvm::dsl::parser::parse_program(&src).unwrap();
        let mut outputs = Vec::new();
        for strategy in [Strategy::Interpret, Strategy::CompiledPipeline, Strategy::Adaptive] {
            let config = VmConfig {
                strategy,
                chunk_size: 256,
                hot_threshold: 2,
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            let (out, _) = vm.run(&program, buffers).unwrap();
            outputs.push((
                out.output("out").cloned(),
                out.output("kept").cloned(),
            ));
        }
        prop_assert_eq!(&outputs[0], &outputs[1], "interpret vs compiled");
        prop_assert_eq!(&outputs[0], &outputs[2], "interpret vs adaptive");
        // And against the reference semantics.
        let expected_out: Vec<i64> = data.iter().map(|&v| factor * v).collect();
        let expected_kept: Vec<i64> = expected_out.iter().copied().filter(|&v| v > threshold).collect();
        prop_assert_eq!(
            outputs[0].0.as_ref().unwrap().to_i64_vec().unwrap(),
            expected_out
        );
        match (&outputs[0].1, expected_kept.is_empty()) {
            // `kept` may never be created when nothing passes.
            (None, true) => {}
            (Some(arr), _) => prop_assert_eq!(arr.to_i64_vec().unwrap(), expected_kept),
            (None, false) => prop_assert!(false, "kept missing but matches expected"),
        }
    }

    /// The partitioner covers every node exactly once, whatever the width
    /// budget, on arbitrary straight-line map chains.
    #[test]
    fn partitioner_total_coverage(chain_len in 1usize..12, max_io in 1usize..16) {
        let mut src = String::from("mut i\ni := 0\nloop {\n  let x = read i xs in {\n");
        let mut prev = "x".to_string();
        for k in 0..chain_len {
            src.push_str(&format!("let m{k} = map (\\v -> v + {k}) {prev} in {{\n"));
            prev = format!("m{k}");
        }
        src.push_str(&format!("write out i {prev}\ni := i + len(x)\n"));
        for _ in 0..=chain_len {
            src.push('}');
        }
        src.push_str("\nif i >= 1024 then { break }\n}");
        let program = adaptvm::dsl::parser::parse_program(&src).unwrap();
        let body = programs::loop_body(&program).unwrap();
        let g = adaptvm::dsl::depgraph::DepGraph::from_stmts(body);
        let parts = adaptvm::dsl::partition::partition(
            &g,
            &adaptvm::dsl::partition::PartitionConfig::with_max_io(max_io),
        );
        let mut seen = vec![0usize; g.len()];
        for r in &parts.regions {
            prop_assert!(g.io_count(&r.nodes) <= max_io.max(2) || r.nodes.len() == 1);
            for &id in &r.nodes {
                seen[id] += 1;
            }
        }
        for &id in &parts.interpreted {
            seen[id] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}
