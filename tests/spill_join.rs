//! Out-of-core join correctness: the grace-hash spill path must be
//! **bit-identical** to the in-memory join whatever the budget — across
//! worker counts, against a nested-loop oracle, with duplicate keys,
//! empty partitions, budgets so small every partition spills, and
//! recursion at least two levels deep — and budgets must balance to zero
//! afterwards.

use adaptvm::kernels::KernelError;
use adaptvm::parallel::{CancelToken, MemoryBudget};
use adaptvm::relational::join::{HashTable, StrHashTable};
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::spill::{
    parallel_hash_join_spill, parallel_hash_join_str_spill, INT_BUILD_ROW_BYTES,
};
use adaptvm::storage::Array;
use proptest::prelude::*;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn str_keys(vals: &[i64]) -> Vec<String> {
    vals.iter().map(|v| format!("key-{v}")).collect()
}

/// The nested-loop inner-join oracle (one output row per matching build
/// row, probe order then build-row order).
fn nested_loop_join(
    build_keys: &[i64],
    build_payloads: &[i64],
    probe_keys: &[i64],
) -> (Vec<u32>, Vec<i64>) {
    let mut idx = Vec::new();
    let mut pay = Vec::new();
    for (i, &pk) in probe_keys.iter().enumerate() {
        for (j, &bk) in build_keys.iter().enumerate() {
            if bk == pk {
                idx.push(i as u32);
                pay.push(build_payloads[j]);
            }
        }
    }
    (idx, pay)
}

#[test]
fn spill_join_bit_identical_across_workers_and_budgets() {
    // 30k build rows over 2k distinct keys (heavy duplication); probe keys
    // half hit, half miss.
    let bk_rows: Vec<i64> = (0..30_000).map(|i| (i * 7) % 2_000).collect();
    let bp_rows: Vec<i64> = (0..30_000).collect();
    let build_keys = Array::from(bk_rows.clone());
    let build_pays = Array::from(bp_rows.clone());
    let probe_keys: Vec<i64> = (0..20_000).map(|i| (i * 13) % 4_000).collect();
    let reference = HashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = reference.probe(&probe_keys);

    let footprint = 30_000 * INT_BUILD_ROW_BYTES;
    // Budgets forcing zero, some, and all partitions to spill.
    for (label, limit) in [
        ("fits", usize::MAX),
        ("half", footprint / 2),
        ("tiny", 1_000),
    ] {
        for workers in WORKERS {
            let budget = MemoryBudget::bytes(limit);
            let opts = ParallelOpts::new(workers, 4_096).with_budget(&budget);
            let (out, spill) = parallel_hash_join_spill(
                &build_keys,
                &build_pays,
                &probe_keys,
                workers % 2 == 0, // alternate bloom on/off across the sweep
                opts,
            )
            .unwrap();
            assert_eq!(out.indices, seq_idx, "{label} workers={workers}");
            assert_eq!(out.payloads, seq_pay, "{label} workers={workers}");
            assert_eq!(budget.used(), 0, "{label}: charges must balance");
            match label {
                "fits" => {
                    assert_eq!(spill.partitions_spilled, 0, "workers={workers}");
                    assert_eq!(spill.bytes_written, 0);
                }
                "half" => {
                    assert!(spill.spilled(), "half budget must spill something");
                    assert!(
                        spill.partitions_spilled < 16,
                        "half budget must keep some partitions resident: {spill:?}"
                    );
                    assert!(spill.bytes_read >= spill.bytes_written / 2);
                }
                _ => {
                    assert!(
                        spill.partitions_spilled >= 16,
                        "tiny budget must spill every top-level partition: {spill:?}"
                    );
                    assert!(spill.max_recursion_depth >= 1, "{spill:?}");
                }
            }
        }
    }
}

#[test]
fn str_spill_join_bit_identical_across_workers_and_budgets() {
    let key_ids: Vec<i64> = (0..12_000).map(|i| (i * 11) % 900).collect();
    let keys = str_keys(&key_ids);
    let pays: Vec<i64> = (0..12_000).collect();
    let build_keys = Array::from(keys.clone());
    let build_pays = Array::from(pays.clone());
    let probe_keys = str_keys(&(0..8_000).map(|i| (i * 3) % 1_800).collect::<Vec<_>>());
    let reference = StrHashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = reference.probe(&probe_keys);

    for limit in [usize::MAX, 200_000, 2_000] {
        for workers in WORKERS {
            let budget = MemoryBudget::bytes(limit);
            let opts = ParallelOpts::new(workers, 3_000).with_budget(&budget);
            let (out, spill) = parallel_hash_join_str_spill(
                &build_keys,
                &build_pays,
                &probe_keys,
                workers % 2 == 1,
                opts,
            )
            .unwrap();
            assert_eq!(out.indices, seq_idx, "limit={limit} workers={workers}");
            assert_eq!(out.payloads, seq_pay, "limit={limit} workers={workers}");
            assert_eq!(budget.used(), 0);
            if limit == usize::MAX {
                assert!(!spill.spilled());
            } else if limit == 2_000 {
                assert!(spill.partitions_spilled >= 16, "{spill:?}");
            }
        }
    }
}

#[test]
fn tiny_budget_recurses_at_least_two_levels() {
    // 40k distinct keys: a top-level partition holds ~2.5k rows
    // (~120kB), a level-1 sub-partition ~156 rows (~7.5kB) — both above a
    // 600-byte budget, so settling must re-partition at least twice
    // before level-2 sub-partitions (~10 rows) fit.
    let n = 40_000i64;
    let build_keys = Array::from((0..n).collect::<Vec<i64>>());
    let build_pays = Array::from((0..n).map(|i| i * 2).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..n).step_by(5).collect();
    let reference = HashTable::build(&build_keys, &build_pays).unwrap();
    let (seq_idx, seq_pay) = reference.probe(&probe_keys);

    let budget = MemoryBudget::bytes(600);
    let (out, spill) = parallel_hash_join_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(4, 8_192).with_budget(&budget),
    )
    .unwrap();
    assert_eq!(out.indices, seq_idx);
    assert_eq!(out.payloads, seq_pay);
    assert!(
        spill.max_recursion_depth >= 2,
        "expected ≥2 recursion levels: {spill:?}"
    );
    assert!(spill.bytes_read > 0 && spill.bytes_written > 0);
    assert_eq!(budget.used(), 0);
}

#[test]
fn zero_budget_forces_unsplittable_partitions() {
    // Every build row shares one key (one hash): partitions can never be
    // split, so a zero budget must fall back to forced builds — and still
    // produce the exact join.
    let build_keys = Array::from(vec![7i64; 500]);
    let build_pays = Array::from((0..500).collect::<Vec<i64>>());
    let probe_keys = vec![7i64, 8, 7];
    let reference = HashTable::build(&build_keys, &build_pays).unwrap();
    let expected = reference.probe(&probe_keys);

    let budget = MemoryBudget::bytes(0);
    let (out, spill) = parallel_hash_join_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(2, 64).with_budget(&budget),
    )
    .unwrap();
    assert_eq!((out.indices, out.payloads), expected);
    assert!(spill.forced_builds >= 1, "{spill:?}");
    assert_eq!(budget.used(), 0);
}

#[test]
fn probe_side_spills_and_stays_exact() {
    // A modest build side but a huge probe side, with a budget that holds
    // neither the build partitions nor the deferred probe-index lists
    // (8 bytes a row): the probe side must spill to (key, index) runs —
    // streamed through recursion and the final probe — and the join must
    // stay bit-identical.
    let build_keys = Array::from((0..4_000).map(|i| i % 1_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..4_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..80_000).map(|i| (i * 3) % 2_000).collect();
    let reference = HashTable::build(&build_keys, &build_pays).unwrap();
    let expected = reference.probe(&probe_keys);
    let budget = MemoryBudget::bytes(2_000);
    let (out, spill) = parallel_hash_join_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(4, 4_096).with_budget(&budget),
    )
    .unwrap();
    assert_eq!((out.indices, out.payloads), expected);
    assert!(
        spill.probe_partitions_spilled >= 1,
        "a 2kB budget cannot hold 5k deferred probe rows per partition: {spill:?}"
    );
    assert!(spill.spilled());
    assert_eq!(budget.used(), 0);
}

#[test]
fn str_probe_side_spills_and_stays_exact() {
    let key_ids: Vec<i64> = (0..2_000).map(|i| i % 300).collect();
    let keys = str_keys(&key_ids);
    let pays: Vec<i64> = (0..2_000).collect();
    let build_keys = Array::from(keys.clone());
    let build_pays = Array::from(pays);
    let probe_keys = str_keys(&(0..30_000).map(|i| (i * 7) % 600).collect::<Vec<_>>());
    let reference = StrHashTable::build(&build_keys, &build_pays).unwrap();
    let expected = reference.probe(&probe_keys);
    let budget = MemoryBudget::bytes(1_000);
    let (out, spill) = parallel_hash_join_str_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(2, 4_096).with_budget(&budget),
    )
    .unwrap();
    assert_eq!((out.indices, out.payloads), expected);
    assert!(spill.probe_partitions_spilled >= 1, "{spill:?}");
    assert_eq!(budget.used(), 0);
}

#[test]
fn empty_sides_are_handled() {
    let empty = Array::from(Vec::<i64>::new());
    let budget = MemoryBudget::bytes(64);
    let opts = ParallelOpts::new(2, 128).with_budget(&budget);
    let (out, spill) = parallel_hash_join_spill(&empty, &empty, &[1, 2, 3], false, opts).unwrap();
    assert!(out.indices.is_empty() && out.payloads.is_empty());
    assert!(!spill.spilled());
    let some_keys = Array::from(vec![1i64, 2]);
    let some_pays = Array::from(vec![10i64, 20]);
    let (out, _) = parallel_hash_join_spill(&some_keys, &some_pays, &[], false, opts).unwrap();
    assert!(out.indices.is_empty() && out.payloads.is_empty());
    assert_eq!(budget.used(), 0);
}

#[test]
fn pre_cancelled_spill_join_fails_typed_and_balanced() {
    let build_keys = Array::from((0..5_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..5_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..5_000).collect();
    let token = CancelToken::new();
    token.cancel();
    let budget = MemoryBudget::bytes(1_000);
    let err = parallel_hash_join_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(2, 512)
            .with_budget(&budget)
            .with_cancel(&token),
    )
    .unwrap_err();
    assert_eq!(err, KernelError::Cancelled);
    assert_eq!(budget.used(), 0, "aborted join must not leak charges");
}

#[test]
fn mid_flight_cancel_is_typed_or_complete() {
    // Cancellation racing a spilling join must either complete exactly or
    // fail typed — never panic, never leak budget. (The deterministic
    // between-runs checkpoint is unit-tested; this exercises the race.)
    let build_keys = Array::from((0..60_000).collect::<Vec<i64>>());
    let build_pays = Array::from((0..60_000).collect::<Vec<i64>>());
    let probe_keys: Vec<i64> = (0..60_000).collect();
    let reference = HashTable::build(&build_keys, &build_pays).unwrap();
    let expected = reference.probe(&probe_keys);
    let token = CancelToken::new();
    // Half the build footprint: some partitions stay resident (holding
    // budget leases across the probe), the rest spill — an abort at any
    // phase must release both kinds of charge.
    let budget = MemoryBudget::bytes(60_000 * INT_BUILD_ROW_BYTES / 2);
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        })
    };
    let result = parallel_hash_join_spill(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(4, 4_096)
            .with_budget(&budget)
            .with_cancel(&token),
    );
    canceller.join().unwrap();
    match result {
        Ok((out, _)) => assert_eq!((out.indices, out.payloads), expected),
        Err(e) => assert_eq!(e, KernelError::Cancelled),
    }
    assert_eq!(budget.used(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the data (heavy duplicate keys), budget (including zero:
    /// everything spills), morsel size, and worker count: the spilled
    /// join equals the nested-loop oracle and the budget balances.
    #[test]
    fn spilled_join_matches_nested_loop_oracle(
        build_keys in prop::collection::vec(0i64..40, 0..300),
        probe_keys in prop::collection::vec(-5i64..50, 0..300),
        budget_limit in 0usize..20_000,
        morsel_rows in 1usize..200,
        workers in 1usize..5,
    ) {
        let payloads: Vec<i64> = (0..build_keys.len() as i64).map(|i| i * 3 - 7).collect();
        let oracle = nested_loop_join(&build_keys, &payloads, &probe_keys);
        let budget = MemoryBudget::bytes(budget_limit);
        let (out, _) = parallel_hash_join_spill(
            &Array::from(build_keys.clone()),
            &Array::from(payloads),
            &probe_keys,
            budget_limit % 2 == 0,
            ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
        ).unwrap();
        prop_assert_eq!(out.indices, oracle.0);
        prop_assert_eq!(out.payloads, oracle.1);
        prop_assert_eq!(budget.used(), 0);
    }

    /// The string spill join against the in-memory string join, across
    /// budgets and duplicated keys.
    #[test]
    fn spilled_str_join_matches_in_memory(
        key_ids in prop::collection::vec(0i64..30, 0..200),
        probe_ids in prop::collection::vec(-3i64..36, 0..200),
        budget_limit in 0usize..10_000,
        workers in 1usize..5,
    ) {
        let keys = str_keys(&key_ids);
        let payloads: Vec<i64> = (0..keys.len() as i64).collect();
        let probes = str_keys(&probe_ids);
        let reference = StrHashTable::from_rows(&keys, &payloads);
        let expected = reference.probe(&probes);
        let budget = MemoryBudget::bytes(budget_limit);
        let (out, _) = parallel_hash_join_str_spill(
            &Array::from(keys),
            &Array::from(payloads),
            &probes,
            false,
            ParallelOpts::new(workers, 64).with_budget(&budget),
        ).unwrap();
        prop_assert_eq!((out.indices, out.payloads), expected);
        prop_assert_eq!(budget.used(), 0);
    }
}
