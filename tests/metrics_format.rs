//! Golden tests for the plain-text metrics exposition
//! (`adaptvm::parallel::serve::render_text`).
//!
//! The format is a documented, versioned contract (see
//! `serve::telemetry`): these tests pin it byte-for-byte — family names,
//! family order, label ordering, bucket edges, escaping — so any change
//! to the exposition is a deliberate, reviewed format bump, not drift.
//! A round-trip test then parses the rendered output of a *live* service
//! back into numbers and reconciles them against `ServiceStats`.

use std::time::Duration;

use adaptvm::parallel::serve::{
    render_text, render_text_with, EngineSnapshot, LatencySnapshot, QueryService, ServeConfig,
    ServiceStats, SubmitOpts as ServeOpts, TenantQuota, TenantRegistry, TenantStats,
    HISTOGRAM_BUCKETS,
};
use adaptvm::parallel::MorselPlan;

const JOIN_BOUND: Duration = Duration::from_secs(120);

/// The 28 histogram bucket upper bounds, in seconds, exactly as rendered:
/// `2^i` microseconds for bucket `i`, final bucket open (`+Inf`). These
/// literals ARE the golden — if the edges or their formatting move, this
/// array is the reviewed place to move them.
const LE: [&str; HISTOGRAM_BUCKETS] = [
    "0.000001",
    "0.000002",
    "0.000004",
    "0.000008",
    "0.000016",
    "0.000032",
    "0.000064",
    "0.000128",
    "0.000256",
    "0.000512",
    "0.001024",
    "0.002048",
    "0.004096",
    "0.008192",
    "0.016384",
    "0.032768",
    "0.065536",
    "0.131072",
    "0.262144",
    "0.524288",
    "1.048576",
    "2.097152",
    "4.194304",
    "8.388608",
    "16.777216",
    "33.554432",
    "67.108864",
    "+Inf",
];

const LANES: [&str; 3] = ["interactive", "normal", "batch"];

/// Expected rendering of an empty histogram family member: 28 zero
/// cumulative buckets, no quantile lines, zero sum and count.
fn empty_hist(name: &str, key: &str, value: &str) -> String {
    let mut s = String::new();
    for le in LE {
        s.push_str(&format!(
            "{name}_bucket{{{key}=\"{value}\",le=\"{le}\"}} 0\n"
        ));
    }
    s.push_str(&format!("{name}_sum{{{key}=\"{value}\"}} 0\n"));
    s.push_str(&format!("{name}_count{{{key}=\"{value}\"}} 0\n"));
    s
}

/// The full exposition of a hand-built snapshot, byte for byte. Pins the
/// header, every family name, the family-major order (service gauges →
/// scheduler counters → per-priority → per-tenant → engine), the lane
/// order, and zero-value formatting. The engine block is injected through
/// `render_text_with` so the golden stays independent of process history.
#[test]
fn golden_full_exposition() {
    let mut stats = ServiceStats {
        running: 1,
        concurrent_limit: 4,
        shed_level: 1,
        queue_depths: [2, 0, 5],
        grow_events: 3,
        shrink_events: 2,
        ..ServiceStats::default()
    };
    stats.scheduler.queries_submitted = 7;
    stats.scheduler.queries_completed = 6;
    stats.scheduler.morsels_executed = 123;
    stats.per_priority[0].submitted = 10;
    stats.per_priority[0].admitted = 9;
    stats.per_priority[0].rejected_full = 1;
    stats.per_priority[0].completed = 8;
    stats.tenants.push(TenantStats {
        name: "acme".into(),
        weight: 3,
        submitted: 5,
        admitted: 4,
        rejected_quota: 1,
        completed: 4,
        ..TenantStats::default()
    });

    let engine = EngineSnapshot {
        jit_compiles: 11,
        jit_cache_hits: 22,
        jit_async_submits: 2,
        jit_deopts: 1,
        spill_bytes_written: 4096,
        spill_bytes_read: 2048,
        scratch_created: 6,
        scratch_reused: 18,
        morsel_grow: 4,
        morsel_shrink: 3,
    };

    let mut want = String::from("# adaptvm-serve-metrics v2\n");
    want.push_str("serve_running 1\n");
    want.push_str("serve_draining 0\n");
    want.push_str("serve_concurrent_limit 4\n");
    want.push_str("serve_shed_level 1\n");
    want.push_str("serve_queue_depth{priority=\"interactive\"} 2\n");
    want.push_str("serve_queue_depth{priority=\"normal\"} 0\n");
    want.push_str("serve_queue_depth{priority=\"batch\"} 5\n");
    want.push_str("serve_concurrency_grow_total 3\n");
    want.push_str("serve_concurrency_shrink_total 2\n");
    want.push_str("scheduler_queries_submitted_total 7\n");
    want.push_str("scheduler_queries_completed_total 6\n");
    want.push_str("scheduler_morsels_executed_total 123\n");
    // Per-priority counters, family-major; only interactive is non-zero.
    let families: [(&str, [u64; 3]); 12] = [
        ("serve_submitted_total", [10, 0, 0]),
        ("serve_admitted_total", [9, 0, 0]),
        ("serve_rejected_full_total", [1, 0, 0]),
        ("serve_rejected_quota_total", [0, 0, 0]),
        ("serve_rejected_shutdown_total", [0, 0, 0]),
        ("serve_admission_timeouts_total", [0, 0, 0]),
        ("serve_shed_total", [0, 0, 0]),
        ("serve_completed_total", [8, 0, 0]),
        ("serve_task_errors_total", [0, 0, 0]),
        ("serve_panicked_total", [0, 0, 0]),
        ("serve_cancelled_total", [0, 0, 0]),
        ("serve_deadline_expired_total", [0, 0, 0]),
    ];
    for (family, values) in families {
        for (lane, v) in LANES.iter().zip(values) {
            want.push_str(&format!("{family}{{priority=\"{lane}\"}} {v}\n"));
        }
    }
    for lane in LANES {
        want.push_str(&empty_hist("serve_queue_wait_seconds", "priority", lane));
    }
    for lane in LANES {
        want.push_str(&empty_hist("serve_latency_seconds", "priority", lane));
    }
    // Per-tenant families for the single registered tenant.
    want.push_str("tenant_weight{tenant=\"acme\"} 3\n");
    let tenant_families: [(&str, u64); 12] = [
        ("tenant_submitted_total", 5),
        ("tenant_admitted_total", 4),
        ("tenant_rejected_full_total", 0),
        ("tenant_rejected_quota_total", 1),
        ("tenant_rejected_shutdown_total", 0),
        ("tenant_admission_timeouts_total", 0),
        ("tenant_shed_total", 0),
        ("tenant_completed_total", 4),
        ("tenant_task_errors_total", 0),
        ("tenant_panicked_total", 0),
        ("tenant_cancelled_total", 0),
        ("tenant_deadline_expired_total", 0),
    ];
    for (family, v) in tenant_families {
        want.push_str(&format!("{family}{{tenant=\"acme\"}} {v}\n"));
    }
    want.push_str("tenant_queued{tenant=\"acme\"} 0\n");
    want.push_str("tenant_in_flight{tenant=\"acme\"} 0\n");
    want.push_str(&empty_hist("tenant_queue_wait_seconds", "tenant", "acme"));
    want.push_str(&empty_hist("tenant_latency_seconds", "tenant", "acme"));
    // Engine-wide counters close the document (the v2 extension).
    want.push_str("engine_jit_compiles_total 11\n");
    want.push_str("engine_jit_cache_hits_total 22\n");
    want.push_str("engine_jit_async_submits_total 2\n");
    want.push_str("engine_jit_deopts_total 1\n");
    want.push_str("engine_spill_bytes_written_total 4096\n");
    want.push_str("engine_spill_bytes_read_total 2048\n");
    want.push_str("engine_scratch_created_total 6\n");
    want.push_str("engine_scratch_reused_total 18\n");
    want.push_str("engine_morsel_grow_total 4\n");
    want.push_str("engine_morsel_shrink_total 3\n");

    let got = render_text_with(&stats, &engine);
    // Compare line-by-line first for a readable failure, then the whole.
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(g, w, "exposition line {}", i + 1);
    }
    assert_eq!(got, want);
}

/// Non-empty histograms render cumulative buckets, the two quantile
/// summary lines, and an exact shortest-round-trip `_sum`.
#[test]
fn golden_histogram_with_observations() {
    let mut stats = ServiceStats::default();
    // Bucket 7 (≤ 128 µs): 2 observations; bucket 10 (≤ 1024 µs): 1.
    let mut h = LatencySnapshot::default();
    h.buckets[7] = 2;
    h.buckets[10] = 1;
    h.count = 3;
    h.sum_ns = 3_456_789;
    h.max_ns = 1_000_000;
    stats.per_priority[2].latency = h; // batch lane
    let text = render_text(&stats);

    let expect = [
        // Cumulative counts cross at buckets 7 and 10.
        "serve_latency_seconds_bucket{priority=\"batch\",le=\"0.000064\"} 0",
        "serve_latency_seconds_bucket{priority=\"batch\",le=\"0.000128\"} 2",
        "serve_latency_seconds_bucket{priority=\"batch\",le=\"0.000512\"} 2",
        "serve_latency_seconds_bucket{priority=\"batch\",le=\"0.001024\"} 3",
        "serve_latency_seconds_bucket{priority=\"batch\",le=\"+Inf\"} 3",
        // p50 rank 2 lands in bucket 7, p99 rank 3 in bucket 10.
        "serve_latency_seconds{priority=\"batch\",quantile=\"0.5\"} 0.000128",
        "serve_latency_seconds{priority=\"batch\",quantile=\"0.99\"} 0.001024",
        "serve_latency_seconds_sum{priority=\"batch\"} 0.003456789",
        "serve_latency_seconds_count{priority=\"batch\"} 3",
    ];
    for line in expect {
        assert!(text.lines().any(|l| l == line), "missing line: {line}");
    }
    // Empty lanes emit no quantile lines at all.
    assert!(!text.contains("priority=\"normal\",quantile"));
}

/// Label escaping: `\` → `\\`, `"` → `\"`, newline → `\n`; tenant names
/// survive verbatim otherwise, and the output stays one-line-per-metric.
#[test]
fn golden_label_escaping() {
    let mut stats = ServiceStats::default();
    stats.tenants.push(TenantStats {
        name: "a\"b\\c\nd".into(),
        weight: 1,
        ..TenantStats::default()
    });
    let text = render_text(&stats);
    assert!(
        text.contains("tenant_weight{tenant=\"a\\\"b\\\\c\\nd\"} 1"),
        "escaped label missing:\n{text}"
    );
    // Exactly one comment line (the header), and no raw newline leaked
    // into a label: every line still has the `name… value` shape.
    assert_eq!(text.lines().filter(|l| l.starts_with('#')).count(), 1);
    for line in text.lines().skip(1) {
        assert!(
            line.rsplit_once(' ').is_some(),
            "malformed metric line: {line:?}"
        );
    }
}

/// Un-escape a label value (the inverse of the renderer's escaping).
fn unescape(v: &str) -> String {
    let mut out = String::new();
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => panic!("bad escape \\{other:?} in {v:?}"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parse one metric line into (name, labels, value). Escape-aware.
fn parse_line(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (head, value) = line.rsplit_once(' ').expect("line has a value");
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"))
    };
    let Some((name, rest)) = head.split_once('{') else {
        return (head.to_string(), Vec::new(), value);
    };
    let body = rest.strip_suffix('}').expect("labels close");
    let mut labels = Vec::new();
    let mut it = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in it.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        assert_eq!(it.next(), Some('"'), "label value opens with a quote");
        let mut raw = String::new();
        let mut escaped = false;
        for c in it.by_ref() {
            if escaped {
                raw.push('\\');
                raw.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                break;
            } else {
                raw.push(c);
            }
        }
        labels.push((key, unescape(&raw)));
        match it.next() {
            None => break,
            Some(',') => continue,
            other => panic!("unexpected {other:?} after label in {line:?}"),
        }
    }
    (name.to_string(), labels, value)
}

/// Round-trip: render a *live* service's snapshot, parse every line back,
/// and reconcile the parsed numbers against `ServiceStats` — including a
/// tenant whose name needs escaping. Also pins the documented family
/// order on real output and that rendering is deterministic per snapshot.
#[test]
fn round_trip_parse_of_live_service() {
    let mut reg = TenantRegistry::new();
    let acme = reg.register("acme", TenantQuota::new().with_weight(2));
    let weird = reg.register("we\"ird\\ten\nant", TenantQuota::new());
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2),
        reg,
    );
    let mut handles = Vec::new();
    for (id, n) in [(acme, 3), (weird, 2)] {
        for _ in 0..n {
            handles.push(
                service
                    .try_submit(
                        ServeOpts::normal().with_tenant(id),
                        MorselPlan::new(500, 50),
                        |_, m| Ok::<usize, ()>(m.len),
                        |parts, _| parts.iter().sum::<usize>(),
                    )
                    .unwrap(),
            );
        }
    }
    handles.push(
        service
            .try_submit(
                ServeOpts::interactive(),
                MorselPlan::new(500, 50),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.iter().sum::<usize>(),
            )
            .unwrap(),
    );
    for h in handles {
        assert_eq!(
            h.join_deadline(JOIN_BOUND).expect("query hung").unwrap(),
            500
        );
    }
    let stats = service.stats();
    let engine_before = EngineSnapshot::capture();
    let text = render_text(&stats);
    assert_eq!(text, render_text(&stats), "rendering is deterministic");

    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("# adaptvm-serve-metrics v2"));
    // Every line parses; collect (name, labels) → value.
    let mut metrics = Vec::new();
    for line in lines {
        metrics.push(parse_line(line));
    }
    let lookup = |name: &str, key: &str, value: &str| -> f64 {
        metrics
            .iter()
            .find(|(n, l, _)| n == name && l.iter().any(|(k, v)| k == key && v == value))
            .unwrap_or_else(|| panic!("missing {name}{{{key}={value:?}}}"))
            .2
    };
    // Parsed numbers reconcile with the snapshot, across both dimensions
    // and through the escaped tenant name.
    assert_eq!(lookup("tenant_submitted_total", "tenant", "acme"), 3.0);
    assert_eq!(lookup("tenant_completed_total", "tenant", "acme"), 3.0);
    assert_eq!(
        lookup("tenant_submitted_total", "tenant", "we\"ird\\ten\nant"),
        2.0
    );
    assert_eq!(lookup("serve_submitted_total", "priority", "normal"), 5.0);
    assert_eq!(
        lookup("serve_completed_total", "priority", "interactive"),
        1.0
    );
    assert_eq!(
        lookup("tenant_latency_seconds_count", "tenant", "acme"),
        stats.tenant("acme").unwrap().latency.count as f64
    );
    // Engine counters are monotonic process-wide totals: the rendered
    // value is bracketed by captures taken before and after the render.
    let engine_after = EngineSnapshot::capture();
    let engine_bounds: [(&str, u64, u64); 10] = [
        (
            "engine_jit_compiles_total",
            engine_before.jit_compiles,
            engine_after.jit_compiles,
        ),
        (
            "engine_jit_cache_hits_total",
            engine_before.jit_cache_hits,
            engine_after.jit_cache_hits,
        ),
        (
            "engine_jit_async_submits_total",
            engine_before.jit_async_submits,
            engine_after.jit_async_submits,
        ),
        (
            "engine_jit_deopts_total",
            engine_before.jit_deopts,
            engine_after.jit_deopts,
        ),
        (
            "engine_spill_bytes_written_total",
            engine_before.spill_bytes_written,
            engine_after.spill_bytes_written,
        ),
        (
            "engine_spill_bytes_read_total",
            engine_before.spill_bytes_read,
            engine_after.spill_bytes_read,
        ),
        (
            "engine_scratch_created_total",
            engine_before.scratch_created,
            engine_after.scratch_created,
        ),
        (
            "engine_scratch_reused_total",
            engine_before.scratch_reused,
            engine_after.scratch_reused,
        ),
        (
            "engine_morsel_grow_total",
            engine_before.morsel_grow,
            engine_after.morsel_grow,
        ),
        (
            "engine_morsel_shrink_total",
            engine_before.morsel_shrink,
            engine_after.morsel_shrink,
        ),
    ];
    for (name, lo, hi) in engine_bounds {
        let got = metrics
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("engine family {name} absent"))
            .2;
        assert!(
            got >= lo as f64 && got <= hi as f64,
            "{name} = {got} outside [{lo}, {hi}]"
        );
    }

    // Every family the renderer emitted must be reconciled by this test:
    // an unknown base name means the exposition grew a family nobody
    // checks, which is exactly the drift this suite exists to catch.
    let known: &[&str] = &[
        "serve_running",
        "serve_draining",
        "serve_concurrent_limit",
        "serve_shed_level",
        "serve_queue_depth",
        "serve_concurrency_grow_total",
        "serve_concurrency_shrink_total",
        "scheduler_queries_submitted_total",
        "scheduler_queries_completed_total",
        "scheduler_morsels_executed_total",
        "serve_submitted_total",
        "serve_admitted_total",
        "serve_rejected_full_total",
        "serve_rejected_quota_total",
        "serve_rejected_shutdown_total",
        "serve_admission_timeouts_total",
        "serve_shed_total",
        "serve_completed_total",
        "serve_task_errors_total",
        "serve_panicked_total",
        "serve_cancelled_total",
        "serve_deadline_expired_total",
        "serve_queue_wait_seconds",
        "serve_latency_seconds",
        "tenant_weight",
        "tenant_submitted_total",
        "tenant_admitted_total",
        "tenant_rejected_full_total",
        "tenant_rejected_quota_total",
        "tenant_rejected_shutdown_total",
        "tenant_admission_timeouts_total",
        "tenant_shed_total",
        "tenant_completed_total",
        "tenant_task_errors_total",
        "tenant_panicked_total",
        "tenant_cancelled_total",
        "tenant_deadline_expired_total",
        "tenant_queued",
        "tenant_in_flight",
        "tenant_queue_wait_seconds",
        "tenant_latency_seconds",
        "engine_jit_compiles_total",
        "engine_jit_cache_hits_total",
        "engine_jit_async_submits_total",
        "engine_jit_deopts_total",
        "engine_spill_bytes_written_total",
        "engine_spill_bytes_read_total",
        "engine_scratch_created_total",
        "engine_scratch_reused_total",
        "engine_morsel_grow_total",
        "engine_morsel_shrink_total",
    ];
    for (name, _, _) in &metrics {
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            known.contains(&base),
            "family {name:?} rendered but not reconciled by this test"
        );
    }

    // `le` is always the last label on bucket lines; `quantile` likewise.
    for (name, labels, _) in &metrics {
        if name.ends_with("_bucket") {
            assert_eq!(labels.len(), 2, "{name}");
            assert_eq!(labels[1].0, "le", "{name}");
        }
        if let Some((_, v)) = labels.iter().find(|(k, _)| k == "quantile") {
            assert!(v == "0.5" || v == "0.99");
        }
    }
    // Family order on live output follows the documented sequence.
    let order = [
        "serve_running",
        "serve_queue_depth",
        "scheduler_queries_submitted_total",
        "serve_submitted_total",
        "serve_queue_wait_seconds_count",
        "serve_latency_seconds_count",
        "tenant_weight",
        "tenant_submitted_total",
        "tenant_queued",
        "tenant_queue_wait_seconds_count",
        "tenant_latency_seconds_count",
        "engine_jit_compiles_total",
        "engine_morsel_shrink_total",
    ];
    let first = |name: &str| {
        metrics
            .iter()
            .position(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("family {name} absent"))
    };
    for pair in order.windows(2) {
        assert!(
            first(pair[0]) < first(pair[1]),
            "family order: {} before {}",
            pair[0],
            pair[1]
        );
    }
    service.shutdown();
}
