//! Integration tests for the VM's graceful-degradation paths: the paper's
//! "the remaining nodes can either be compiled or interpreted" (§III-B)
//! means every uncompilable shape must still execute correctly through
//! interpretation — with the adaptive machinery engaged, not bypassed.

use adaptvm::dsl::parser::parse_program;
use adaptvm::prelude::*;

fn run(src: &str, buffers: Buffers, strategy: Strategy) -> (Buffers, adaptvm::vm::RunReport) {
    let program = parse_program(src).unwrap();
    let config = VmConfig {
        strategy,
        hot_threshold: 2,
        chunk_size: 256,
        ..VmConfig::default()
    };
    Vm::new(config).run(&program, buffers).unwrap()
}

/// A merge skeleton inside the hot loop: the JIT cannot fuse it, so the
/// adaptive VM must record a fallback and interpret — with identical
/// results to pure interpretation.
#[test]
fn merge_regions_fall_back_to_interpretation() {
    let src = r#"
        mut i
        i := 0
        loop {
          let a = read i xs in {
            let b = read i ys in {
              let m = merge union a b in {
                write out i m
                i := i + len(a)
              }
            }
          }
          if i >= 2048 then { break }
        }
    "#;
    let sorted: Vec<i64> = (0..4096).collect();
    let mk = || {
        Buffers::new()
            .with_input("xs", Array::from(sorted.clone()))
            .with_input("ys", Array::from(sorted.clone()))
    };
    let (interp_out, _) = run(src, mk(), Strategy::Interpret);
    let (adaptive_out, report) = run(src, mk(), Strategy::Adaptive);
    assert_eq!(interp_out.output("out"), adaptive_out.output("out"));
    // The merge node could not be compiled.
    assert!(report.fallbacks > 0, "{report:?}");
    // But the (compilable) read regions may still have produced traces —
    // either way the run stayed correct, which is the §III-B contract.
}

/// String operations (excluded by the §III-B heuristics) stay interpreted
/// under the adaptive strategy and still compute correctly.
#[test]
fn string_ops_interpreted_under_adaptive() {
    let src = r#"
        mut i
        i := 0
        loop {
          let names = read i input_names in {
            let lens = map (\s -> strlen(s)) names in {
              write out i lens
              i := i + len(names)
            }
          }
          if i >= 1024 then { break }
        }
    "#;
    let names: Vec<String> = (0..2048).map(|i| "x".repeat(i % 7)).collect();
    let buffers = Buffers::new().with_input("input_names", Array::from(names.clone()));
    let (out, report) = run(src, buffers, Strategy::Adaptive);
    let expected: Vec<i64> = names[..1024].iter().map(|s| s.len() as i64).collect();
    assert_eq!(out.output("out").unwrap().to_i64_vec().unwrap(), expected);
    // No trace should cover the string map (it is an excluded class); the
    // run either compiled nothing or recorded it as unsupported.
    assert_eq!(report.trace_executions, 0, "{report:?}");
}

/// A captured scalar in a lambda (the SAXPY alpha) is uncompilable by the
/// trace builder; the adaptive VM interprets and matches the reference.
#[test]
fn captured_scalars_fall_back() {
    let src = r#"
        mut alpha
        mut i
        alpha := 7
        i := 0
        loop {
          let x = read i xs in {
            let y = map (\v -> alpha * v) x in {
              write out i y
              i := i + len(x)
            }
          }
          if i >= 2048 then { break }
        }
    "#;
    let data: Vec<i64> = (0..4096).collect();
    let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
    let (out, report) = run(src, buffers, Strategy::Adaptive);
    let expected: Vec<i64> = data[..2048].iter().map(|v| 7 * v).collect();
    assert_eq!(out.output("out").unwrap().to_i64_vec().unwrap(), expected);
    assert!(report.fallbacks > 0, "{report:?}");
}

/// Nested loops cannot be flattened into an iteration plan; the engine
/// falls back to whole-program interpretation and still terminates with
/// the right answer.
#[test]
fn nested_loops_interpret_whole_program() {
    let src = r#"
        mut i
        mut total
        i := 0
        total := 0
        loop {
          mut j
          j := 0
          loop {
            j := j + 1
            if j >= 3 then { break }
          }
          total := total + j
          i := i + 1
          if i >= 5 then { break }
        }
        let g = gen (\k -> k) total in {
          write out 0 g
        }
    "#;
    let (out, report) = run(src, Buffers::new(), Strategy::Adaptive);
    // total = 5 × 3 = 15 → gen produces [0, 15).
    assert_eq!(out.output("out").unwrap().len(), 15);
    assert_eq!(report.injected_traces, 0, "nested loops stay interpreted");
}

/// UCB policy through the VM behaves like the ε-greedy one (correctness is
/// policy-independent).
#[test]
fn ucb_policy_equivalent_results() {
    let src = r#"
        mut i
        mut k
        i := 0
        k := 0
        loop {
          let x = read i xs in {
            let t = filter (\v -> v > 100) x in {
              let b = condense t in {
                write kept k b
                i := i + len(x)
                k := k + len(b)
              }
            }
          }
          if i >= 4096 then { break }
        }
    "#;
    let data: Vec<i64> = (0..8192).map(|i| (i * 31) % 400).collect();
    let program = parse_program(src).unwrap();
    let expected: Vec<i64> = data[..4096].iter().copied().filter(|&v| v > 100).collect();
    for mut policy in [
        BanditPolicy::epsilon_greedy(0.1, 5),
        BanditPolicy::ucb(1.5, 5),
    ] {
        let config = VmConfig {
            strategy: Strategy::Interpret,
            chunk_size: 256,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
        let (out, _) = vm.run_with_policy(&program, buffers, &mut policy).unwrap();
        assert_eq!(out.output("kept").unwrap().to_i64_vec().unwrap(), expected);
    }
}

/// Regression: a trace that fails recoverably on a *partial final chunk*
/// must resume through the rebuilt plan — including scalar alias
/// statements interleaved between the region's nodes. (Previously the
/// fallback interpreted the covered nodes back-to-back, skipping the
/// aliases, so downstream nodes consumed stale full-chunk values and the
/// run died with a length mismatch.)
#[test]
fn recoverable_trace_failure_on_partial_final_chunk() {
    use adaptvm::relational::tpch;
    // 1664 = 1024 + 640: the second (and last) chunk is partial, and with
    // hot_threshold=2 injection lands exactly on it.
    for n in [1664usize, 1700, 2048, 2600] {
        let t = tpch::lineitem(n, 1);
        let reference = tpch::q6_reference(&t, 1000);
        for hot in [2u64, 3] {
            let config = VmConfig {
                strategy: Strategy::Adaptive,
                hot_threshold: hot,
                ..VmConfig::default()
            };
            let (out, _) = Vm::new(config)
                .run(&tpch::q6_program(n as i64, 1000), tpch::q6_buffers(&t))
                .unwrap_or_else(|e| panic!("n={n} hot={hot}: {e:?}"));
            let rev = out.output("revenue").unwrap().as_f64().unwrap()[0];
            assert!(
                (rev - reference).abs() / reference.abs().max(1.0) < 1e-9,
                "n={n} hot={hot}: {rev} vs {reference}"
            );
        }
    }
}
